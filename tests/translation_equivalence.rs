//! F2/F3 — translation equivalence: for each event kind, run the same
//! workload against (a) the native PG-Trigger engine, (b) the APOC
//! emulation executing the Figure 2 translation, and (c) the Memgraph
//! emulation executing the Figure 3 translation, then compare observable
//! effects.

use pg_apoc::ApocDb;
use pg_memgraph::MemgraphDb;
use pg_triggers::{parse_trigger_ddl, DdlStatement, Session, TriggerSpec};

fn spec(ddl: &str) -> TriggerSpec {
    match parse_trigger_ddl(ddl).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => panic!("expected CREATE TRIGGER"),
    }
}

/// Run `setup` then `event` on all three engines with the given trigger;
/// return the number of `Probe` nodes each produced.
fn run_three_ways(ddl: &str, setup: &[&str], event: &str) -> (i64, i64, i64) {
    let t = spec(ddl);

    // native
    let mut native = Session::new();
    native.install(ddl).unwrap();
    for s in setup {
        native.run(s).unwrap();
    }
    native.run(event).unwrap();
    let n_native = native
        .run("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    // APOC
    let mut apoc = ApocDb::new();
    let install = pg_apoc::translate(&t).unwrap();
    apoc.install(
        "neo4j",
        &install.name,
        &install.statement,
        install.phase.name(),
    )
    .unwrap();
    for s in setup {
        apoc.run_tx(&[s]).unwrap();
    }
    apoc.run_tx(&[event]).unwrap();
    let n_apoc = apoc
        .query("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    // Memgraph
    let mut mg = MemgraphDb::new();
    let install = pg_memgraph::translate(&t).unwrap();
    mg.create_trigger(&install.ddl).unwrap();
    for s in setup {
        mg.run_tx(&[s]).unwrap();
    }
    mg.run_tx(&[event]).unwrap();
    let n_mg = mg
        .query("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    (n_native, n_apoc, n_mg)
}

#[test]
fn node_creation_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Probe {of: NEW.name}) END",
        &[],
        "CREATE (:P {name: 'x'}), (:P {name: 'y'}), (:Q {name: 'z'})",
    );
    assert_eq!((n, a, m), (2, 2, 2));
}

#[test]
fn node_creation_with_condition_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE
         WHEN NEW.score > 10
         BEGIN CREATE (:Probe) END",
        &[],
        "CREATE (:P {score: 5}), (:P {score: 15}), (:P {score: 25})",
    );
    assert_eq!((n, a, m), (2, 2, 2));
}

#[test]
fn pattern_condition_equivalent() {
    // The paper's Figure 2 example: EXISTS pattern condition.
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER CREATE ON 'Mutation' FOR EACH NODE
         WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
         BEGIN CREATE (:Probe {mutation: NEW.name}) END",
        &["CREATE (:CriticalEffect {description: 'bad'})"],
        "MATCH (e:CriticalEffect) \
         CREATE (:Mutation {name: 'critical'})-[:Risk]->(e), (:Mutation {name: 'benign'})",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn rel_creation_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER CREATE ON 'BelongsTo' FOR EACH RELATIONSHIP
         BEGIN CREATE (:Probe) END",
        &["CREATE (:Sequence {accession: 's'}), (:Lineage {name: 'l'})"],
        "MATCH (s:Sequence), (l:Lineage) CREATE (s)-[:BelongsTo]->(l), (s)-[:Other]->(l)",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn node_deletion_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER DELETE ON 'Doomed' FOR EACH NODE
         BEGIN CREATE (:Probe {was: OLD.name}) END",
        &["CREATE (:Doomed {name: 'd1'}), (:Doomed {name: 'd2'}), (:Safe {name: 's'})"],
        "MATCH (d:Doomed) DETACH DELETE d",
    );
    assert_eq!((n, a, m), (2, 2, 2));
}

#[test]
fn rel_deletion_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER DELETE ON 'R' FOR EACH RELATIONSHIP BEGIN CREATE (:Probe) END",
        &["CREATE (:A)-[:R]->(:B)"],
        "MATCH ()-[r:R]-() DELETE r",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn label_set_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER SET ON 'Flagged' FOR EACH NODE BEGIN CREATE (:Probe) END",
        &["CREATE (:P {name: 'x'}), (:P {name: 'y'})"],
        "MATCH (p:P {name: 'x'}) SET p:Flagged",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn label_remove_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER REMOVE ON 'Flagged' FOR EACH NODE BEGIN CREATE (:Probe) END",
        &["CREATE (:P:Flagged {name: 'x'})"],
        "MATCH (p:P) REMOVE p:Flagged",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn property_set_old_new_equivalent() {
    // The paper's WhoDesignationChange shape.
    let ddl = "CREATE TRIGGER t AFTER SET ON 'Lineage'.'who' FOR EACH NODE
         WHEN OLD.who <> NEW.who
         BEGIN CREATE (:Probe {was: OLD.who, now: NEW.who}) END";
    let (n, a, m) = run_three_ways(
        ddl,
        &["CREATE (:Lineage {who: 'Indian'})"],
        "MATCH (l:Lineage) SET l.who = 'Delta'",
    );
    assert_eq!((n, a, m), (1, 1, 1));
    // same-value set fires nowhere
    let (n, a, m) = run_three_ways(
        ddl,
        &["CREATE (:Lineage {who: 'Delta'})"],
        "MATCH (l:Lineage) SET l.who = 'Delta'",
    );
    assert_eq!((n, a, m), (0, 0, 0));
}

#[test]
fn property_remove_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER REMOVE ON 'P'.'email' FOR EACH NODE
         BEGIN CREATE (:Probe {was: OLD.email}) END",
        &["CREATE (:P {email: 'a@b'})"],
        "MATCH (p:P) REMOVE p.email",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn rel_property_set_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER SET ON 'R'.'w' FOR EACH RELATIONSHIP
         WHEN NEW.w > OLD.w
         BEGIN CREATE (:Probe) END",
        &["CREATE (:A)-[:R {w: 1}]->(:B)"],
        "MATCH ()-[r:R]-() SET r.w = 5",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn for_all_granularity_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:Probe {n: size(NEWNODES)}) END",
        &[],
        "CREATE (:P), (:P), (:P)",
    );
    // one probe each, carrying the batch size
    assert_eq!((n, a, m), (1, 1, 1));
}

#[test]
fn cascading_diverges_by_design() {
    // Native cascades; APOC/Memgraph don't (§5.1/§5.2). This is the
    // documented semantic gap, verified as a divergence.
    let chain1 = "CREATE TRIGGER c1 AFTER CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:B) END";
    let chain2 = "CREATE TRIGGER c2 AFTER CREATE ON 'B' FOR EACH NODE BEGIN CREATE (:Probe) END";

    let mut native = Session::new();
    native.install(chain1).unwrap();
    native.install(chain2).unwrap();
    native.run("CREATE (:A)").unwrap();
    let n = native
        .run("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    let mut apoc = ApocDb::new();
    for ddl in [chain1, chain2] {
        let i = pg_apoc::translate(&spec(ddl)).unwrap();
        apoc.install("neo4j", &i.name, &i.statement, i.phase.name())
            .unwrap();
    }
    apoc.run_tx(&["CREATE (:A)"]).unwrap();
    let a = apoc
        .query("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    let mut mg = MemgraphDb::new();
    for ddl in [chain1, chain2] {
        let i = pg_memgraph::translate(&spec(ddl)).unwrap();
        mg.create_trigger(&i.ddl).unwrap();
    }
    mg.run_tx(&["CREATE (:A)"]).unwrap();
    let m = mg
        .query("MATCH (p:Probe) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();

    assert_eq!(n, 1, "native cascades");
    assert_eq!(a, 0, "APOC blocks cascades");
    assert_eq!(m, 0, "Memgraph blocks cascades");
}

#[test]
fn oncommit_maps_to_before_phase_equivalent() {
    let (n, a, m) = run_three_ways(
        "CREATE TRIGGER t ONCOMMIT CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:Probe {n: size(NEWNODES)}) END",
        &[],
        "CREATE (:P), (:P)",
    );
    assert_eq!((n, a, m), (1, 1, 1));
}
