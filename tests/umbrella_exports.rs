//! Smoke test for the `pg-triggers-suite` umbrella re-exports.
//!
//! Guards the workspace wiring itself: if a member manifest loses a
//! dependency or `src/lib.rs` drops a `pub use`, these paths stop
//! resolving and the suite fails fast — before anything subtler does.

use pg_triggers_suite as suite;

#[test]
fn umbrella_reexports_resolve_and_work() {
    // Engine via the umbrella path.
    let mut session = suite::pg_triggers::Session::new();
    session
        .install("CREATE TRIGGER t AFTER CREATE ON 'N' FOR EACH NODE BEGIN CREATE (:Log) END")
        .unwrap();
    session.run("CREATE (:N)").unwrap();
    let logs = session.run("MATCH (l:Log) RETURN count(*) AS n").unwrap();
    assert_eq!(logs.single().and_then(|v| v.as_i64()), Some(1));

    // Substrates.
    let mut graph = suite::pg_graph::Graph::new();
    let node = graph
        .create_node(["X"], suite::pg_graph::PropertyMap::new())
        .unwrap();
    {
        use suite::pg_graph::GraphView;
        assert!(graph.node_exists(node));
    }
    let out = suite::pg_cypher::run_query(
        &mut graph,
        "MATCH (x:X) RETURN count(*) AS n",
        &suite::pg_cypher::Params::new(),
        0,
    )
    .unwrap();
    assert_eq!(
        out.single().and_then(|v| v.as_i64()),
        Some(1),
        "pg_cypher sees the pg_graph node"
    );
    let gt = suite::pg_schema::parse_graph_type("CREATE GRAPH TYPE T { (XType: X {}) }").unwrap();
    assert!(suite::pg_schema::validate_graph(&graph, &gt).is_empty());

    // Translators and the running example.
    let _apoc = suite::pg_apoc::ApocDb::new();
    let _memgraph = suite::pg_memgraph::MemgraphDb::new();
    assert!(!suite::pg_covid::PAPER_TRIGGERS.is_empty());

    // The wire server, end to end through the umbrella paths.
    let server =
        suite::pg_server::Server::bind("127.0.0.1:0", suite::pg_triggers::Session::new()).unwrap();
    let addr = server.local_addr();
    let handle = server.spawn();
    let mut client = suite::pg_server::Client::connect(addr).unwrap();
    let out = client.run_all("RETURN 1 AS one", &[]).unwrap();
    assert_eq!(out.single_i64(), Some(1));
    client.goodbye().ok();
    handle.shutdown();
}

#[test]
fn flat_crate_paths_also_resolve() {
    // The integration tests and examples import the member crates
    // directly; keep those dependency edges alive too.
    let _ = pg_triggers::Session::new();
    let _ = pg_graph::Graph::new();
    let _ = pg_apoc::ApocDb::new();
    let _ = pg_memgraph::MemgraphDb::new();
    let _ = pg_covid::GeneratorConfig::default();
    let _ = pg_cypher::Params::new();
    let _ = pg_server::MAX_FRAME;
}
