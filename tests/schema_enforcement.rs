//! PG-Schema + PG-Triggers working together: a session with the CoV2K
//! graph type attached validates every commit; violations roll back like a
//! failing ONCOMMIT trigger, and triggers + schema compose.

use pg_triggers::{Session, TriggerError};

fn schema_session() -> Session {
    let mut s = Session::new();
    s.set_schema(pg_covid::covid_graph_type());
    s
}

#[test]
fn conformant_commit_passes() {
    let mut s = schema_session();
    s.run(
        "CREATE (:Mutation {name: 'Spike:D614G', protein: 'Spike'}) \
         CREATE (:CriticalEffect {description: 'bad'})",
    )
    .unwrap();
    assert_eq!(s.graph().node_count(), 2);
}

#[test]
fn untyped_node_rolls_back() {
    let mut s = schema_session();
    let err = s.run("CREATE (:Gremlin {x: 1})").unwrap_err();
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
    assert_eq!(s.graph().node_count(), 0);
}

#[test]
fn missing_required_property_rolls_back() {
    let mut s = schema_session();
    let err = s.run("CREATE (:Mutation {name: 'x'})").unwrap_err(); // missing protein
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
    assert_eq!(s.graph().node_count(), 0);
}

#[test]
fn wrong_property_type_rolls_back() {
    let mut s = schema_session();
    let err = s
        .run("CREATE (:Hospital {name: 'Sacco', icuBeds: 'many'})")
        .unwrap_err();
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
}

#[test]
fn pg_key_uniqueness_enforced_across_commits() {
    let mut s = schema_session();
    s.run("CREATE (:Sequence {accession: 'A1', collection: date()})")
        .unwrap();
    let err = s
        .run("CREATE (:Sequence {accession: 'A1', collection: date()})")
        .unwrap_err();
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
    // only the first sequence survives
    let n = s
        .run("MATCH (x:Sequence) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn bad_edge_signature_rolls_back() {
    let mut s = schema_session();
    s.run(
        "CREATE (:Mutation {name: 'm', protein: 'Spike'}) \
         CREATE (:Region {name: 'Lombardy'})",
    )
    .unwrap();
    // Mutation-[:TreatedAt]->Region matches no edge type signature
    let err = s
        .run("MATCH (m:Mutation), (r:Region) CREATE (m)-[:TreatedAt]->(r)")
        .unwrap_err();
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
    assert_eq!(s.graph().rel_count(), 0);
}

#[test]
fn trigger_effects_are_also_validated() {
    // A trigger that produces a schema-violating node fails the whole
    // transaction — triggers cannot smuggle non-conformant data past the
    // schema guard.
    let mut s = schema_session();
    s.install(
        "CREATE TRIGGER rogue AFTER CREATE ON 'Region' FOR EACH NODE
         BEGIN CREATE (:Gremlin) END",
    )
    .unwrap();
    let err = s.run("CREATE (:Region {name: 'Lombardy'})").unwrap_err();
    assert!(matches!(err, TriggerError::Schema(_)), "{err}");
    assert_eq!(s.graph().node_count(), 0);
}

#[test]
fn open_alert_type_lets_triggers_attach_arbitrary_props() {
    // The §6.2 alert triggers attach mutation/lineage properties — legal
    // because AlertType is OPEN.
    let mut s = schema_session();
    s.install(pg_covid::triggers::NEW_CRITICAL_MUTATION)
        .unwrap();
    s.run("CREATE (:CriticalEffect {description: 'bad'})")
        .unwrap();
    s.run(
        "MATCH (e:CriticalEffect)
         CREATE (:Mutation {name: 'Spike:E484K', protein: 'Spike'})-[:Risk]->(e)",
    )
    .unwrap();
    let n = s
        .run("MATCH (a:Alert) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn whole_scenario_stays_conformant_under_guard() {
    use pg_covid::{GeneratorConfig, Scenario, ScenarioConfig};
    let mut sc = Scenario::new(ScenarioConfig {
        generator: GeneratorConfig {
            patients: 50,
            sequences: 40,
            ..GeneratorConfig::default()
        },
        waves: 2,
        admissions_per_wave: 5,
        discoveries: 1,
        redesignations: 1,
        indexed: false,
    });
    sc.session.set_schema(pg_covid::covid_graph_type());
    let report = sc.run().unwrap();
    assert!(report.total_alerts() > 0);
}
