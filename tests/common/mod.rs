//! Shared helpers for the umbrella durability tests (kill-point recovery
//! fuzzing and trigger-aware replay).
//!
//! Each test binary compiles its own copy; not every binary uses every
//! helper, so dead-code lints are off.
#![allow(dead_code)]

use pg_graph::{Graph, Value};
use pg_triggers::Session;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A self-deleting scratch directory under the system temp dir.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pg_suite_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The trigger set installed on every session in these tests. Trigger
/// definitions are code, not data: recovery restores the graph and the
/// application re-installs its triggers, so every twin gets the same set.
///
/// The mix covers the dispatch shapes whose effects land in WAL frames:
/// an `AFTER CREATE` cascade, an `ONCOMMIT` fixpoint round over the
/// cascade's own output, and an `AFTER SET` property audit.
pub const TRIGGERS: [&str; 3] = [
    "CREATE TRIGGER alert AFTER CREATE ON 'Mutation' FOR EACH NODE
     WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
     BEGIN CREATE (:Alert {mutation: NEW.name}) END",
    "CREATE TRIGGER digest ONCOMMIT CREATE ON 'Alert' FOR ALL NODES
     BEGIN CREATE (:Digest {n: size(NEWNODES)}) END",
    "CREATE TRIGGER audit AFTER SET ON 'Mutation'.'count' FOR EACH NODE
     BEGIN CREATE (:Audit {of: NEW.name, val: NEW.count}) END",
];

pub fn install_triggers(s: &mut Session) {
    for ddl in TRIGGERS {
        s.install(ddl).expect("trigger DDL must install");
    }
}

/// The fixed query panel both twins answer after recovery. Every query
/// carries a total `ORDER BY` (or is a bare count), so row-for-row
/// equality is the right oracle.
pub const PANEL: [&str; 7] = [
    "MATCH (m:Mutation) RETURN count(*) AS n",
    "MATCH (e:CriticalEffect) RETURN count(*) AS n",
    "MATCH (a:Alert) RETURN count(*) AS n",
    "MATCH (d:Digest) RETURN d.n AS n ORDER BY n",
    "MATCH (m:Mutation) RETURN m.name AS n, m.count AS c ORDER BY n, c",
    "MATCH (m:Mutation)-[:Risk]->(e:CriticalEffect)
     RETURN m.name AS n, e.description AS d ORDER BY n, d",
    "MATCH (x:Audit) RETURN x.of AS o, x.val AS v ORDER BY o, v",
];

/// Evaluate the panel, returning one row set per query.
pub fn panel_rows(s: &mut Session) -> Vec<Vec<Vec<Value>>> {
    PANEL
        .iter()
        .map(|q| s.run(q).expect("panel query").rows)
        .collect()
}

/// A comparable dump of every node and relationship record (sorted, so
/// map iteration order is moot). Id watermarks are deliberately *not*
/// included: a snapshot persists the allocator as of the checkpoint,
/// which may include allocations from transactions rolled back after the
/// last commit — the recovered watermark is `>=` the replay twin's, not
/// equal (asserted separately where it matters).
pub fn dump(g: &Graph) -> Vec<String> {
    let mut records: Vec<String> = g.nodes().map(|n| format!("{n:?}")).collect();
    records.extend(g.rels().map(|r| format!("{r:?}")));
    records.sort();
    records
}

/// One command of a random workload script. Statements are built from
/// small integer picks so scripts are fully deterministic; transaction
/// commands are model-checked by the driver (invalid ones are skipped
/// identically on both twins).
#[derive(Debug, Clone)]
pub enum Cmd {
    /// `CREATE (:CriticalEffect {description: 'e<d>'})`
    Effect(u8),
    /// A Mutation wired to every existing CriticalEffect — fires `alert`
    /// (and transitively `digest`) when any effect exists.
    RiskyMutation(u8),
    /// A Mutation with no Risk edge — the `alert` condition stays false.
    PlainMutation(u8),
    /// `SET m.count = <v>` — fires `audit` when the mutation exists.
    SetCount(u8, i64),
    DeleteMutation(u8),
    DeleteEffect(u8),
    Begin,
    Commit,
    Rollback,
    /// Compact the WAL into a snapshot (durable sessions only, outside
    /// transactions; a no-op elsewhere so twins stay in lockstep).
    Checkpoint,
}

/// Apply one command. `in_tx` is the driver's transaction model; both
/// twins share it by replaying the same command sequence.
pub fn apply_cmd(s: &mut Session, cmd: &Cmd, in_tx: &mut bool) {
    let stmt = match cmd {
        Cmd::Begin => {
            if !*in_tx {
                s.begin().expect("begin");
                *in_tx = true;
            }
            return;
        }
        Cmd::Commit => {
            if *in_tx {
                s.commit().expect("commit");
                *in_tx = false;
            }
            return;
        }
        Cmd::Rollback => {
            if *in_tx {
                s.rollback().expect("rollback");
                *in_tx = false;
            }
            return;
        }
        Cmd::Checkpoint => {
            if s.is_durable() && !*in_tx {
                s.checkpoint().expect("checkpoint");
            }
            return;
        }
        Cmd::Effect(d) => format!("CREATE (:CriticalEffect {{description: 'e{}'}})", d % 3),
        Cmd::RiskyMutation(n) => {
            format!("MATCH (e:CriticalEffect) CREATE (:Mutation {{name: 'm{n}'}})-[:Risk]->(e)")
        }
        Cmd::PlainMutation(n) => format!("CREATE (:Mutation {{name: 'p{n}'}})"),
        Cmd::SetCount(n, v) => format!("MATCH (m:Mutation {{name: 'm{n}'}}) SET m.count = {v}"),
        Cmd::DeleteMutation(n) => format!("MATCH (m:Mutation {{name: 'm{n}'}}) DETACH DELETE m"),
        Cmd::DeleteEffect(d) => format!(
            "MATCH (e:CriticalEffect {{description: 'e{}'}}) DETACH DELETE e",
            d % 3
        ),
    };
    s.run(&stmt).expect("workload statement");
}

/// `PG_FUZZ_CASES` raises the proptest case count for CI soak runs; the
/// default stays fast enough for every PR.
pub fn fuzz_cases() -> u32 {
    std::env::var("PG_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}
