//! Trigger-aware recovery: WAL frames carry **post-cascade** committed
//! ops, so replay restores every trigger effect without ever re-entering
//! dispatch — and the rebuilt optimizer statistics make the recovered
//! engine plan exactly like a never-crashed twin.
//!
//! The zero-re-firing proof is two-sided: the recovered engine's `fired`
//! counter stays at zero, *and* the recovered records carry exactly the
//! trigger-created nodes (`Alert`/`Digest`/`Audit`) the live session
//! committed — one extra firing during replay would mint an extra record
//! and break the record-for-record comparison.

mod common;

use common::{dump, install_triggers, panel_rows, TempDir};
use pg_triggers::{EngineConfig, ExecResult, Session, SyncPolicy, WalOptions};

fn wal_opts() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        group_bytes: 32 * 1024,
    }
}

/// The deterministic cascading workload both the durable session and the
/// in-memory twin run. Every statement fans out through the trigger set:
/// risky mutations mint `Alert`s (AFTER CREATE), the commit point mints
/// `Digest`s over them (ONCOMMIT), and count updates mint `Audit`s
/// (AFTER SET).
fn workload(s: &mut Session) {
    s.run("CREATE (:CriticalEffect {description: 'e0'})")
        .unwrap();
    s.run("CREATE (:CriticalEffect {description: 'e1'})")
        .unwrap();
    for i in 0..4 {
        s.run(&format!(
            "MATCH (e:CriticalEffect) CREATE (:Mutation {{name: 'm{i}'}})-[:Risk]->(e)"
        ))
        .unwrap();
    }
    s.begin().unwrap();
    s.run("MATCH (m:Mutation {name: 'm1'}) SET m.count = 7")
        .unwrap();
    s.run("MATCH (m:Mutation {name: 'm3'}) SET m.count = 2")
        .unwrap();
    s.commit().unwrap();
    s.run("MATCH (m:Mutation {name: 'm0'}) DETACH DELETE m")
        .unwrap();
}

/// Queries whose `EXPLAIN` output (access paths, estimates, actuals) must
/// be identical on the recovered engine and the never-crashed twin.
const EXPLAIN_PANEL: [&str; 4] = [
    "EXPLAIN MATCH (m:Mutation) WHERE m.name = 'm2' RETURN m.name AS n",
    "EXPLAIN MATCH (m:Mutation)-[:Risk]->(e:CriticalEffect) RETURN m.name AS n, e.description AS d",
    "EXPLAIN MATCH (a:Alert) RETURN count(*) AS n",
    "EXPLAIN MATCH (m:Mutation) WHERE m.count >= 2 RETURN m.name AS n",
];

fn explain(s: &mut Session, q: &str) -> String {
    match s.execute(q) {
        Ok(ExecResult::Explain(report)) => report,
        other => panic!("expected EXPLAIN output for {q}, got {other:?}"),
    }
}

#[test]
fn cascades_survive_a_crash_without_refiring() {
    let tmp = TempDir::new("replay");
    let (mut live, _) =
        Session::open_durable(tmp.path(), EngineConfig::default(), wal_opts()).unwrap();
    install_triggers(&mut live);
    workload(&mut live);
    assert!(
        live.stats().fired > 0,
        "workload must actually cascade (got {:?})",
        live.stats()
    );
    let live_fired = live.stats().fired;
    let live_dump = dump(live.graph());
    let live_panel = panel_rows(&mut live);
    live.wal_flush().unwrap();
    drop(live); // crash: no checkpoint, no clean close

    let (mut recovered, report) =
        Session::open_durable(tmp.path(), EngineConfig::default(), wal_opts()).unwrap();
    install_triggers(&mut recovered);

    // Replay restored every cascade effect from the frames alone...
    assert_eq!(dump(recovered.graph()), live_dump);
    assert_eq!(panel_rows(&mut recovered), live_panel);
    assert!(report.commits_replayed > 0);
    // ...without a single trigger activation: the live session fired
    // plenty, the recovered one fired none.
    assert!(live_fired > 0);
    assert_eq!(
        recovered.stats().fired,
        0,
        "recovery must never re-enter trigger dispatch"
    );
    assert_eq!(recovered.stats().suppressed, 0);

    // New work on the recovered session cascades normally again.
    recovered
        .run("MATCH (e:CriticalEffect {description: 'e0'}) CREATE (:Mutation {name: 'fresh'})-[:Risk]->(e)")
        .unwrap();
    assert!(
        recovered.stats().fired > 0,
        "triggers live on after recovery"
    );
}

#[test]
fn recovered_planner_explains_exactly_like_the_never_crashed_twin() {
    // Satellite: post-recovery `rebuild_stats` must leave the optimizer
    // in the same state as a twin whose statistics were rebuilt from
    // identical records — asserted through EXPLAIN text equality.
    let tmp = TempDir::new("explain");
    let (mut live, _) =
        Session::open_durable(tmp.path(), EngineConfig::default(), wal_opts()).unwrap();
    install_triggers(&mut live);
    // Index DDL is not WAL-logged (definitions are schema, not data):
    // checkpoint right after so the snapshot carries the definition.
    live.execute("CREATE INDEX ON :Mutation(name)").unwrap();
    live.checkpoint().unwrap();
    workload(&mut live);
    live.wal_flush().unwrap();
    drop(live); // crash

    let (mut recovered, _) =
        Session::open_durable(tmp.path(), EngineConfig::default(), wal_opts()).unwrap();
    install_triggers(&mut recovered);

    // The twin never crashes: same triggers, same DDL, same workload.
    let mut twin = Session::new();
    install_triggers(&mut twin);
    twin.execute("CREATE INDEX ON :Mutation(name)").unwrap();
    workload(&mut twin);
    // Level the one legitimate difference: recovery already rebuilt its
    // statistics from the restored records; the twin accumulated drift
    // incrementally, so rebuild it too before comparing plans.
    twin.graph_mut().rebuild_stats();

    assert_eq!(dump(recovered.graph()), dump(twin.graph()));
    for q in EXPLAIN_PANEL {
        let r = explain(&mut recovered, q);
        let t = explain(&mut twin, q);
        assert_eq!(r, t, "EXPLAIN diverged for {q}");
    }
    // And the index definition really did travel via the snapshot.
    let probe = explain(&mut recovered, EXPLAIN_PANEL[0]);
    assert!(
        probe.contains("IndexEq(Mutation.name)"),
        "recovered planner lost the index: {probe}"
    );
}
