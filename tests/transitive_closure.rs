//! The application §5.1/§7 of the paper single out as *requiring* correct
//! cascading: "inferring properties of paths of arbitrary length".
//!
//! Two triggers incrementally maintain the transitive closure of `Edge`
//! relationships as derived `Reaches` relationships. The derivation rules
//! fire each other (Reaches begets Reaches), so the maintenance only works
//! on an engine with correct cascading — on the APOC/Memgraph no-cascade
//! emulations the closure stays incomplete, exactly the limitation the
//! paper reports.

use pg_triggers::{EngineConfig, Session};

/// Base case: every new Edge is a Reaches (unless already derived).
const BASE: &str = "
CREATE TRIGGER tc_base AFTER CREATE ON 'Edge' FOR EACH RELATIONSHIP
BEGIN
  MATCH (a)-[NEW]->(b)
  MERGE (a)-[:Reaches]->(b)
END";

/// Inductive case: a new Reaches composes with existing ones on both sides.
/// MERGE makes the rules convergent (no new relationship → no new event).
const STEP: &str = "
CREATE TRIGGER tc_step AFTER CREATE ON 'Reaches' FOR EACH RELATIONSHIP
BEGIN
  MATCH (a)-[NEW]->(b)
  OPTIONAL MATCH (b)-[:Reaches]->(c) WHERE c IS NOT NULL AND NOT (c = a)
  FOREACH (x IN CASE WHEN c IS NULL THEN [] ELSE [c] END | MERGE (a)-[:Reaches]->(x))
  WITH a, b
  OPTIONAL MATCH (z)-[:Reaches]->(a) WHERE z IS NOT NULL AND NOT (z = b)
  FOREACH (y IN CASE WHEN z IS NULL THEN [] ELSE [z] END | MERGE (y)-[:Reaches]->(b))
END";

fn tc_session() -> Session {
    let mut s = Session::with_config(EngineConfig {
        max_cascade_depth: 64,
        ..EngineConfig::default()
    });
    s.install(BASE).unwrap();
    s.install(STEP).unwrap();
    s
}

fn reaches(s: &mut Session) -> i64 {
    s.run("MATCH ()-[r:Reaches]->() RETURN count(r) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

#[test]
fn chain_closure_is_complete() {
    let mut s = tc_session();
    s.run("CREATE (:N {i: 0}), (:N {i: 1}), (:N {i: 2}), (:N {i: 3})")
        .unwrap();
    for (a, b) in [(0, 1), (1, 2), (2, 3)] {
        s.run(&format!(
            "MATCH (a:N {{i: {a}}}), (b:N {{i: {b}}}) CREATE (a)-[:Edge]->(b)"
        ))
        .unwrap();
    }
    // closure of a 4-chain: 3 + 2 + 1 = 6 pairs
    assert_eq!(reaches(&mut s), 6);
    // and the long-range pair exists explicitly
    let n = s
        .run("MATCH (:N {i: 0})-[:Reaches]->(:N {i: 3}) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn closure_bridges_components() {
    let mut s = tc_session();
    s.run("CREATE (:N {i: 0}), (:N {i: 1}), (:N {i: 2}), (:N {i: 3})")
        .unwrap();
    // two disjoint edges…
    s.run("MATCH (a:N {i: 0}), (b:N {i: 1}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    s.run("MATCH (a:N {i: 2}), (b:N {i: 3}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    assert_eq!(reaches(&mut s), 2);
    // …bridged by a third: closure must include 0→2, 0→3, 1→2, 1→3
    s.run("MATCH (a:N {i: 1}), (b:N {i: 2}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    assert_eq!(reaches(&mut s), 6);
}

#[test]
fn closure_is_incremental_and_idempotent() {
    let mut s = tc_session();
    s.run("CREATE (:N {i: 0}), (:N {i: 1}), (:N {i: 2})")
        .unwrap();
    s.run("MATCH (a:N {i: 0}), (b:N {i: 1}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    s.run("MATCH (a:N {i: 1}), (b:N {i: 2}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    let after_first = reaches(&mut s);
    assert_eq!(after_first, 3);
    // adding a parallel Edge derives nothing new (MERGE-idempotent)
    s.run("MATCH (a:N {i: 0}), (b:N {i: 1}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    assert_eq!(reaches(&mut s), 3);
}

#[test]
fn no_cascade_mode_leaves_closure_incomplete() {
    // The same rule set on the APOC/Memgraph-style engine: only the base
    // rule fires (Edge→Reaches); Reaches-to-Reaches composition never runs.
    let mut s = Session::with_config(EngineConfig {
        cascading_enabled: false,
        max_cascade_depth: 64,
        ..EngineConfig::default()
    });
    s.install(BASE).unwrap();
    s.install(STEP).unwrap();
    s.run("CREATE (:N {i: 0}), (:N {i: 1}), (:N {i: 2})")
        .unwrap();
    s.run("MATCH (a:N {i: 0}), (b:N {i: 1}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    s.run("MATCH (a:N {i: 1}), (b:N {i: 2}) CREATE (a)-[:Edge]->(b)")
        .unwrap();
    // base pairs derived, but 0→2 is missing: the §5.1 limitation in action
    assert_eq!(reaches(&mut s), 2);
}

#[test]
fn termination_analysis_flags_the_rule_set() {
    // The triggering graph has tc_step → tc_step (Reaches may beget
    // Reaches): the conservative analysis reports a cycle, even though
    // MERGE makes the runtime convergent — exactly the §6.2.3 discussion
    // (conservative analyses may flag terminating rule sets).
    let s = tc_session();
    let report = pg_triggers::analyze(s.catalog());
    assert!(report.cyclic_triggers.contains(&"tc_step".to_string()));
    assert!(report
        .edges
        .contains(&("tc_base".to_string(), "tc_step".to_string())));
}
