//! §6 end-to-end: the CoV2K schema, the six §6.2 triggers, and the
//! pandemic scenario, checked across crates.

use pg_covid::{GeneratorConfig, Scenario, ScenarioConfig};
use pg_graph::Value;
use pg_schema::validate_graph;

fn cfg() -> ScenarioConfig {
    ScenarioConfig {
        generator: GeneratorConfig {
            regions: 2,
            hospitals_per_region: 2,
            icu_beds_per_hospital: 15,
            labs_per_region: 1,
            mutations: 20,
            critical_fraction: 0.3,
            effects: 4,
            lineages: 6,
            designated_fraction: 0.7,
            sequences: 60,
            max_mutations_per_sequence: 3,
            patients: 80,
            seed: 7,
        },
        waves: 3,
        admissions_per_wave: 7,
        discoveries: 3,
        redesignations: 2,
        indexed: false,
    }
}

#[test]
fn full_scenario_fires_all_alert_kinds() {
    let mut sc = Scenario::new(cfg());
    let report = sc.run().unwrap();
    assert_eq!(report.alerts.get("New critical mutation"), Some(&3));
    assert!(report.alerts.contains_key("New critical lineage"));
    assert_eq!(
        report.alerts.get("New Designation for an existing Lineage"),
        Some(&2)
    );
    assert_eq!(report.admissions, 21);
    assert!(report.triggers_fired > 0);
}

#[test]
fn alerts_conform_to_open_schema_type() {
    // Alerts carry arbitrary extra properties (mutation, lineage) — legal
    // because AlertType is OPEN (§6.2: "a new, OPEN type").
    let mut sc = Scenario::new(cfg());
    sc.run().unwrap();
    let gt = pg_covid::covid_graph_type();
    let violations = validate_graph(sc.session.graph(), &gt);
    // admissions create ADM-patients: they conform; alerts conform; the
    // whole post-scenario graph must still validate.
    assert_eq!(
        violations,
        vec![],
        "post-scenario graph violates the schema"
    );
}

#[test]
fn icu_increase_alert_fires_on_late_wave() {
    // With 15 beds and 7-patient waves on Sacco alternating with another
    // hospital, the second Sacco wave adds 7 to ~7 existing → > 10%.
    let mut sc = Scenario::new(cfg());
    sc.admission_wave("Sacco", 7).unwrap();
    let r1 = sc.report().unwrap();
    // first wave: NewIcuPat == TotalIcuPat → ratio 1.0 > 0.1 → fires
    assert!(r1
        .alerts
        .contains_key("ICU patients at Sacco Hospital have increased by > 10%"));
}

#[test]
fn relocation_preserves_patient_count() {
    let mut sc = Scenario::new(ScenarioConfig {
        generator: GeneratorConfig {
            icu_beds_per_hospital: 5,
            ..cfg().generator
        },
        waves: 0,
        ..cfg()
    });
    sc.admission_wave("Sacco", 9).unwrap();
    // every admitted patient is still treated somewhere, exactly once
    let out = sc
        .session
        .run(
            "MATCH (p:IcuPatient) WHERE p.ssn STARTS WITH 'ADM' \
             OPTIONAL MATCH (p)-[t:TreatedAt]-(:Hospital) \
             WITH p, count(t) AS homes RETURN collect(homes) AS hs",
        )
        .unwrap();
    match out.single() {
        Some(Value::List(hs)) => {
            assert_eq!(hs.len(), 9);
            for h in hs {
                assert_eq!(h, &Value::Int(1), "patient with {h} hospitals");
            }
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn who_designation_trigger_ignores_fresh_assignment() {
    // Setting whoDesignation on a lineage that had none: OLD.who is null →
    // `OLD.who <> NEW.who` is NULL → no alert (3-valued logic, §4.1).
    let mut sc = Scenario::new(ScenarioConfig {
        waves: 0,
        discoveries: 0,
        redesignations: 0,
        ..cfg()
    });
    sc.session.run("CREATE (:Lineage {name: 'fresh'})").unwrap();
    sc.session
        .run("MATCH (l:Lineage {name: 'fresh'}) SET l.whoDesignation = 'Pi'")
        .unwrap();
    let report = sc.report().unwrap();
    assert_eq!(
        report.alerts.get("New Designation for an existing Lineage"),
        None
    );
    // but changing it afterwards fires
    sc.session
        .run("MATCH (l:Lineage {name: 'fresh'}) SET l.whoDesignation = 'Rho'")
        .unwrap();
    let report = sc.report().unwrap();
    assert_eq!(
        report.alerts.get("New Designation for an existing Lineage"),
        Some(&1)
    );
}

#[test]
fn scenario_is_deterministic() {
    let r1 = Scenario::new(cfg()).run().unwrap();
    let r2 = Scenario::new(cfg()).run().unwrap();
    assert_eq!(r1, r2);
}
