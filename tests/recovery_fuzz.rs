//! Kill-at-a-random-point recovery fuzzing — the durability analogue of
//! the differential query fuzzer in `crates/cypher/tests/differential.rs`.
//!
//! Each case drives a **durable** session (triggers installed, WAL
//! attached) through a random script of mutations, explicit
//! transactions, rollbacks and checkpoints, then simulates a crash by
//! copying the durable directory with the WAL truncated at a **random
//! byte offset** — frame boundaries, mid-frame, mid-group-commit batch,
//! even inside the file magic. A stale `snapshot.pgs.tmp` torn mid-write
//! is planted in every crash image, so the mid-snapshot kill window is
//! exercised on every single case.
//!
//! Recovery opens the crash image and reports `last_seq = k`. The oracle
//! is a **never-crashed in-memory twin**: a fresh session with the same
//! triggers replaying the script prefix up to the command that produced
//! frame `k` (rolled-back transactions included, so id-allocator state
//! is reproduced bit-for-bit). Recovered state must match the twin
//! record-for-record and query-panel-for-query-panel — zero divergences
//! — the recovered engine must report **zero trigger firings** (frames
//! carry post-cascade ops; replay never re-enters dispatch), and the
//! recovered log must accept new commits at `seq = k + 1`.
//!
//! `PG_FUZZ_CASES` (read in CI's recovery-fuzz nightly) raises the case
//! count for soak runs; the default stays fast enough for every PR.

mod common;

use common::{apply_cmd, dump, fuzz_cases, install_triggers, panel_rows, Cmd, TempDir};
use pg_triggers::{EngineConfig, Session, SyncPolicy, WalOptions};
use pg_wal::{SNAPSHOT_FILE, SNAPSHOT_TMP, WAL_FILE};
use proptest::prelude::*;

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    let set_count = (0u8..6, -4i64..5).prop_map(|(n, v)| Cmd::SetCount(n, v));
    prop_oneof![
        (0u8..3).prop_map(Cmd::Effect),
        (0u8..6).prop_map(Cmd::RiskyMutation),
        (0u8..6).prop_map(Cmd::RiskyMutation),
        (0u8..6).prop_map(Cmd::PlainMutation),
        set_count.clone(),
        set_count,
        (0u8..6).prop_map(Cmd::DeleteMutation),
        (0u8..3).prop_map(Cmd::DeleteEffect),
        Just(Cmd::Begin),
        Just(Cmd::Commit),
        Just(Cmd::Rollback),
        Just(Cmd::Checkpoint),
    ]
}

/// Run one kill-point case end to end. `cut_pick` selects the crash
/// offset within the flushed WAL; `opts` chooses the fsync policy under
/// which the frames were appended.
fn run_case(tag: &str, cmds: &[Cmd], cut_pick: u64, opts: WalOptions) {
    let tmp = TempDir::new(tag);
    let live = tmp.path().join("live");

    // 1. Random workload against the durable session.
    let (mut session, _) =
        Session::open_durable(&live, EngineConfig::default(), opts.clone()).expect("open live");
    install_triggers(&mut session);
    let mut in_tx = false;
    let mut seq_after = Vec::with_capacity(cmds.len());
    for cmd in cmds {
        apply_cmd(&mut session, cmd, &mut in_tx);
        seq_after.push(session.wal_seq());
    }
    // Push the OS-visible bytes out so the crash image below is exactly
    // what a kill after the last group sync would leave behind.
    session.wal_flush().expect("flush");

    // 2. Crash image: snapshot copied verbatim (its write is atomic by
    //    construction), WAL truncated at a random byte, and a torn
    //    snapshot temp file planted to simulate a kill mid-checkpoint.
    let crash = tmp.path().join("crash");
    std::fs::create_dir_all(&crash).unwrap();
    if live.join(SNAPSHOT_FILE).exists() {
        std::fs::copy(live.join(SNAPSHOT_FILE), crash.join(SNAPSHOT_FILE)).unwrap();
    }
    let wal_bytes = std::fs::read(live.join(WAL_FILE)).unwrap();
    let cut = (cut_pick as usize) % (wal_bytes.len() + 1);
    std::fs::write(crash.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
    std::fs::write(crash.join(SNAPSHOT_TMP), b"PGSNAP01torn-mid-write").unwrap();

    // 3. Recover (lenient tail mode — this *is* a crash signature).
    let (mut recovered, report) =
        Session::open_durable(&crash, EngineConfig::default(), opts.clone())
            .expect("recovery must tolerate any kill point");
    install_triggers(&mut recovered);
    let k = report.last_seq;
    assert!(
        !crash.join(SNAPSHOT_TMP).exists(),
        "stale snapshot temp file must be cleared on open"
    );

    // 4. Never-crashed twin: replay the committed prefix in memory.
    let mut twin = Session::new();
    install_triggers(&mut twin);
    if k > 0 {
        let idx = seq_after
            .iter()
            .position(|&s| s == k)
            .expect("a surviving frame must map back to the command that wrote it");
        let mut twin_tx = false;
        for cmd in &cmds[..=idx] {
            apply_cmd(&mut twin, cmd, &mut twin_tx);
        }
        assert!(!twin_tx, "frame {k} can only be produced by a commit point");
    }

    // 5. Zero divergences: records (ids included), then the query panel.
    //    Watermarks may only run ahead: a snapshot persists allocator
    //    state that can include rolled-back allocations newer than the
    //    last surviving frame.
    assert_eq!(
        dump(recovered.graph()),
        dump(twin.graph()),
        "recovered records diverge from twin at seq {k} (cut {cut}/{})",
        wal_bytes.len()
    );
    let (rn, rr) = recovered.graph().id_watermarks();
    let (tn, tr) = twin.graph().id_watermarks();
    assert!(
        rn >= tn && rr >= tr,
        "recovered allocator ({rn}, {rr}) fell behind the twin ({tn}, {tr})"
    );
    assert_eq!(
        panel_rows(&mut recovered),
        panel_rows(&mut twin),
        "panel diverges at seq {k} (cut {cut}/{})",
        wal_bytes.len()
    );

    // 6. Replay is trigger-free: every firing already happened before the
    //    crash and its effects travelled inside the frames.
    assert_eq!(
        recovered.stats().fired,
        0,
        "recovery re-entered trigger dispatch"
    );

    // 7. The recovered log accepts new durable commits where it left off.
    recovered
        .run("CREATE (:CriticalEffect {description: 'post-crash'})")
        .expect("recovered session must accept writes");
    assert_eq!(recovered.wal_seq(), k + 1, "WAL must resume at k + 1");
}

fn always() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Always,
        group_bytes: 32 * 1024,
    }
}

/// Group commit with a tiny batch threshold: frames pile up unsynced and
/// the random cut routinely lands inside a half-written batch.
fn group_small() -> WalOptions {
    WalOptions {
        sync: SyncPolicy::Group,
        group_bytes: 512,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases() })]

    #[test]
    fn kill_at_random_byte_matches_the_never_crashed_twin(
        cmds in proptest::collection::vec(cmd_strategy(), 1..32),
        cut_pick in 0u64..1_000_000,
    ) {
        run_case("kill", &cmds, cut_pick, always());
    }

    #[test]
    fn kill_mid_group_commit_matches_the_never_crashed_twin(
        cmds in proptest::collection::vec(cmd_strategy(), 1..32),
        cut_pick in 0u64..1_000_000,
    ) {
        run_case("group", &cmds, cut_pick, group_small());
    }

    #[test]
    fn kill_mid_snapshot_lands_on_the_checkpoint_epoch(
        cmds in proptest::collection::vec(cmd_strategy(), 1..24),
        at in 0usize..24,
        cut_pick in 0u64..1_000_000,
    ) {
        // Force a checkpoint at a random script position so the crash
        // image carries a real snapshot plus a post-checkpoint log
        // suffix (plus the torn `snapshot.pgs.tmp` run_case plants).
        let mut cmds = cmds.to_vec();
        cmds.insert(at % (cmds.len() + 1), Cmd::Checkpoint);
        run_case("snap", &cmds, cut_pick, always());
    }
}
