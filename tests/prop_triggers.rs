//! Property-based tests over the trigger engine:
//! * DDL unparse/re-parse round-trips for generated trigger specs;
//! * a counting trigger observes exactly the statement's delta
//!   (soundness & completeness of event matching) under random batches;
//! * cascades never exceed the configured depth bound;
//! * APOC/Memgraph translations of generated simple triggers produce the
//!   same number of firings as the native engine.

use pg_apoc::ApocDb;
use pg_memgraph::MemgraphDb;
use pg_triggers::{parse_trigger_ddl, DdlStatement, EngineConfig, Session, TriggerError};
use proptest::prelude::*;

fn time_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("AFTER"), Just("ONCOMMIT"), Just("DETACHED"),]
}

fn event_item_strategy() -> impl Strategy<Value = (&'static str, &'static str, &'static str)> {
    // (event, item keyword, optional property suffix)
    prop_oneof![
        Just(("CREATE", "NODE", "")),
        Just(("DELETE", "NODE", "")),
        Just(("CREATE", "RELATIONSHIP", "")),
        Just(("DELETE", "RELATIONSHIP", "")),
        Just(("SET", "NODE", "")),
        Just(("REMOVE", "NODE", "")),
        Just(("SET", "NODE", ".'p'")),
        Just(("REMOVE", "NODE", ".'p'")),
        Just(("SET", "RELATIONSHIP", ".'p'")),
        Just(("REMOVE", "RELATIONSHIP", ".'p'")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_ddl_round_trips(
        time in time_strategy(),
        (event, item, prop) in event_item_strategy(),
        all in any::<bool>(),
        label in "[A-Z][a-z]{2,8}",
    ) {
        let granularity = if all {
            format!("ALL {item}S")
        } else {
            format!("EACH {item}")
        };
        let src = format!(
            "CREATE TRIGGER gen {time} {event} ON '{label}'{prop} FOR {granularity} \
             WHEN 1 = 1 BEGIN CREATE (:Log) END"
        );
        let spec = match parse_trigger_ddl(&src) {
            Ok(DdlStatement::CreateTrigger(s)) => s,
            Ok(_) => unreachable!(),
            Err(e) => return Err(TestCaseError::fail(format!("{src}: {e}"))),
        };
        prop_assert_eq!(spec.label.as_str(), label.as_str());
        prop_assert_eq!(spec.event.keyword(), event);
        prop_assert_eq!(spec.time.keyword(), time);
        // Display regenerates parseable header structure
        let shown = spec.to_string();
        let expected_on = format!("ON '{label}'");
        prop_assert!(shown.contains(&expected_on));
    }

    #[test]
    fn counting_trigger_sees_exact_delta(batch in 1usize..20, others in 0usize..10) {
        let mut s = Session::new();
        s.install(
            "CREATE TRIGGER c AFTER CREATE ON 'T' FOR EACH NODE BEGIN CREATE (:Seen) END",
        ).unwrap();
        let mut parts: Vec<String> = (0..batch).map(|i| format!("(:T {{i: {i}}})")).collect();
        parts.extend((0..others).map(|i| format!("(:U {{i: {i}}})")));
        s.run(&format!("CREATE {}", parts.join(", "))).unwrap();
        let seen = s.run("MATCH (x:Seen) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(seen as usize, batch);
    }

    #[test]
    fn cascade_depth_is_bounded(limit in 1usize..12) {
        let mut s = Session::with_config(EngineConfig {
            max_cascade_depth: limit,
            ..EngineConfig::default()
        });
        s.install(
            "CREATE TRIGGER sp AFTER CREATE ON 'X' FOR EACH NODE BEGIN CREATE (:X) END",
        ).unwrap();
        let err = s.run("CREATE (:X)").unwrap_err();
        let is_limit = matches!(err, TriggerError::RecursionLimit { depth, .. } if depth == limit);
        prop_assert!(is_limit);
        // everything rolled back
        let n = s.run("MATCH (x:X) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(n, 0);
        prop_assert!(s.stats().max_depth_seen <= limit);
    }

    #[test]
    fn translations_agree_on_firing_counts(
        batch in 1usize..8,
        threshold in 0i64..10,
    ) {
        let ddl = format!(
            "CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE \
             WHEN NEW.v > {threshold} BEGIN CREATE (:Probe) END"
        );
        let spec = match parse_trigger_ddl(&ddl).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => unreachable!(),
        };
        let parts: Vec<String> = (0..batch).map(|i| format!("(:P {{v: {i}}})")).collect();
        let event = format!("CREATE {}", parts.join(", "));
        let expected = (0..batch as i64).filter(|v| *v > threshold).count() as i64;

        let mut native = Session::new();
        native.install(&ddl).unwrap();
        native.run(&event).unwrap();
        let n = native.run("MATCH (p:Probe) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(n, expected);

        let mut apoc = ApocDb::new();
        let i = pg_apoc::translate(&spec).unwrap();
        apoc.install("neo4j", &i.name, &i.statement, i.phase.name()).unwrap();
        apoc.run_tx(&[event.as_str()]).unwrap();
        let a = apoc.query("MATCH (p:Probe) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(a, expected);

        let mut mg = MemgraphDb::new();
        let i = pg_memgraph::translate(&spec).unwrap();
        mg.create_trigger(&i.ddl).unwrap();
        mg.run_tx(&[event.as_str()]).unwrap();
        let m = mg.query("MATCH (p:Probe) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(m, expected);
    }

    #[test]
    fn oncommit_fixpoint_conserves_rollback(seedlings in 1usize..6) {
        // An ONCOMMIT trigger that always aborts must leave no trace, no
        // matter how many statements the transaction contained.
        let mut s = Session::new();
        s.install(
            "CREATE TRIGGER veto ONCOMMIT CREATE ON 'P' FOR ALL NODES BEGIN ABORT 'no' END",
        ).unwrap();
        s.begin().unwrap();
        for i in 0..seedlings {
            s.run(&format!("CREATE (:P {{i: {i}}})")).unwrap();
        }
        prop_assert!(s.commit().is_err());
        let n = s.run("MATCH (p:P) RETURN count(*) AS n").unwrap()
            .single().and_then(|v| v.as_i64()).unwrap();
        prop_assert_eq!(n, 0);
    }
}
