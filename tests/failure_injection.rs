//! Failure-injection tests: errors at every stage of trigger processing
//! must leave the store in a consistent, predictable state.

use pg_memgraph::MemgraphDb;
use pg_triggers::{EngineConfig, Session, TriggerError};

fn count(s: &mut Session, label: &str) -> i64 {
    s.run(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

#[test]
fn runtime_error_in_after_trigger_rolls_statement_back() {
    let mut s = Session::new();
    // the trigger statement has a type error at run time (prop access on int)
    s.install(
        "CREATE TRIGGER broken AFTER CREATE ON 'P' FOR EACH NODE
         BEGIN MATCH (x:P) WITH 1 AS one SET one.prop = 2 END",
    )
    .unwrap();
    let err = s.run("CREATE (:P)").unwrap_err();
    assert!(matches!(err, TriggerError::Cypher(_)), "{err}");
    assert_eq!(count(&mut s, "P"), 0);
}

#[test]
fn unbound_variable_in_condition_rolls_back() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER broken AFTER CREATE ON 'P' FOR EACH NODE
         WHEN ghost.x > 1
         BEGIN CREATE (:X) END",
    )
    .unwrap();
    let err = s.run("CREATE (:P)").unwrap_err();
    assert!(matches!(
        err,
        TriggerError::Cypher(pg_cypher::CypherError::UnboundVariable(_))
    ));
    assert_eq!(count(&mut s, "P"), 0);
}

#[test]
fn failure_deep_in_cascade_unwinds_everything() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER c1 AFTER CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:B) END")
        .unwrap();
    s.install("CREATE TRIGGER c2 AFTER CREATE ON 'B' FOR EACH NODE BEGIN CREATE (:C) END")
        .unwrap();
    s.install("CREATE TRIGGER c3 AFTER CREATE ON 'C' FOR EACH NODE BEGIN ABORT 'deep failure' END")
        .unwrap();
    let err = s.run("CREATE (:A)").unwrap_err();
    assert!(matches!(
        err,
        TriggerError::Cypher(pg_cypher::CypherError::Aborted(_))
    ));
    for l in ["A", "B", "C"] {
        assert_eq!(count(&mut s, l), 0, "{l} survived a failed cascade");
    }
}

#[test]
fn partial_tx_survives_failed_statement_then_commits() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER veto AFTER CREATE ON 'Bad' FOR EACH NODE BEGIN ABORT 'nope' END")
        .unwrap();
    s.begin().unwrap();
    s.run("CREATE (:Good {i: 1})").unwrap();
    assert!(s.run("CREATE (:Bad)").is_err());
    s.run("CREATE (:Good {i: 2})").unwrap();
    s.commit().unwrap();
    assert_eq!(count(&mut s, "Good"), 2);
    assert_eq!(count(&mut s, "Bad"), 0);
}

#[test]
fn detached_failures_are_isolated_and_reported() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER ok DETACHED CREATE ON 'P' FOR ALL NODES BEGIN CREATE (:Audit) END")
        .unwrap();
    s.install(
        "CREATE TRIGGER bad DETACHED CREATE ON 'P' FOR ALL NODES BEGIN ABORT 'detached boom' END",
    )
    .unwrap();
    s.run("CREATE (:P)").unwrap();
    // the good detached trigger ran, the bad one is recorded, main tx intact
    assert_eq!(s.detached_errors().len(), 1);
    assert_eq!(s.detached_errors()[0].0, "bad");
    assert_eq!(count(&mut s, "P"), 1);
    assert_eq!(count(&mut s, "Audit"), 1);
}

#[test]
fn failed_detached_tx_does_not_leak_partial_writes() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER partial DETACHED CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:Leak) WITH 1 AS one ABORT 'after writing' END",
    )
    .unwrap();
    s.run("CREATE (:P)").unwrap();
    assert_eq!(s.detached_errors().len(), 1);
    // the Leak node was rolled back with the autonomous transaction
    assert_eq!(count(&mut s, "Leak"), 0);
}

#[test]
fn write_in_read_only_condition_is_impossible() {
    // conditions execute against a read-only target: even a hand-built
    // spec with an updating condition fails cleanly at run time (and
    // install-time validation already rejects it).
    let mut s = Session::new();
    let mut spec = match pg_triggers::parse_trigger_ddl(
        "CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:X) END",
    )
    .unwrap()
    {
        pg_triggers::DdlStatement::CreateTrigger(sp) => sp,
        _ => unreachable!(),
    };
    spec.condition = Some(pg_cypher::parse_query("CREATE (:Evil) RETURN 1").unwrap());
    assert!(s.install_spec(spec).is_err());
}

#[test]
fn memgraph_before_commit_failure_rolls_back_tx() {
    let mut db = MemgraphDb::new();
    db.create_trigger(
        "CREATE TRIGGER veto ON () CREATE BEFORE COMMIT EXECUTE
         UNWIND createdVertices AS v ABORT 'no vertices today'",
    )
    .unwrap();
    assert!(db.run_tx(&["CREATE (:P)"]).is_err());
    let n = db
        .query("MATCH (p:P) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(n, 0);
}

#[test]
fn zero_effect_statements_fire_nothing() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:X) END")
        .unwrap();
    s.run("MATCH (n:Nothing) SET n.x = 1").unwrap(); // matches nothing
    s.run("RETURN 1 + 1 AS two").unwrap(); // pure read
    assert_eq!(s.stats().fired, 0);
    assert_eq!(count(&mut s, "X"), 0);
}

#[test]
fn net_zero_delta_fires_nothing() {
    // create + delete within one statement: the normalized delta is empty
    let mut s = Session::new();
    s.install("CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:X) END")
        .unwrap();
    s.install("CREATE TRIGGER d AFTER DELETE ON 'P' FOR EACH NODE BEGIN CREATE (:Y) END")
        .unwrap();
    s.run("CREATE (p:P) WITH p DETACH DELETE p").unwrap();
    assert_eq!(
        count(&mut s, "X"),
        0,
        "create trigger fired on net-zero delta"
    );
    assert_eq!(
        count(&mut s, "Y"),
        0,
        "delete trigger fired on net-zero delta"
    );
}

#[test]
fn recursion_limit_respects_oncommit_cascades_too() {
    let mut s = Session::with_config(EngineConfig {
        max_cascade_depth: 4,
        ..EngineConfig::default()
    });
    // ONCOMMIT statement kicks off an AFTER cascade that overruns the limit
    s.install("CREATE TRIGGER a AFTER CREATE ON 'Spin' FOR EACH NODE BEGIN CREATE (:Spin) END")
        .unwrap();
    s.install("CREATE TRIGGER oc ONCOMMIT CREATE ON 'Seed' FOR EACH NODE BEGIN CREATE (:Spin) END")
        .unwrap();
    let err = s.run("CREATE (:Seed)").unwrap_err();
    assert!(matches!(err, TriggerError::RecursionLimit { .. }), "{err}");
    assert_eq!(count(&mut s, "Seed"), 0);
    assert_eq!(count(&mut s, "Spin"), 0);
}
