//! §6.2.3 relocation at surveillance scale: index-served top-k vs full
//! sort.
//!
//! Builds a ~100k-node CoV2K-style graph whose hospital network is a
//! dense `ConnectedTo {distance}` web, installs a `MoveToNearHospital`-
//! shaped trigger (`MATCH … WITH ct, pn, hc ORDER BY ct.distance LIMIT 1`)
//! and overflows one hospital's ICU — comparing wall-clock time with and
//! without the `ConnectedTo.distance` relationship index that lets the
//! executor serve the `ORDER BY … LIMIT 1` as an O(log n + k) ordered
//! index walk instead of sorting every connection.
//!
//! ```text
//! cargo run --release --example topk_relocation [--quick]
//! ```

use pg_covid::generate;
use pg_covid::GeneratorConfig;
use pg_graph::{GraphView, PropertyMap, Value};
use pg_triggers::Session;
use std::time::Instant;

/// The §6.2.3 `MoveToNearHospital` trigger, anchored on the overflow
/// hospital by name so the demo controls exactly which ICU overflows.
const MOVE_TO_NEAR: &str = "
CREATE TRIGGER MoveToNearDemo
AFTER CREATE
ON 'IcuPatient'
FOR EACH NODE
WHEN
  MATCH (NEW:IcuPatient)-[:TreatedAt]-(h:Hospital {name: 'Sacco'}),
  MATCH (p:IcuPatient)-[:TreatedAt]-(h)
  WITH COUNT(DISTINCT p) AS TotalIcuPat, h
  WHERE TotalIcuPat > h.icuBeds
BEGIN
  MATCH (pn:NEW)-[c:TreatedAt]-(h:Hospital {name: 'Sacco'})-[ct:ConnectedTo]-(hc:Hospital)
  WITH ct, c, hc, pn ORDER BY ct.distance LIMIT 1
  THEN
  BEGIN
    DELETE c
    CREATE (pn)-[:TreatedAt]->(hc)
  END
END";

fn build_session(cfg: &GeneratorConfig, connections: usize, indexed: bool) -> Session {
    let mut session = Session::new();
    generate(session.graph_mut(), cfg);
    {
        // A dense distance web around Sacco: `connections` extra hospitals,
        // each one `ConnectedTo` Sacco — the §6.2.3 ORDER BY input.
        let g = session.graph_mut();
        let sacco = {
            let hit = g
                .nodes_with_label("Hospital")
                .into_iter()
                .find(|id| g.node_prop(*id, "name") == Some(Value::str("Sacco")))
                .expect("generator creates Sacco");
            // keep the demo's overflow threshold small and deterministic
            g.set_node_prop(hit, "icuBeds", Value::Int(4)).unwrap();
            hit
        };
        for i in 0..connections {
            let props: PropertyMap = [
                ("name".to_string(), Value::str(format!("Transfer-{i}"))),
                ("icuBeds".to_string(), Value::Int(50)),
            ]
            .into_iter()
            .collect();
            let h = g.create_node(["Hospital"], props).unwrap();
            let dist: PropertyMap = [(
                "distance".to_string(),
                // pseudo-random distances ≥ 2; exactly one hospital at 1
                Value::Int(if i == connections / 2 {
                    1
                } else {
                    ((i * 7919) % 10_000) as i64 + 2
                }),
            )]
            .into_iter()
            .collect();
            g.create_rel(sacco, h, "ConnectedTo", dist).unwrap();
        }
        // Both twins index Hospital.name — the equality anchor is not what
        // this demo compares; only the rel-property index differs.
        g.create_index("Hospital", "name");
        if indexed {
            g.create_rel_index("ConnectedTo", "distance");
        }
    }
    session.install(MOVE_TO_NEAR).expect("relocation trigger");
    session
}

fn overflow_wave(session: &mut Session, n: usize) -> std::time::Duration {
    session.reset_stats();
    let start = Instant::now();
    for k in 0..n {
        session
            .run(&format!(
                "MATCH (h:Hospital {{name: 'Sacco'}}) \
                 CREATE (:Patient:HospitalizedPatient:IcuPatient {{\
                 ssn: 'TOPK{k:06}', id: {k}, prognosis: 'severe', \
                 admittedToICU: true}})-[:TreatedAt]->(h)"
            ))
            .expect("admission");
    }
    start.elapsed()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cfg, connections, admissions) = if quick {
        (
            GeneratorConfig {
                patients: 2_000,
                sequences: 500,
                ..GeneratorConfig::default()
            },
            2_000,
            10,
        )
    } else {
        (
            GeneratorConfig {
                patients: 80_000,
                sequences: 10_000,
                ..GeneratorConfig::default()
            },
            20_000,
            20,
        )
    };

    println!("building graphs (indexed + full-sort twins)…");
    let mut indexed = build_session(&cfg, connections, true);
    let mut sorted = build_session(&cfg, connections, false);
    println!(
        "  {} nodes, {} ConnectedTo distances around Sacco",
        indexed.graph().node_count(),
        connections
    );

    indexed.graph().reset_index_probes();
    let t_indexed = overflow_wave(&mut indexed, admissions);
    let fired_indexed = indexed.stats().fired;
    let probes = indexed.graph().index_probes();
    let t_sorted = overflow_wave(&mut sorted, admissions);
    let fired_sorted = sorted.stats().fired;

    // Both engines must agree on where everyone ended up.
    let nearest = |s: &mut Session| -> (i64, i64) {
        let at_nearest = s
            .run(
                "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital) \
                 WHERE p.ssn STARTS WITH 'TOPK' AND h.name <> 'Sacco' \
                 RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        let at_sacco = s
            .run(
                "MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Sacco'}) \
                 WHERE p.ssn STARTS WITH 'TOPK' \
                 RETURN count(DISTINCT p) AS n",
            )
            .unwrap()
            .single()
            .and_then(|v| v.as_i64())
            .unwrap_or(0);
        (at_nearest, at_sacco)
    };
    let (moved_i, stayed_i) = nearest(&mut indexed);
    let (moved_s, stayed_s) = nearest(&mut sorted);
    assert_eq!(
        (moved_i, stayed_i),
        (moved_s, stayed_s),
        "index-served top-k must relocate exactly like the sort path"
    );
    assert!(moved_i > 0, "the overflow wave should relocate someone");
    assert_eq!(fired_indexed, fired_sorted, "same trigger activity");

    println!("\n§6.2.3 relocation wave ({admissions} admissions over a 4-bed ICU):");
    println!(
        "  indexed top-k : {t_indexed:?}  ({fired_indexed} firings, {} ordered index walks)",
        probes.ordered
    );
    println!("  full sort     : {t_sorted:?}  ({fired_sorted} firings)");
    let speedup = t_sorted.as_secs_f64() / t_indexed.as_secs_f64().max(1e-9);
    println!("  speedup       : {speedup:.1}x");
    println!("  relocated {moved_i} new arrivals ({stayed_i} stayed at Sacco)");
    assert!(
        probes.ordered >= 1,
        "the relocation body should walk the ordered rel index"
    );
}
