//! Quickstart: install a PG-Trigger, make a change, watch it react.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pg_triggers::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::new();

    // The paper's first trigger (§6.2.1): when a new Mutation linked to a
    // CriticalEffect appears, raise an Alert carrying the mutation's name.
    session.install(
        "CREATE TRIGGER NewCriticalMutation
         AFTER CREATE
         ON 'Mutation'
         FOR EACH NODE
         WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
         BEGIN
           CREATE (:Alert{time: DATETIME(),
                          desc: 'New critical mutation',
                          mutation: NEW.name})
         END",
    )?;
    println!("installed trigger NewCriticalMutation");

    // Base knowledge: one critical effect.
    session.run("CREATE (:CriticalEffect {description: 'Enhanced infectivity'})")?;

    // A benign mutation — the trigger's condition is false, no alert.
    session.run("CREATE (:Mutation {name: 'N:S202N', protein: 'N'})")?;

    // A critical mutation — created together with its Risk edge; the
    // trigger fires.
    session.run(
        "MATCH (e:CriticalEffect)
         CREATE (:Mutation {name: 'Spike:D614G', protein: 'Spike'})-[:Risk]->(e)",
    )?;

    let out = session.run("MATCH (a:Alert) RETURN a.desc AS desc, a.mutation AS mutation")?;
    println!("alerts:");
    for row in &out.rows {
        println!("  {} — {}", row[0], row[1]);
    }
    assert_eq!(out.rows.len(), 1, "exactly one alert expected");

    let stats = session.stats();
    println!(
        "engine stats: fired = {}, suppressed = {}",
        stats.fired, stats.suppressed
    );
    Ok(())
}
