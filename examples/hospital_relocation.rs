//! The §6.2.3 relocation triggers in isolation: overflow a hospital's ICU
//! and watch `IcuPatientMove` / `MoveToNearHospital` redistribute the new
//! admissions, plus the termination analysis the paper discusses for the
//! potentially non-terminating variant.
//!
//! ```text
//! cargo run --example hospital_relocation
//! ```

use pg_triggers::{analyze, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // A tiny Lombardy: Sacco (4 ICU beds) near Niguarda (10 beds), with
    // Meyer in Tuscany as the §6.2.3 fallback — but Meyer has only 2 ICU
    // beds, so the bulk Sacco→Meyer move is blocked and the per-patient
    // nearest-hospital trigger takes over.
    s.run(
        "CREATE (lom:Region {name: 'Lombardy'}), (tus:Region {name: 'Tuscany'})
         CREATE (sacco:Hospital {name: 'Sacco', icuBeds: 4})-[:LocatedIn]->(lom)
         CREATE (nig:Hospital {name: 'Niguarda', icuBeds: 10})-[:LocatedIn]->(lom)
         CREATE (meyer:Hospital {name: 'Meyer', icuBeds: 2})-[:LocatedIn]->(tus)
         CREATE (sacco)-[:ConnectedTo {distance: 7}]->(nig)
         CREATE (sacco)-[:ConnectedTo {distance: 290}]->(meyer)",
    )?;

    // Install both §6.2.3 triggers (they coexist; creation order decides
    // who reacts first, §4.2 "order of execution").
    s.install(pg_covid::triggers::ICU_PATIENT_MOVE)?;
    s.install(pg_covid::triggers::MOVE_TO_NEAR_HOSPITAL)?;

    // Termination analysis (Baralis–Ceri–Widom, §6.2.3 discussion).
    let report = analyze(s.catalog());
    println!("triggering-graph edges: {:?}", report.edges);
    println!(
        "cycles: {:?} (the §6.2.3 relocation triggers monitor IcuPatient creation\n\
         but relocate via TreatedAt edges, so the static graph stays acyclic)",
        report.cyclic_triggers
    );

    // Admit 7 ICU patients to Sacco in one wave — 3 over capacity.
    let patterns: Vec<String> = (0..7)
        .map(|k| {
            format!(
                "(:Patient:HospitalizedPatient:IcuPatient {{ssn: 'P{k}', name: 'p{k}', sex: 'F',
                  id: {k}, prognosis: 'severe', admittedToICU: true}})-[:TreatedAt]->(h)"
            )
        })
        .collect();
    s.run(&format!(
        "MATCH (h:Hospital {{name: 'Sacco'}}) CREATE {}",
        patterns.join(", ")
    ))?;

    let out = s.run(
        "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital)
         RETURN h.name AS hospital, count(DISTINCT p) AS load ORDER BY load DESC",
    )?;
    println!("\nICU load after the wave:");
    for row in &out.rows {
        println!("  {:<10} {}", row[0], row[1]);
    }

    // IcuPatientMove could not use Meyer (7 movers > 2 beds), so
    // MoveToNearHospital relocated each new arrival to Niguarda
    // (distance 7 beats Meyer's 290).
    let at_niguarda = s
        .run("MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Niguarda'}) RETURN count(DISTINCT p) AS n")?
        .single()
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    let at_meyer = s
        .run("MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital {name: 'Meyer'}) RETURN count(DISTINCT p) AS n")?
        .single()
        .and_then(|v| v.as_i64())
        .unwrap_or(0);
    println!("\nrelocated to Niguarda: {at_niguarda} (Meyer: {at_meyer})");
    assert!(at_niguarda > 0, "the relocation triggers moved nobody");
    assert_eq!(
        at_meyer, 0,
        "the bulk move to Meyer should have been blocked"
    );

    println!("stats: {:?}", s.stats());
    Ok(())
}
