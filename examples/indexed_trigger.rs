//! Trigger firing on an indexed predicate over a 100k-node CoV2K graph.
//!
//! Builds the paper's §6 dataset at surveillance scale (~100k nodes),
//! creates the property indexes behind the §6.2 trigger predicates
//! (`CREATE INDEX ON :Hospital(name)` etc.), and then fires an
//! admission-wave trigger whose condition anchors on the indexed
//! `(:Hospital {name: 'Sacco'})` equality — comparing wall-clock time with
//! and without the indexes.
//!
//! ```text
//! cargo run --release --example indexed_trigger [--quick]
//! ```

use pg_covid::{generate, install_paper_triggers, GeneratorConfig};
use pg_triggers::Session;
use std::time::Instant;

/// A positive lab report names a patient by PG-Key; the alert trigger's
/// condition anchors on `(p:Patient {ssn: NEW.ssn})` — an equality
/// predicate over the ~100k-patient extent that the candidate planner
/// serves from the `Patient.ssn` index when one exists.
const POSITIVE_TEST_ALERT: &str = "
CREATE TRIGGER PositiveTestAlert
AFTER CREATE
ON 'LabResult'
FOR EACH NODE
WHEN MATCH (p:Patient {ssn: NEW.ssn}) WHERE NEW.positive = true
BEGIN
  CREATE (:Alert {time: DATETIME(), desc: 'positive test', patient: p.ssn})
END";

fn build_session(cfg: &GeneratorConfig, indexed: bool) -> Session {
    let mut session = Session::new();
    generate(session.graph_mut(), cfg);
    if indexed {
        pg_covid::triggers::install_paper_indexes(&mut session);
    }
    install_paper_triggers(&mut session).expect("paper triggers install");
    session.install(POSITIVE_TEST_ALERT).expect("alert trigger");
    session
}

fn run_wave(session: &mut Session, reports: usize, patients: usize) -> u64 {
    session.reset_stats();
    for i in 0..reports {
        let ssn = format!("SSN{:08}", (i * 37) % patients);
        session
            .run(&format!(
                "CREATE (:LabResult {{ssn: '{ssn}', positive: {}}})",
                i % 2 == 0
            ))
            .expect("lab report");
    }
    session.stats().fired
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = GeneratorConfig {
        // ~100k nodes total: patients dominate, plus sequences/mutations/
        // lineages/hospitals/regions/labs and the Risk/FoundIn fan-out.
        patients: if quick { 5_000 } else { 85_000 },
        sequences: if quick { 1_000 } else { 15_000 },
        mutations: 400,
        effects: 40,
        lineages: 60,
        ..GeneratorConfig::default()
    };
    let reports = if quick { 50 } else { 200 };

    let mut indexed = build_session(&cfg, true);
    println!(
        "graph: {} nodes / {} relationships; indexes: {:?}",
        indexed.graph().node_count(),
        indexed.graph().rel_count(),
        indexed.indexes()
    );

    let t = Instant::now();
    let fired_indexed = run_wave(&mut indexed, reports, cfg.patients);
    let t_indexed = t.elapsed();

    let mut scan = build_session(&cfg, false);
    let t = Instant::now();
    let fired_scan = run_wave(&mut scan, reports, cfg.patients);
    let t_scan = t.elapsed();

    assert_eq!(
        fired_indexed, fired_scan,
        "indexes must not change trigger semantics"
    );
    assert_eq!(
        fired_indexed,
        (reports as u64).div_ceil(2),
        "every positive report must fire exactly once"
    );

    println!("lab-report wave of {reports}, {fired_indexed} trigger firings each:");
    println!("  indexed predicates : {t_indexed:?}");
    println!("  full-scan matching : {t_scan:?}");
    let speedup = t_scan.as_secs_f64() / t_indexed.as_secs_f64().max(1e-9);
    println!("  speedup            : {speedup:.1}x");
}
