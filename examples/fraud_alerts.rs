//! Reactive fraud monitoring on a financial transaction graph — a second
//! domain exercising every action time: BEFORE integrity vetoes, AFTER
//! alert derivation with cascading, ONCOMMIT invariants, and DETACHED
//! audit logging. (The paper's last two authors work on financial
//! knowledge graphs at a central bank; this is the scenario its
//! introduction gestures at.)
//!
//! ```text
//! cargo run --example fraud_alerts
//! ```

use pg_graph::Value;
use pg_triggers::Session;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut s = Session::new();

    // BEFORE: transfers must have a positive amount — otherwise the whole
    // statement is vetoed (§4.2: BEFORE conditions NEW states / aborts).
    s.install(
        "CREATE TRIGGER PositiveAmount
         BEFORE CREATE ON 'Transfer' FOR EACH NODE
         WHEN NEW.amount <= 0
         BEGIN ABORT 'transfer amount must be positive' END",
    )?;

    // AFTER: large transfers raise a Suspicion (item-level).
    s.install(
        "CREATE TRIGGER LargeTransfer
         AFTER CREATE ON 'Transfer' FOR EACH NODE
         WHEN NEW.amount > 10000
         BEGIN CREATE (:Suspicion {time: DATETIME(), amount: NEW.amount,
                                   reason: 'large transfer'}) END",
    )?;

    // AFTER, cascading: three suspicions on the books freeze the account —
    // a trigger fired by a trigger (the SQL3 execution-context stack).
    s.install(
        "CREATE TRIGGER FreezeOnRepeat
         AFTER CREATE ON 'Suspicion' FOR ALL NODES
         WHEN MATCH (x:Suspicion) WITH count(x) AS n WHERE n >= 3
         BEGIN MATCH (a:Account {id: 'acc-1'}) SET a.frozen = true END",
    )?;

    // ONCOMMIT: the account balance may never go negative across a whole
    // transaction; violation rolls the transaction back.
    s.install(
        "CREATE TRIGGER NonNegativeBalance
         ONCOMMIT SET ON 'Account'.'balance' FOR EACH NODE
         WHEN NEW.balance < 0
         BEGIN ABORT 'balance went negative' END",
    )?;

    // DETACHED: audit trail written after the commit, in its own
    // transaction — it survives even if later work fails.
    s.install(
        "CREATE TRIGGER AuditTransfers
         DETACHED CREATE ON 'Transfer' FOR ALL NODES
         BEGIN CREATE (:AuditEntry {time: DATETIME(), transfers: size(NEWNODES)}) END",
    )?;

    s.run("CREATE (:Account {id: 'acc-1', balance: 50000, frozen: false})")?;

    // A rejected transfer: BEFORE veto.
    match s.run("CREATE (:Transfer {amount: -5})") {
        Err(e) => println!("rejected as expected: {e}"),
        Ok(_) => unreachable!("negative transfer must be vetoed"),
    }

    // Three large transfers → three suspicions → account frozen by cascade.
    for amount in [15000, 22000, 18000] {
        s.run(&format!("CREATE (:Transfer {{amount: {amount}}})"))?;
    }
    let frozen = s
        .run("MATCH (a:Account {id: 'acc-1'}) RETURN a.frozen AS f")?
        .single()
        .cloned();
    println!("account frozen after 3 suspicions: {frozen:?}");
    assert_eq!(frozen, Some(Value::Bool(true)));

    // A transaction that would overdraw: ONCOMMIT rolls everything back.
    s.begin()?;
    s.run("MATCH (a:Account {id: 'acc-1'}) SET a.balance = a.balance - 80000")?;
    match s.commit() {
        Err(e) => println!("overdraft transaction rolled back: {e}"),
        Ok(_) => unreachable!("overdraft must fail at commit"),
    }
    let balance = s
        .run("MATCH (a:Account {id: 'acc-1'}) RETURN a.balance AS b")?
        .single()
        .cloned();
    println!("balance preserved: {balance:?}");
    assert_eq!(balance, Some(Value::Int(50000)));

    // The detached audit trail recorded each transfer statement.
    let audits = s
        .run("MATCH (e:AuditEntry) RETURN count(*) AS n")?
        .single()
        .and_then(|v| v.as_i64());
    println!("audit entries: {audits:?}");
    assert_eq!(audits, Some(3));

    println!("stats: {:?}", s.stats());
    Ok(())
}
