//! Native PG-Triggers vs the APOC and Memgraph emulations on the same
//! workload — demonstrating both the syntax-directed translations
//! (Figures 2–3) and the semantic gaps the paper reports in §5
//! (no cascading, afterAsync staleness).
//!
//! ```text
//! cargo run --example apoc_vs_native
//! ```

use pg_apoc::ApocDb;
use pg_memgraph::MemgraphDb;
use pg_triggers::{parse_trigger_ddl, DdlStatement, Session};

const ALERT_TRIGGER: &str = "
CREATE TRIGGER CriticalAlert
AFTER CREATE ON 'Mutation' FOR EACH NODE
WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
BEGIN CREATE (:Alert {mutation: NEW.name}) END";

const ESCALATE_TRIGGER: &str = "
CREATE TRIGGER Escalate
AFTER CREATE ON 'Alert' FOR EACH NODE
BEGIN CREATE (:Escalation) END";

fn spec(ddl: &str) -> pg_triggers::TriggerSpec {
    match parse_trigger_ddl(ddl).unwrap() {
        DdlStatement::CreateTrigger(s) => s,
        _ => unreachable!(),
    }
}

const SETUP: &str = "CREATE (:CriticalEffect {description: 'Immune evasion'})";
const EVENT: &str = "MATCH (e:CriticalEffect) \
     CREATE (:Mutation {name: 'Spike:E484K'})-[:Risk]->(e)";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- native -------------------------------------------------------
    let mut native = Session::new();
    native.install(ALERT_TRIGGER)?;
    native.install(ESCALATE_TRIGGER)?;
    native.run(SETUP)?;
    native.run(EVENT)?;
    let native_alerts = count(&mut native, "Alert");
    let native_escalations = count(&mut native, "Escalation");

    // --- APOC emulation (via the Figure 2 translation) -----------------
    let mut apoc = ApocDb::new();
    for ddl in [ALERT_TRIGGER, ESCALATE_TRIGGER] {
        let install = pg_apoc::translate(&spec(ddl))?;
        println!("APOC install for {}:", install.name);
        println!("  statement: {}", install.statement);
        println!("  phase: {}", install.phase.name());
        for w in &install.warnings {
            println!("  warning: {w}");
        }
        apoc.install(
            "neo4j",
            &install.name,
            &install.statement,
            install.phase.name(),
        )?;
    }
    apoc.run_tx(&[SETUP])?;
    apoc.run_tx(&[EVENT])?;
    let apoc_alerts = count_apoc(&mut apoc, "Alert");
    let apoc_escalations = count_apoc(&mut apoc, "Escalation");

    // --- Memgraph emulation (via the Figure 3 translation) -------------
    let mut mg = MemgraphDb::new();
    for ddl in [ALERT_TRIGGER, ESCALATE_TRIGGER] {
        let install = pg_memgraph::translate(&spec(ddl))?;
        println!("\nMemgraph DDL for {}:\n  {}", install.name, install.ddl);
        mg.create_trigger(&install.ddl)?;
    }
    mg.run_tx(&[SETUP])?;
    mg.run_tx(&[EVENT])?;
    let mg_alerts = count_mg(&mut mg, "Alert");
    let mg_escalations = count_mg(&mut mg, "Escalation");

    println!("\n--- outcome comparison (the §5.1 cascading gap) ---");
    println!("{:<22} {:>7} {:>12}", "engine", "alerts", "escalations");
    println!(
        "{:<22} {:>7} {:>12}",
        "native PG-Triggers", native_alerts, native_escalations
    );
    println!(
        "{:<22} {:>7} {:>12}",
        "APOC emulation", apoc_alerts, apoc_escalations
    );
    println!(
        "{:<22} {:>7} {:>12}",
        "Memgraph emulation", mg_alerts, mg_escalations
    );

    // The first-order behaviour agrees…
    assert_eq!(native_alerts, 1);
    assert_eq!(apoc_alerts, 1);
    assert_eq!(mg_alerts, 1);
    // …but the Alert→Escalation cascade only happens natively: APOC and
    // Memgraph block trigger-generated changes from re-activating triggers.
    assert_eq!(native_escalations, 1);
    assert_eq!(apoc_escalations, 0);
    assert_eq!(mg_escalations, 0);
    println!("\ncascading works natively and is blocked in both emulations — exactly §5.1.");
    Ok(())
}

fn count(s: &mut Session, label: &str) -> i64 {
    s.run(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

fn count_apoc(db: &mut ApocDb, label: &str) -> i64 {
    db.query(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

fn count_mg(db: &mut MemgraphDb, label: &str) -> i64 {
    db.query(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}
