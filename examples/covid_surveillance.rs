//! The paper's §6 running example end-to-end: CoV2K data, the six §6.2
//! triggers, and a pandemic-surveillance scenario with admission waves.
//!
//! ```text
//! cargo run --example covid_surveillance
//! ```

use pg_covid::{GeneratorConfig, Scenario, ScenarioConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ScenarioConfig {
        generator: GeneratorConfig {
            regions: 3,
            hospitals_per_region: 3,
            icu_beds_per_hospital: 12,
            patients: 400,
            sequences: 250,
            mutations: 50,
            ..GeneratorConfig::default()
        },
        waves: 5,
        admissions_per_wave: 9,
        discoveries: 4,
        redesignations: 2,
        indexed: false,
    };

    let mut scenario = Scenario::new(cfg);
    println!(
        "baseline CoV2K graph: {} nodes, {} relationships",
        scenario.session.graph().node_count(),
        scenario.session.graph().rel_count()
    );
    println!(
        "installed triggers: {:?}",
        scenario
            .session
            .catalog()
            .all()
            .map(|t| t.spec.name.clone())
            .collect::<Vec<_>>()
    );

    let report = scenario.run()?;

    println!("\n--- scenario report ---");
    println!("ICU admissions performed : {}", report.admissions);
    println!("trigger statements fired : {}", report.triggers_fired);
    println!("patients relocated       : {}", report.relocated_patients);
    println!("alerts:");
    for (desc, n) in &report.alerts {
        println!("  {n:>4} × {desc}");
    }

    // Where did everyone end up?
    let out = scenario.session.run(
        "MATCH (p:IcuPatient)-[:TreatedAt]-(h:Hospital)
         RETURN h.name AS hospital, count(DISTINCT p) AS patients
         ORDER BY patients DESC",
    )?;
    println!("\nICU load by hospital:");
    for row in &out.rows {
        println!("  {:<16} {}", row[0], row[1]);
    }
    Ok(())
}
