//! Offline shim for the `criterion` API subset this workspace's benches
//! use. Benchmarks run and report mean wall-clock time per iteration as
//! plain text; there is no statistical analysis, HTML report, or baseline
//! comparison (see `vendor/README.md`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Accepted for API compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepted for API compatibility; measurement time is derived from
    /// the sample size in this shim.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id.into()),
            self.effective_samples(),
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.label),
            self.effective_samples(),
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self._criterion.sample_size)
    }
}

/// Identifies one benchmark within a group (`function_name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Batch-size hint for [`Bencher::iter_batched`]; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs the measured routine and accumulates elapsed time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iterations {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // one warmup pass, then the measured pass
    for (iters, measured) in [(1u64, false), (samples as u64, true)] {
        let mut b = Bencher {
            iterations: iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if measured {
            let per_iter = if b.iterations > 0 {
                b.elapsed / b.iterations as u32
            } else {
                Duration::ZERO
            };
            println!("bench: {label:<60} {per_iter:>12?}/iter ({iters} iters)");
        }
    }
}

/// Declares a function that runs the given benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
