//! Offline shim for the `serde` facade: marker traits only.
//!
//! [`Serialize`] and [`Deserialize`] are blanket-implemented for every
//! type, and the re-exported derives expand to nothing, so annotating a
//! type with `#[derive(Serialize, Deserialize)]` (and bounding generics on
//! the traits) compiles — but no actual serialization machinery exists.
//! In-tree JSON output goes through the `serde_json` shim's [`Value`]
//! type directly. See `vendor/README.md`.
//!
//! [`Value`]: ../serde_json/enum.Value.html

/// Marker stand-in for `serde::Serialize`; holds for every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; holds for every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: ?Sized + for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
