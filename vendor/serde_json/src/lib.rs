//! Offline shim for the `serde_json` API subset this workspace uses:
//! [`Value`], an insertion-ordered [`Map`], the [`json!`] macro (scalars,
//! arrays, and flat objects whose values are arbitrary expressions),
//! [`to_string`] / [`to_string_pretty`], and indexing.
//!
//! Unlike the real crate there is no serde integration: values are built
//! explicitly via [`json!`] / [`Value::from`], never derived.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Int(v as i64) }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::Int(*v as i64) }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Float(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

/// Insertion-ordered string-keyed map (mirrors `serde_json::Map` with its
/// default `preserve_order`-like behavior; `insert` on an existing key
/// replaces in place).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map<String, Value> {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

/// Stand-in for `serde::Serialize` as serde_json's entry points use it:
/// anything that can render itself as a [`Value`].
pub trait Serialize {
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

/// Error type for the (infallible here) serialization entry points.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // mirror serde_json: emit a decimal point for whole floats
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            level,
            ('[', ']'),
            |out, item, lvl| write_value(out, item, indent, lvl),
        ),
        Value::Object(map) => write_seq(
            out,
            map.entries.iter().map(|(k, v)| (k, v)),
            indent,
            level,
            ('{', '}'),
            |out, (k, val), lvl| {
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, lvl);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        f.write_str(&out)
    }
}

/// Compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None, 0);
    Ok(out)
}

/// Two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(2), 0);
    Ok(out)
}

/// Build a [`Value`] from a scalar expression, a `[...]` array, or a flat
/// `{"key": expr, ...}` object (keys must be literals; values are arbitrary
/// expressions convertible via [`Value::from`], including nested `json!`
/// results bound to locals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!({"a": 1, "b": "x"}), json!({"a": 2, "b": "y"})];
        let (ok, strict) = (true, false);
        // `ok || strict` exercises a multi-token expression as an object value
        let doc = json!({"rows": rows, "ok": ok || strict, "n": 2usize});
        assert_eq!(doc["n"], json!(2));
        assert_eq!(doc["ok"], json!(true));
        assert_eq!(doc["rows"][0]["b"], json!("x"));
        assert_eq!(doc["missing"], Value::Null);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("z".into(), json!(1));
        m.insert("a".into(), json!(2));
        m.insert("z".into(), json!(3));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z"), Some(&json!(3)));
    }

    #[test]
    fn pretty_printing_round_shape() {
        let list = json!([1, 2]);
        let doc = json!({"s": "he\"llo", "list": list, "empty": Vec::<i64>::new()});
        let pretty = to_string_pretty(&doc).unwrap();
        assert!(pretty.contains("\"he\\\"llo\""));
        assert!(pretty.contains("\"empty\": []"));
        assert_eq!(to_string(&json!([])).unwrap(), "[]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(1.5)).unwrap(), "1.5");
        assert_eq!(to_string(&json!(2.0)).unwrap(), "2.0");
    }

    #[test]
    fn collect_map_from_iter() {
        let m: Map<String, Value> = [("k".to_string(), json!(1))].into_iter().collect();
        let v: Value = m.into();
        assert_eq!(v["k"], json!(1));
    }
}
