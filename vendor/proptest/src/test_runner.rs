//! Config, error type, and the deterministic RNG behind [`proptest!`].
//!
//! [`proptest!`]: crate::proptest

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The input was rejected as out of the property's domain.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    pub fn reject(reason: impl fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies. Seeded from the test name (FNV-1a), so
/// every `cargo test` run explores the same sequence — failures are
/// reproducible without persisted seed files.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
