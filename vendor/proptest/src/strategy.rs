//! The [`Strategy`] trait and the combinators the workspace's property
//! tests use: ranges, regex-subset strings, [`Just`], tuples, `prop_map`,
//! `prop_recursive`, [`Union`] (behind `prop_oneof!`), and boxing.

use crate::test_runner::TestRng;
use rand::{Rng, SampleUniform};
use std::sync::Arc;

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive values: `recurse` receives a strategy for the
    /// current depth and returns one for the next level up. `levels`
    /// bounds the structural depth; `_size` / `_branch` are accepted for
    /// API compatibility and unused (no size-driven shrinking here).
    fn prop_recursive<R, F>(
        self,
        levels: u32,
        _size: u32,
        _branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..levels {
            let branch = recurse(strat).boxed();
            // leaves weighted 2:1 over branches so generated structures
            // stay small even at the outermost level
            strat = Union::new(vec![leaf.clone(), leaf.clone(), branch]).boxed();
        }
        strat
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy (shared, not deep-copied).
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + rand::One + std::ops::Sub<Output = T> + 'static> Strategy
    for std::ops::Range<T>
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// `&str` as a strategy: a small regex subset — literal characters,
/// `[a-z0-9_]`-style classes (ranges and singletons), and `{m}` / `{m,n}`
/// quantifiers after a class or literal.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern `{pattern}`"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in `{pattern}`");
                    set.extend((lo..=hi).collect::<Vec<char>>());
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern `{pattern}`");
        // optional {m} / {m,n} quantifier
        let mut reps = 1;
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern `{pattern}`"));
            let spec: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match spec.split_once(',') {
                Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
                None => {
                    let n: usize = spec.trim().parse().unwrap();
                    (n, n)
                }
            };
            reps = rng.gen_range(lo..=hi);
            i = close + 1;
        }
        for _ in 0..reps {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F2.5);

/// Uniform choice among boxed strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "Union of zero strategies");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].generate(rng)
    }
}

/// Canonical strategy per type, for [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<i64>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform `bool`.
#[derive(Debug, Clone, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_range(0u8..2) == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )+};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
