//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A `Vec` whose length is drawn from `len` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.len.is_empty() {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
