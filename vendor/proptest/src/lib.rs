//! Offline shim for the `proptest` API subset this workspace uses.
//!
//! Random-input property testing with deterministic per-test seeds.
//! Differences from real proptest, by design (see `vendor/README.md`):
//! no shrinking of failing cases, no persisted failure seeds, and string
//! strategies accept only a small regex subset (character classes,
//! literals, and `{m}` / `{m,n}` quantifiers).

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// `use proptest::prelude::*;` — everything the test files refer to.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}

/// Property assertion: on failure the test case returns
/// [`TestCaseError`](crate::TestCaseError) (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality property assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right,
            )));
        }
    }};
}

/// Inequality property assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// The test-harness macro: each enclosed `#[test] fn name(pat in strategy,
/// ...) { body }` runs `ProptestConfig::cases` times over fresh random
/// inputs, with a seed derived deterministically from the test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {}/{} of `{}` failed: {}",
                               case + 1, config.cases, stringify!($name), e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}
