//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! The companion `serde` shim blanket-implements its marker traits for all
//! types, so `#[derive(Serialize, Deserialize)]` stays a valid annotation
//! without generating code. See `vendor/README.md` for the rationale.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
