//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! Implements [`Rng::gen_range`] / [`Rng::gen_bool`] over half-open and
//! inclusive integer ranges, and [`rngs::StdRng`] as a splitmix64-seeded
//! xoshiro256++ generator. Statistical quality is ample for synthetic
//! data generation and property tests; this is not a cryptographic RNG.

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `gen_range` can produce uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[low, high]` (inclusive on both ends).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as i128) - (low as i128) + 1;
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (low as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One + core::ops::Sub<Output = T>> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_inclusive(rng, self.start, self.end - T::one())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range called with empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Internal helper so the half-open range impl can shrink its upper bound.
pub trait One {
    fn one() -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$( impl One for $t { fn one() -> Self { 1 as $t } } )*};
}

impl_one!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing random-value methods (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 high bits -> uniform f64 in [0, 1)
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded through splitmix64 — the standard small-state
    /// PRNG construction; deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            let w = rng.gen_range(5..120);
            assert!((5..120).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
