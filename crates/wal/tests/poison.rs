//! Poisoned-WAL-lock behaviour: a worker that panics while holding the
//! WAL mutex must degrade every later durability operation into a *typed
//! refusal* — a commit veto surfacing as `GraphError::Durability`, a
//! `WalError::Poisoned` from flush/checkpoint — never a second panic.
//! (The old code `.expect("WAL lock")`-ed its way into panicking every
//! subsequent commit.)

mod common;

use common::{canned_commit, dump, TempDir};
use pg_graph::{GraphError, PropertyMap};
use pg_wal::{Durable, RecoveryOptions, WalError, WalOptions};

fn open(dir: &std::path::Path) -> (Durable, pg_graph::Graph, pg_wal::RecoveryReport) {
    Durable::open(dir, WalOptions::default(), RecoveryOptions::default()).unwrap()
}

#[test]
fn poisoned_lock_vetoes_commits_instead_of_panicking() {
    let tmp = TempDir::new("poison_commit");
    let (durable, mut graph, _) = open(tmp.path());
    canned_commit(&mut graph, 0);
    let before = dump(&graph);

    durable.poison_lock_for_test();

    // The next commit is VETOED — rolled back with a typed error, and the
    // records are exactly the pre-transaction state.
    graph.begin().unwrap();
    graph.create_node(["Lost"], PropertyMap::new()).unwrap();
    match graph.commit() {
        Err(GraphError::Durability(reason)) => {
            assert!(
                reason.contains("poisoned"),
                "veto reason should name the poisoning: {reason}"
            );
        }
        other => panic!("expected a Durability veto, got {other:?}"),
    }
    let mut after = dump(&graph);
    after[0] = before[0].clone(); // the id allocator may advance on rollback
    assert_eq!(after, before, "vetoed commit must leave no records behind");
    assert!(!graph.in_tx(), "the vetoed transaction has ended");
}

#[test]
fn poisoned_lock_maps_maintenance_ops_to_typed_errors() {
    let tmp = TempDir::new("poison_ops");
    let (durable, mut graph, _) = open(tmp.path());
    canned_commit(&mut graph, 0);

    durable.poison_lock_for_test();

    assert!(matches!(durable.flush(), Err(WalError::Poisoned)));
    assert!(matches!(
        durable.checkpoint(&graph),
        Err(WalError::Poisoned)
    ));
    assert!(matches!(durable.wal_len(), Err(WalError::Poisoned)));
    // Observability survives: the last consistent sequence is readable.
    assert_eq!(durable.seq(), 1);
}

#[test]
fn reopen_after_poisoning_recovers_the_committed_prefix() {
    let tmp = TempDir::new("poison_reopen");
    let want = {
        let (durable, mut graph, _) = open(tmp.path());
        canned_commit(&mut graph, 0);
        canned_commit(&mut graph, 1);
        durable.flush().unwrap();
        let want = dump(&graph);
        durable.poison_lock_for_test();
        // Post-poison work is vetoed and therefore not part of `want`.
        graph.begin().unwrap();
        graph.create_node(["Lost"], PropertyMap::new()).unwrap();
        assert!(graph.commit().is_err());
        want
    };
    // The poisoned handle is gone; the file holds exactly the committed
    // prefix, and a fresh open recovers it.
    let (_durable, graph, report) = open(tmp.path());
    assert_eq!(report.commits_replayed, 2);
    assert_eq!(dump(&graph), want);
}
