//! Exhaustive torn-tail coverage: truncate the WAL at **every** byte
//! offset and assert recovery lands exactly on the last fully-committed
//! epoch — never one more, never one fewer, never an error in default
//! (lenient) mode.

mod common;

use common::{canned_commit, dump, TempDir};
use pg_wal::{
    recover, Durable, RecoveryOptions, SyncPolicy, TailState, WalOptions, WAL_FILE, WAL_MAGIC,
};

const COMMITS: u64 = 5;

/// Byte offsets (from file start) at which each frame ends, in order.
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut pos = WAL_MAGIC.len();
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        ends.push(pos);
    }
    ends
}

#[test]
fn every_truncation_offset_recovers_the_committed_prefix() {
    // Build a reference log and record the expected state after each
    // commit (dump k = state once commits 1..=k applied).
    let tmp = TempDir::new("torn_src");
    let mut dumps = Vec::new();
    {
        let (durable, mut graph, _) = Durable::open(
            tmp.path(),
            WalOptions {
                sync: SyncPolicy::Always,
                group_bytes: 32 * 1024,
            },
            RecoveryOptions::default(),
        )
        .unwrap();
        dumps.push(dump(&graph));
        for i in 0..COMMITS {
            canned_commit(&mut graph, i);
            dumps.push(dump(&graph));
        }
        durable.flush().unwrap();
    }
    let bytes = std::fs::read(tmp.path().join(WAL_FILE)).unwrap();
    let ends = frame_ends(&bytes);
    assert_eq!(ends.len() as u64, COMMITS, "one frame per commit");

    for cut in 0..=bytes.len() {
        let scratch = TempDir::new("torn_cut");
        std::fs::write(scratch.path().join(WAL_FILE), &bytes[..cut]).unwrap();

        // How many frames fit entirely inside the cut?
        let expect_commits = ends.iter().filter(|&&e| e <= cut).count();

        let (graph, report) = recover(scratch.path(), &RecoveryOptions::default())
            .unwrap_or_else(|e| panic!("lenient recovery failed at cut {cut}: {e}"));
        assert_eq!(
            report.commits_replayed, expect_commits,
            "cut at byte {cut}: wrong surviving-commit count"
        );
        assert_eq!(report.last_seq, expect_commits as u64, "cut at byte {cut}");
        assert_eq!(
            dump(&graph),
            dumps[expect_commits],
            "cut at byte {cut}: recovered state must equal the state after \
             commit {expect_commits}"
        );

        // Tail classification: clean exactly on frame boundaries (or the
        // bare magic), torn everywhere else.
        let on_boundary = cut == WAL_MAGIC.len() || ends.contains(&cut);
        if on_boundary {
            assert_eq!(report.tail, TailState::Clean, "cut at byte {cut}");
        } else {
            assert_ne!(report.tail, TailState::Clean, "cut at byte {cut}");
        }

        // Reopening for appends after the torn recovery must work and
        // continue the dense sequence.
        let (durable, mut graph2, _) = Durable::open(
            scratch.path(),
            WalOptions {
                sync: SyncPolicy::Always,
                group_bytes: 32 * 1024,
            },
            RecoveryOptions::default(),
        )
        .unwrap();
        canned_commit(&mut graph2, 99);
        assert_eq!(
            durable.seq(),
            expect_commits as u64 + 1,
            "cut at byte {cut}"
        );
    }
}
