//! End-to-end WAL lifecycle: open → commit → crash (drop) → recover,
//! checkpoint compaction, superseded-frame skipping, and the commit-veto
//! contract when the sink fails.

mod common;

use common::{canned_commit, dump, TempDir};
use pg_graph::{Graph, GraphView, PropertyMap, Value};
use pg_wal::{Durable, RecoveryOptions, SyncPolicy, TailState, WalOptions, SNAPSHOT_TMP};

fn opts(sync: SyncPolicy) -> WalOptions {
    WalOptions {
        sync,
        group_bytes: 32 * 1024,
    }
}

fn open(dir: &std::path::Path, sync: SyncPolicy) -> (Durable, Graph, pg_wal::RecoveryReport) {
    Durable::open(dir, opts(sync), RecoveryOptions::default()).unwrap()
}

#[test]
fn empty_directory_recovers_to_empty_graph() {
    let tmp = TempDir::new("empty");
    let (durable, graph, report) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(report.last_seq, 0);
    assert_eq!(report.commits_replayed, 0);
    assert_eq!(report.tail, TailState::Clean);
    assert_eq!(graph.node_count(), 0);
    assert_eq!(durable.seq(), 0);
}

#[test]
fn commits_survive_reopen() {
    let tmp = TempDir::new("reopen");
    let want = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        for i in 0..6 {
            canned_commit(&mut graph, i);
        }
        assert_eq!(durable.seq(), 6);
        dump(&graph)
        // Simulated crash: no checkpoint, no clean shutdown.
    };
    let (durable, graph, report) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(report.commits_replayed, 6);
    assert_eq!(report.last_seq, 6);
    assert_eq!(durable.seq(), 6);
    assert_eq!(dump(&graph), want);
}

#[test]
fn group_policy_survives_after_flush() {
    let tmp = TempDir::new("group");
    let want = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Group);
        for i in 0..4 {
            canned_commit(&mut graph, i);
        }
        durable.flush().unwrap();
        dump(&graph)
    };
    let (_, graph, report) = open(tmp.path(), SyncPolicy::Group);
    assert_eq!(report.commits_replayed, 4);
    assert_eq!(dump(&graph), want);
}

#[test]
fn checkpoint_compacts_and_recovers() {
    let tmp = TempDir::new("ckpt");
    let (want, wal_before, wal_after) = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        for i in 0..5 {
            canned_commit(&mut graph, i);
        }
        let before = durable.wal_len().unwrap();
        let seq = durable.checkpoint(&graph).unwrap();
        assert_eq!(seq, 5);
        let after = durable.wal_len().unwrap();
        // Two more commits on top of the snapshot.
        for i in 5..7 {
            canned_commit(&mut graph, i);
        }
        (dump(&graph), before, after)
    };
    assert!(
        wal_after < wal_before,
        "checkpoint must shrink the log ({wal_before} -> {wal_after})"
    );
    let (_, graph, report) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(report.snapshot_seq, 5);
    assert_eq!(report.commits_replayed, 2);
    assert_eq!(report.last_seq, 7);
    assert_eq!(dump(&graph), want);
}

#[test]
fn snapshot_preserves_index_definitions_and_answers() {
    let tmp = TempDir::new("ixdefs");
    let want_dump;
    {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        graph.create_index("All", "w");
        graph.create_rel_index("T0", "w");
        graph.create_composite_index("All", &["tag".to_string(), "w".to_string()]);
        for i in 0..4 {
            canned_commit(&mut graph, i);
        }
        durable.checkpoint(&graph).unwrap();
        want_dump = dump(&graph);
    }
    let (_, graph, _) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(dump(&graph), want_dump);
    assert!(graph.has_index("All", "w"));
    assert!(graph.has_rel_index("T0", "w"));
    assert!(graph.has_composite_index("All", &["tag".to_string(), "w".to_string()]));
    // The rebuilt index serves the same rows as a scan.
    let via_index: Vec<_> = graph
        .nodes_with_prop("All", "w", &Value::Int(7))
        .expect("recovered index must serve equality probes");
    let via_scan: Vec<_> = graph
        .all_node_ids()
        .into_iter()
        .filter(|&id| {
            graph.node_has_label(id, "All") && graph.node_prop(id, "w") == Some(Value::Int(7))
        })
        .collect();
    assert_eq!(via_index, via_scan);
    assert!(!via_index.is_empty(), "probe rows exist");
}

#[test]
fn superseded_frames_are_skipped_when_truncation_never_ran() {
    // Simulate a crash *between* snapshot rename and log truncation: take
    // a snapshot but keep the full log. Recovery must use the snapshot
    // and skip the superseded frames by sequence number.
    let tmp = TempDir::new("supersede");
    let want = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        for i in 0..3 {
            canned_commit(&mut graph, i);
        }
        durable.flush().unwrap();
        // Write the snapshot directly, bypassing Durable::checkpoint so
        // the log keeps every frame.
        pg_wal::write_snapshot(tmp.path(), &graph, durable.seq()).unwrap();
        dump(&graph)
    };
    let (_, graph, report) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(report.snapshot_seq, 3);
    assert_eq!(report.commits_replayed, 0, "all frames superseded");
    assert_eq!(report.last_seq, 3);
    assert_eq!(dump(&graph), want);
}

#[test]
fn stale_snapshot_tmp_is_ignored_and_removed() {
    let tmp = TempDir::new("staletmp");
    let want = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        for i in 0..3 {
            canned_commit(&mut graph, i);
        }
        durable.checkpoint(&graph).unwrap();
        dump(&graph)
    };
    // A crash mid-snapshot leaves a half-written tmp file.
    std::fs::write(tmp.path().join(SNAPSHOT_TMP), b"half-written garbage").unwrap();
    let (_, graph, _) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(dump(&graph), want);
    assert!(
        !tmp.path().join(SNAPSHOT_TMP).exists(),
        "crash debris must be cleaned up"
    );
}

#[test]
fn unlogged_bulk_load_becomes_durable_via_checkpoint() {
    let tmp = TempDir::new("bulk");
    let want = {
        let (durable, mut graph, _) = open(tmp.path(), SyncPolicy::Always);
        // Outside any transaction: bypasses the op log and the WAL.
        for i in 0..10 {
            let props: PropertyMap = [("i".to_string(), Value::Int(i))].into_iter().collect();
            graph.create_node(["Bulk"], props).unwrap();
        }
        assert_eq!(durable.seq(), 0, "bulk load writes no frames");
        durable.checkpoint(&graph).unwrap();
        canned_commit(&mut graph, 0);
        dump(&graph)
    };
    let (_, graph, report) = open(tmp.path(), SyncPolicy::Always);
    assert_eq!(report.snapshot_nodes, 10);
    assert_eq!(report.commits_replayed, 1);
    assert_eq!(dump(&graph), want);
}

/// A sink failure must veto the commit and leave the graph on its
/// pre-transaction state.
#[test]
fn failed_append_vetoes_the_commit() {
    #[derive(Debug)]
    struct FailingSink;
    impl pg_graph::CommitSink for FailingSink {
        fn on_commit(&mut self, _ops: &[pg_graph::Op], _nn: u64, _nr: u64) -> Result<(), String> {
            Err("disk full".to_string())
        }
    }

    let mut graph = Graph::new();
    graph.begin().unwrap();
    graph.create_node(["Keep"], PropertyMap::new()).unwrap();
    graph.commit().unwrap();
    let before = dump(&graph);

    graph.set_commit_sink(Some(Box::new(FailingSink)));
    graph.begin().unwrap();
    graph.create_node(["Lost"], PropertyMap::new()).unwrap();
    let err = graph.commit().unwrap_err();
    assert_eq!(
        err,
        pg_graph::GraphError::Durability("disk full".to_string())
    );
    let mut after = dump(&graph);
    // The id allocator may have advanced (rolled-back work does); records
    // must be untouched.
    after[0] = before[0].clone();
    assert_eq!(after, before);
    assert!(!graph.in_tx(), "failed commit still ends the transaction");
}
