//! `PG_WAL_SYNC` parsing. Isolated in its own test binary because it
//! mutates process-global environment variables.
//!
//! The contract under test is the hardened one: exactly `always`,
//! `group`, and `never` are accepted; any other set value — including the
//! typo `alway` that used to *silently weaken* the policy to `Group` — is
//! a hard [`RecoveryError::Config`], raised both by [`SyncPolicy::from_env`]
//! and at [`Durable::open`] time even when explicit options are passed.

use pg_wal::{Durable, RecoveryError, RecoveryOptions, SyncPolicy, WalOptions};

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pg_wal_sync_env_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn pg_wal_sync_accepts_exact_spellings_and_rejects_the_rest() {
    // Accepted spellings, one assertion each.
    std::env::remove_var("PG_WAL_SYNC");
    assert_eq!(
        SyncPolicy::from_env().unwrap(),
        SyncPolicy::Group,
        "unset defaults to group"
    );
    std::env::set_var("PG_WAL_SYNC", "always");
    assert_eq!(SyncPolicy::from_env().unwrap(), SyncPolicy::Always);
    std::env::set_var("PG_WAL_SYNC", "group");
    assert_eq!(SyncPolicy::from_env().unwrap(), SyncPolicy::Group);
    std::env::set_var("PG_WAL_SYNC", "never");
    assert_eq!(SyncPolicy::from_env().unwrap(), SyncPolicy::Never);

    // Rejected spellings: the old behaviour mapped all of these to the
    // weaker Group policy; every one must now be a typed Config error.
    for bad in ["alway", "Always", "ALWAYS", "fsync", "grouped", "nevr", ""] {
        std::env::set_var("PG_WAL_SYNC", bad);
        match SyncPolicy::from_env() {
            Err(RecoveryError::Config(reason)) => {
                assert!(
                    reason.contains("PG_WAL_SYNC"),
                    "error should name the variable: {reason}"
                );
            }
            other => panic!("PG_WAL_SYNC={bad:?} must be Config error, got {other:?}"),
        }

        // And the same typo is refused at the durable front door, even
        // with explicit (valid) options — before any file is created.
        let dir = tmp_dir("reject");
        match Durable::open(&dir, WalOptions::default(), RecoveryOptions::default()) {
            Err(RecoveryError::Config(_)) => {}
            other => panic!(
                "Durable::open under PG_WAL_SYNC={bad:?} must refuse, got {:?}",
                other.map(|_| "opened")
            ),
        }
        assert!(
            !dir.exists(),
            "a refused open must not create the directory"
        );
    }
    std::env::remove_var("PG_WAL_SYNC");

    // WalOptions::from_env mirrors the policy resolution.
    std::env::set_var("PG_WAL_SYNC", "always");
    assert_eq!(
        WalOptions::from_env().unwrap().sync,
        SyncPolicy::Always,
        "WalOptions::from_env applies the parsed policy"
    );
    std::env::set_var("PG_WAL_SYNC", "alway");
    assert!(WalOptions::from_env().is_err());
    std::env::remove_var("PG_WAL_SYNC");

    // With a clean environment the open path works and the parse API
    // accepts the same three spellings directly.
    assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
    assert_eq!(SyncPolicy::parse("group").unwrap(), SyncPolicy::Group);
    assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
    assert!(SyncPolicy::parse("alway").is_err());

    let dir = tmp_dir("accept");
    let (durable, graph, _) =
        Durable::open(&dir, WalOptions::default(), RecoveryOptions::default()).unwrap();
    durable.checkpoint(&graph).unwrap();
    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
}
