//! `PG_WAL_SYNC` parsing. Isolated in its own test binary because it
//! mutates process-global environment variables.

use pg_wal::SyncPolicy;

#[test]
fn pg_wal_sync_parses_and_defaults() {
    std::env::remove_var("PG_WAL_SYNC");
    assert_eq!(
        SyncPolicy::from_env(),
        SyncPolicy::Group,
        "default is group"
    );
    std::env::set_var("PG_WAL_SYNC", "always");
    assert_eq!(SyncPolicy::from_env(), SyncPolicy::Always);
    std::env::set_var("PG_WAL_SYNC", "never");
    assert_eq!(SyncPolicy::from_env(), SyncPolicy::Never);
    std::env::set_var("PG_WAL_SYNC", "group");
    assert_eq!(SyncPolicy::from_env(), SyncPolicy::Group);
    std::env::set_var("PG_WAL_SYNC", "unrecognized");
    assert_eq!(
        SyncPolicy::from_env(),
        SyncPolicy::Group,
        "unknown values fall back to group"
    );
    std::env::remove_var("PG_WAL_SYNC");
}
