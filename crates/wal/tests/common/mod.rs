//! Shared helpers for the WAL integration tests.
//!
//! Each test binary compiles its own copy; not every binary uses every
//! helper, so dead-code lints are off.
#![allow(dead_code)]

use pg_graph::{Graph, PropertyMap, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A self-deleting scratch directory under the system temp dir.
pub struct TempDir(PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "pg_wal_{tag}_{}_{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A comparable dump of full graph state: records + id watermarks.
pub fn dump(g: &Graph) -> Vec<String> {
    let mut out = vec![format!("watermarks {:?}", g.id_watermarks())];
    out.extend(g.nodes().map(|n| format!("{n:?}")));
    out.extend(g.rels().map(|r| format!("{r:?}")));
    out
}

/// Run the `i`-th canned transaction against `g` (inside its own
/// begin/commit). Mixes creates, property churn, label churn, rels, and
/// deletes so WAL frames exercise every op variant.
pub fn canned_commit(g: &mut Graph, i: u64) {
    g.begin().unwrap();
    let props: PropertyMap = [
        (format!("n{i}"), Value::Int(i as i64)),
        ("tag".to_string(), Value::str(format!("commit-{i}"))),
    ]
    .into_iter()
    .collect();
    let a = g
        .create_node([format!("L{}", i % 3), "All".to_string()], props)
        .unwrap();
    let b = g.create_node(["All"], PropertyMap::new()).unwrap();
    g.create_rel(a, b, format!("T{}", i % 2), PropertyMap::new())
        .unwrap();
    g.set_node_prop(b, "w", Value::Int((i * 7) as i64)).unwrap();
    g.set_label(b, "Extra").unwrap();
    if i.is_multiple_of(2) {
        g.remove_label(b, "Extra").unwrap();
        g.set_node_prop(b, "w", Value::Null).unwrap();
    }
    if i % 3 == 2 {
        // Delete the previous commit's spare node if it survived.
        let ids = pg_graph::GraphView::all_node_ids(g);
        if let Some(&victim) = ids.first() {
            let _ = g.detach_delete_node(victim);
        }
    }
    g.commit().unwrap();
}
