//! Multi-process (and multi-handle) protection on the durable directory.
//!
//! Two writers appending to one `wal.log` interleave frames and corrupt
//! the log; the lock file turns that latent corruption into a typed
//! refusal at open time. "One process per directory" used to be a
//! convention — these tests pin it as a contract.

mod common;

use common::{canned_commit, dump, TempDir};
use pg_wal::{Durable, RecoveryError, RecoveryOptions, WalOptions, LOCK_FILE};

fn open(
    dir: &std::path::Path,
) -> Result<(Durable, pg_graph::Graph, pg_wal::RecoveryReport), RecoveryError> {
    Durable::open(dir, WalOptions::default(), RecoveryOptions::default())
}

#[test]
fn second_open_on_a_live_directory_is_refused() {
    let tmp = TempDir::new("locked");
    let (first, mut graph, _) = open(tmp.path()).unwrap();
    canned_commit(&mut graph, 0);

    // A second handle — same process, same liveness — must be refused
    // with the holder's PID, not silently given the same file.
    match open(tmp.path()) {
        Err(RecoveryError::Locked { holder_pid }) => {
            assert_eq!(holder_pid, std::process::id());
        }
        other => panic!(
            "second open must be Locked, got {:?}",
            other.map(|_| "opened")
        ),
    }

    // The refused open must not have damaged the live handle's lock.
    assert!(tmp.path().join(LOCK_FILE).exists());
    canned_commit(&mut graph, 1);
    assert_eq!(first.seq(), 2);
}

#[test]
fn lock_is_released_on_drop_and_the_directory_reopens() {
    let tmp = TempDir::new("release");
    let want = {
        let (durable, mut graph, _) = open(tmp.path()).unwrap();
        canned_commit(&mut graph, 0);
        durable.flush().unwrap();
        dump(&graph)
        // durable drops here → lock released
    };
    assert!(
        !tmp.path().join(LOCK_FILE).exists(),
        "drop must release the lock file"
    );
    let (_durable, graph, report) = open(tmp.path()).unwrap();
    assert_eq!(report.commits_replayed, 1);
    assert_eq!(dump(&graph), want);
}

#[test]
fn stale_lock_from_a_dead_pid_is_reclaimed() {
    let tmp = TempDir::new("stale");
    // Seed the directory with one real commit, then fake a crash that
    // left the lock file behind: plant a PID that cannot be alive.
    {
        let (durable, mut graph, _) = open(tmp.path()).unwrap();
        canned_commit(&mut graph, 0);
        durable.flush().unwrap();
    }
    // PIDs are bounded well under 2^22 by default on Linux.
    std::fs::write(tmp.path().join(LOCK_FILE), b"4194000").unwrap();
    let (_durable, _graph, report) =
        open(tmp.path()).expect("a dead holder's lock must be reclaimed");
    assert_eq!(report.commits_replayed, 1);
    // And the reclaimed lock now names us.
    let holder = std::fs::read_to_string(tmp.path().join(LOCK_FILE)).unwrap();
    assert_eq!(holder.trim(), std::process::id().to_string());
}

#[test]
fn garbage_lock_content_is_treated_as_stale() {
    let tmp = TempDir::new("garbage");
    std::fs::create_dir_all(tmp.path()).unwrap();
    std::fs::write(tmp.path().join(LOCK_FILE), b"not-a-pid\n").unwrap();
    let (_durable, _graph, _) =
        open(tmp.path()).expect("unreadable lock content is crash debris, not a holder");
}

#[test]
fn failed_open_does_not_wedge_the_directory() {
    let tmp = TempDir::new("unwedge");
    // Corrupt WAL header → open fails *after* the lock was taken...
    std::fs::create_dir_all(tmp.path()).unwrap();
    std::fs::write(tmp.path().join(pg_wal::WAL_FILE), b"NOTAWAL!").unwrap();
    match open(tmp.path()) {
        Err(RecoveryError::BadWalHeader) => {}
        other => panic!("expected BadWalHeader, got {:?}", other.map(|_| "opened")),
    }
    // ...so the error path must have released it for the next attempt.
    assert!(
        !tmp.path().join(LOCK_FILE).exists(),
        "failed open must release the lock"
    );
}
