//! One asserting test per [`RecoveryError`] variant: recovery surfaces
//! typed errors, never panics, for every way a durable directory can be
//! damaged.

mod common;

use common::{canned_commit, TempDir};
use pg_graph::codec;
use pg_wal::{
    recover, scan_wal, Durable, RecoveryError, RecoveryOptions, SyncPolicy, WalOptions,
    SNAPSHOT_FILE, WAL_FILE, WAL_MAGIC,
};

fn build(tag: &str, commits: u64, checkpoint_at: Option<u64>) -> TempDir {
    let tmp = TempDir::new(tag);
    let (durable, mut graph, _) = Durable::open(
        tmp.path(),
        WalOptions {
            sync: SyncPolicy::Always,
            group_bytes: 32 * 1024,
        },
        RecoveryOptions::default(),
    )
    .unwrap();
    for i in 0..commits {
        canned_commit(&mut graph, i);
        if checkpoint_at == Some(i + 1) {
            durable.checkpoint(&graph).unwrap();
        }
    }
    durable.flush().unwrap();
    tmp
}

fn strict() -> RecoveryOptions {
    RecoveryOptions { strict_tail: true }
}

#[test]
fn bad_wal_header() {
    let tmp = TempDir::new("badhdr");
    std::fs::write(tmp.path().join(WAL_FILE), b"NOTAWAL!frames follow").unwrap();
    let err = recover(tmp.path(), &RecoveryOptions::default()).unwrap_err();
    assert_eq!(err, RecoveryError::BadWalHeader);
}

#[test]
fn truncated_frame_is_typed_in_strict_mode() {
    let tmp = build("trunc", 3, None);
    let wal = tmp.path().join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    // Cut into the middle of the final frame.
    std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

    let err = recover(tmp.path(), &strict()).unwrap_err();
    let RecoveryError::TruncatedFrame { offset } = err else {
        panic!("expected TruncatedFrame, got {err:?}");
    };
    assert!(offset >= WAL_MAGIC.len() as u64);

    // Lenient mode lands on the previous commit instead.
    let (_, report) = recover(tmp.path(), &RecoveryOptions::default()).unwrap();
    assert_eq!(report.commits_replayed, 2);
    assert_eq!(report.last_seq, 2);
}

#[test]
fn tail_checksum_mismatch_is_typed_in_strict_mode() {
    let tmp = build("tailcrc", 3, None);
    let wal = tmp.path().join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip one payload byte of the *final* frame (a torn sector).
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&wal, &bytes).unwrap();

    let err = recover(tmp.path(), &strict()).unwrap_err();
    assert!(
        matches!(err, RecoveryError::ChecksumMismatch { .. }),
        "expected ChecksumMismatch, got {err:?}"
    );

    let (_, report) = recover(tmp.path(), &RecoveryOptions::default()).unwrap();
    assert_eq!(report.commits_replayed, 2, "torn tail dropped, prefix kept");
}

#[test]
fn interior_checksum_mismatch_always_errors() {
    let tmp = build("midcrc", 3, None);
    let wal = tmp.path().join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip a byte in the *first* frame's payload: corruption followed by
    // more log can never be a crash artifact.
    let offset = WAL_MAGIC.len() + 8 + 4;
    bytes[offset] ^= 0xff;
    std::fs::write(&wal, &bytes).unwrap();

    for opts in [RecoveryOptions::default(), strict()] {
        let err = recover(tmp.path(), &opts).unwrap_err();
        assert_eq!(
            err,
            RecoveryError::ChecksumMismatch {
                offset: WAL_MAGIC.len() as u64
            },
            "mode {opts:?}"
        );
    }
}

#[test]
fn snapshot_corruption_always_errors() {
    let tmp = build("snapcrc", 3, Some(2));
    let snap = tmp.path().join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap, &bytes).unwrap();

    for opts in [RecoveryOptions::default(), strict()] {
        let err = recover(tmp.path(), &opts).unwrap_err();
        assert!(
            matches!(err, RecoveryError::SnapshotCorrupt { .. }),
            "mode {opts:?}: expected SnapshotCorrupt, got {err:?}"
        );
    }
}

#[test]
fn missing_snapshot_with_later_frames_is_an_epoch_gap() {
    // Checkpoint at 2 truncates frames 1-2; frames 3-4 follow. Deleting
    // the snapshot leaves a log that starts at seq 3 with nothing to
    // stand on — recovery must refuse, not silently replay a suffix.
    let tmp = build("gap", 4, Some(2));
    std::fs::remove_file(tmp.path().join(SNAPSHOT_FILE)).unwrap();

    let err = recover(tmp.path(), &RecoveryOptions::default()).unwrap_err();
    assert_eq!(err, RecoveryError::EpochGap { have: 3, need: 1 });
}

#[test]
fn valid_crc_with_undecodable_payload_is_a_codec_error() {
    let tmp = build("codec", 1, None);
    let wal = tmp.path().join(WAL_FILE);
    let mut bytes = std::fs::read(&wal).unwrap();
    // Hand-craft a frame whose checksum passes but whose payload is not a
    // valid commit record (wrong kind byte), followed by a real-looking
    // second frame so it is interior... tail position is enough: codec
    // errors are raised wherever the frame sits, because a passing CRC
    // rules out a torn write.
    let mut payload = Vec::new();
    codec::put_u8(&mut payload, 9); // unknown frame kind
    codec::put_u64(&mut payload, 2);
    let mut frame = Vec::new();
    codec::put_u32(&mut frame, payload.len() as u32);
    codec::put_u32(&mut frame, pg_wal::crc::crc32(&payload));
    frame.extend_from_slice(&payload);
    bytes.extend_from_slice(&frame);
    std::fs::write(&wal, &bytes).unwrap();

    let err = recover(tmp.path(), &RecoveryOptions::default()).unwrap_err();
    assert!(
        matches!(err, RecoveryError::Codec(_)),
        "expected Codec, got {err:?}"
    );
}

#[test]
fn io_failure_is_typed() {
    let tmp = TempDir::new("io");
    // A directory where the WAL file should be: opens, then fails to read.
    std::fs::create_dir(tmp.path().join(WAL_FILE)).unwrap();
    let err = recover(tmp.path(), &RecoveryOptions::default()).unwrap_err();
    assert!(matches!(err, RecoveryError::Io(_)), "got {err:?}");
}

#[test]
fn scan_reports_offsets_that_match_the_file() {
    let tmp = build("offsets", 4, None);
    let scan = scan_wal(&tmp.path().join(WAL_FILE)).unwrap();
    assert_eq!(scan.frames.len(), 4);
    assert_eq!(scan.frames[0].offset, WAL_MAGIC.len() as u64);
    for w in scan.frames.windows(2) {
        assert!(w[0].offset < w[1].offset);
        assert_eq!(w[0].seq + 1, w[1].seq);
    }
    assert_eq!(
        scan.valid_len,
        std::fs::metadata(tmp.path().join(WAL_FILE)).unwrap().len()
    );
}
