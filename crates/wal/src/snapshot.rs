//! Compacted snapshots: a point-in-time serialization of the whole store.
//!
//! A snapshot supersedes every WAL frame with `seq <= snapshot.seq`, which
//! is what keeps the log from growing without bound. The file carries the
//! commit sequence it was cut at, the id-allocator watermarks, every index
//! *definition* (index entries are rebuilt by loading records through the
//! normal index-maintaining insert paths), and every record:
//!
//! ```text
//! snapshot.pgs := MAGIC payload_len:u64 crc:u32 payload
//! MAGIC        := "PGSNAP01"
//! payload      := seq:u64 next_node:u64 next_rel:u64
//!                 node_indexes rel_indexes composite_indexes
//!                 rel_composite_indexes nodes rels
//! ```
//!
//! Writing is crash-atomic: the bytes go to `snapshot.pgs.tmp`, are
//! fsynced, and only then renamed over `snapshot.pgs` (rename is atomic on
//! POSIX). A crash mid-write leaves a stale `.tmp` that recovery ignores
//! and removes — the previous snapshot (or none) stays authoritative, and
//! the WAL frames it would have superseded are still present because the
//! log is only truncated *after* the rename lands.

use crate::crc::crc32;
use crate::errors::RecoveryError;
use pg_graph::codec::{self, Reader};
use pg_graph::Graph;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Snapshot file name inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pgs";
/// In-progress snapshot (crash debris unless renamed).
pub const SNAPSHOT_TMP: &str = "snapshot.pgs.tmp";
/// 8-byte file magic; doubles as the format version.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PGSNAP01";

fn encode_string_pairs(pairs: &[(String, String)], out: &mut Vec<u8>) {
    codec::put_u32(out, pairs.len() as u32);
    for (a, b) in pairs {
        codec::put_str(out, a);
        codec::put_str(out, b);
    }
}

fn decode_string_pairs(r: &mut Reader<'_>) -> Result<Vec<(String, String)>, RecoveryError> {
    let n = r.u32("index definition count")?;
    let mut pairs = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        pairs.push((r.string("index label")?, r.string("index key")?));
    }
    Ok(pairs)
}

fn encode_composite_defs(defs: &[(String, Vec<String>)], out: &mut Vec<u8>) {
    codec::put_u32(out, defs.len() as u32);
    for (label, cols) in defs {
        codec::put_str(out, label);
        codec::put_u32(out, cols.len() as u32);
        for c in cols {
            codec::put_str(out, c);
        }
    }
}

fn decode_composite_defs(r: &mut Reader<'_>) -> Result<Vec<(String, Vec<String>)>, RecoveryError> {
    let n = r.u32("composite definition count")?;
    let mut defs = Vec::with_capacity((n as usize).min(1 << 16));
    for _ in 0..n {
        let label = r.string("composite label")?;
        let n_cols = r.u32("composite column count")?;
        let mut cols = Vec::with_capacity((n_cols as usize).min(64));
        for _ in 0..n_cols {
            cols.push(r.string("composite column")?);
        }
        defs.push((label, cols));
    }
    Ok(defs)
}

/// Serialize the full store state as cut at commit sequence `seq`.
pub fn encode_snapshot(graph: &Graph, seq: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, seq);
    let (next_node, next_rel) = graph.id_watermarks();
    codec::put_u64(&mut payload, next_node);
    codec::put_u64(&mut payload, next_rel);
    encode_string_pairs(&graph.indexes(), &mut payload);
    encode_string_pairs(&graph.rel_indexes(), &mut payload);
    encode_composite_defs(&graph.composite_indexes(), &mut payload);
    encode_composite_defs(&graph.rel_composite_indexes(), &mut payload);
    codec::put_u64(&mut payload, graph.node_count() as u64);
    for rec in graph.nodes() {
        codec::encode_node_record(rec, &mut payload);
    }
    codec::put_u64(&mut payload, graph.rel_count() as u64);
    for rec in graph.rels() {
        codec::encode_rel_record(rec, &mut payload);
    }

    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 12 + payload.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    codec::put_u64(&mut bytes, payload.len() as u64);
    codec::put_u32(&mut bytes, crc32(&payload));
    bytes.extend_from_slice(&payload);
    bytes
}

/// Write a snapshot of `graph` (as of commit sequence `seq`) into `dir`,
/// crash-atomically: tmp + fsync + rename + directory fsync.
pub fn write_snapshot(dir: &Path, graph: &Graph, seq: u64) -> std::io::Result<()> {
    let bytes = encode_snapshot(graph, seq);
    let tmp = dir.join(SNAPSHOT_TMP);
    let dst = dir.join(SNAPSHOT_FILE);
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, &dst)?;
    // Make the rename itself durable (POSIX: fsync the directory).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A decoded snapshot: the store as of commit sequence `seq`, loaded into
/// a fresh graph with all index definitions re-created and entries/stats
/// rebuilt through the normal insert paths.
pub struct LoadedSnapshot {
    pub seq: u64,
    pub graph: Graph,
    pub nodes: usize,
    pub rels: usize,
}

/// Decode snapshot bytes. Every format violation — bad magic, short
/// payload, checksum failure, undecodable record — is
/// [`RecoveryError::SnapshotCorrupt`]: the atomic write protocol means a
/// damaged snapshot cannot be crash debris.
pub fn decode_snapshot(bytes: &[u8]) -> Result<LoadedSnapshot, RecoveryError> {
    let corrupt = |reason: &str| RecoveryError::SnapshotCorrupt {
        reason: reason.to_string(),
    };
    let header = SNAPSHOT_MAGIC.len() + 12;
    if bytes.len() < header || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic or short header"));
    }
    let mut r = Reader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
    let payload_len = r
        .u64("snapshot payload length")
        .map_err(|_| corrupt("short header"))? as usize;
    let crc = r.u32("snapshot crc").map_err(|_| corrupt("short header"))?;
    if bytes.len() != header + payload_len {
        return Err(corrupt("payload length mismatch"));
    }
    let payload = &bytes[header..];
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }

    let snap_err = |e: RecoveryError| match e {
        RecoveryError::Codec(c) => RecoveryError::SnapshotCorrupt {
            reason: format!("undecodable payload: {c}"),
        },
        other => other,
    };
    let mut r = Reader::new(payload);
    let mut decode = || -> Result<LoadedSnapshot, RecoveryError> {
        let seq = r.u64("snapshot seq")?;
        let next_node = r.u64("snapshot next_node")?;
        let next_rel = r.u64("snapshot next_rel")?;
        let mut graph = Graph::new();
        // Definitions before records: loading through the normal insert
        // paths then maintains every index incrementally.
        for (label, key) in decode_string_pairs(&mut r)? {
            graph.create_index(&label, &key);
        }
        for (ty, key) in decode_string_pairs(&mut r)? {
            graph.create_rel_index(&ty, &key);
        }
        for (label, cols) in decode_composite_defs(&mut r)? {
            graph.create_composite_index(&label, &cols);
        }
        for (ty, cols) in decode_composite_defs(&mut r)? {
            graph.create_rel_composite_index(&ty, &cols);
        }
        let n_nodes = r.u64("snapshot node count")? as usize;
        for _ in 0..n_nodes {
            let rec = codec::decode_node_record(&mut r)?;
            graph.load_node(rec).expect("snapshot load outside tx");
        }
        let n_rels = r.u64("snapshot rel count")? as usize;
        for _ in 0..n_rels {
            let rec = codec::decode_rel_record(&mut r)?;
            graph.load_rel(rec).expect("snapshot load outside tx");
        }
        if !r.is_empty() {
            return Err(corrupt("trailing bytes after payload"));
        }
        graph.set_id_floor(next_node, next_rel);
        Ok(LoadedSnapshot {
            seq,
            graph,
            nodes: n_nodes,
            rels: n_rels,
        })
    };
    decode().map_err(snap_err).map_err(|e| match e {
        e @ RecoveryError::SnapshotCorrupt { .. } => e,
        RecoveryError::Io(io) => RecoveryError::Io(io),
        other => RecoveryError::SnapshotCorrupt {
            reason: other.to_string(),
        },
    })
}

/// Load the snapshot from `dir`, if one exists. A stale `.tmp` (crash
/// mid-snapshot) is never read.
pub fn load_snapshot(dir: &Path) -> Result<Option<LoadedSnapshot>, RecoveryError> {
    let path = dir.join(SNAPSHOT_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    decode_snapshot(&bytes).map(Some)
}
