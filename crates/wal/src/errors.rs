//! Typed recovery failures.
//!
//! Recovery reads arbitrary bytes off disk — a crashed process leaves
//! torn tails, an operator leaves mismatched file sets — so every failure
//! mode is a variant, never a panic. The torn-tail variants
//! ([`RecoveryError::TruncatedFrame`], [`RecoveryError::ChecksumMismatch`]
//! *at end of file*) are only raised in strict mode; default recovery
//! treats them as the expected signature of a crash mid-append and stops
//! at the last fully-committed frame.

use pg_graph::codec::CodecError;
use std::fmt;
use std::io;

/// Why recovery (or snapshot loading) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// Filesystem error (open/read/metadata) outside the format itself.
    Io(String),
    /// The durability configuration is invalid — e.g. `PG_WAL_SYNC` is set
    /// to an unrecognized spelling. Raised at open time, before any byte
    /// is written under the wrong policy.
    Config(String),
    /// Another live process holds the directory's lock file. Two writers
    /// interleaving appends would corrupt the WAL, so the second open is
    /// refused instead.
    Locked { holder_pid: u32 },
    /// The WAL file exists but does not start with the WAL magic — wrong
    /// file, wrong version, or header-level corruption.
    BadWalHeader,
    /// A frame's length prefix promises more bytes than the file holds.
    /// Tolerated at end-of-file unless strict (a crash mid-append).
    TruncatedFrame { offset: u64 },
    /// A frame's payload does not match its checksum. Tolerated when the
    /// frame is the file's final one (torn tail) unless strict; an
    /// interior mismatch is always corruption (appends never rewrite
    /// interior bytes).
    ChecksumMismatch { offset: u64 },
    /// The snapshot file is unreadable as a snapshot: bad magic, short
    /// payload, or checksum failure. Never tolerated — a snapshot is
    /// written atomically (tmp + rename), so a torn snapshot cannot occur
    /// under the protocol and means the file set was tampered with.
    SnapshotCorrupt { reason: String },
    /// The WAL does not connect to the snapshot: the first frame past the
    /// snapshot has sequence `have` where `need` was required (a missing
    /// snapshot, a deleted WAL segment, or files from different stores).
    EpochGap { have: u64, need: u64 },
    /// A frame passed its checksum but its payload failed to decode —
    /// a format bug or a hand-edited file.
    Codec(CodecError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery I/O error: {e}"),
            RecoveryError::Config(reason) => {
                write!(f, "invalid durability configuration: {reason}")
            }
            RecoveryError::Locked { holder_pid } => {
                write!(
                    f,
                    "durable directory is locked by live process {holder_pid} \
                     (one writer per directory; close it or remove a stale lock)"
                )
            }
            RecoveryError::BadWalHeader => write!(f, "WAL file has a bad header"),
            RecoveryError::TruncatedFrame { offset } => {
                write!(f, "truncated WAL frame at byte {offset}")
            }
            RecoveryError::ChecksumMismatch { offset } => {
                write!(f, "WAL frame checksum mismatch at byte {offset}")
            }
            RecoveryError::SnapshotCorrupt { reason } => {
                write!(f, "snapshot corrupt: {reason}")
            }
            RecoveryError::EpochGap { have, need } => {
                write!(
                    f,
                    "epoch gap between snapshot and WAL: first frame is seq {have}, need {need}"
                )
            }
            RecoveryError::Codec(e) => write!(f, "WAL frame payload undecodable: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e.to_string())
    }
}

impl From<CodecError> for RecoveryError {
    fn from(e: CodecError) -> Self {
        RecoveryError::Codec(e)
    }
}

/// Why a runtime WAL operation (append, flush, checkpoint) failed after
/// the log was successfully opened.
///
/// Poisoning deserves a variant of its own: a worker that panicked while
/// holding the WAL mutex may have left a partially appended frame behind,
/// so later operations must refuse with an error the commit path can turn
/// into a veto ([`pg_graph::GraphError::Durability`]) — never a panic of
/// their own.
#[derive(Debug)]
pub enum WalError {
    /// A thread panicked while holding the WAL lock; the log's in-memory
    /// and on-disk state can no longer be trusted for further appends.
    Poisoned,
    /// The underlying file operation failed.
    Io(io::Error),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Poisoned => write!(
                f,
                "WAL lock poisoned by a panicked writer; refusing further appends"
            ),
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<WalError> for io::Error {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(io) => io,
            WalError::Poisoned => io::Error::other(e.to_string()),
        }
    }
}
