//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! Every WAL frame and snapshot payload carries a CRC so recovery can
//! tell a torn tail (partial last write) from silent corruption. The
//! vendored dependency set has no checksum crate, so the 256-entry table
//! is computed once at first use.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `data` (the common `crc32` as used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
