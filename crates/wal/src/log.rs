//! The append-only write-ahead log: frame format, writer, and scanner.
//!
//! File layout:
//!
//! ```text
//! wal.log := MAGIC frame*
//! MAGIC   := "PGWAL\0v1"                      (8 bytes)
//! frame   := len:u32 crc:u32 payload          (len = payload byte count,
//!                                              crc = crc32(payload))
//! payload := kind:u8(=1) seq:u64 next_node:u64 next_rel:u64 ops
//! ops     := count:u32 op*                    (pg_graph::codec encoding)
//! ```
//!
//! One frame per non-empty commit, carrying the **post-cascade** committed
//! op stream plus the id-allocator watermarks (rolled-back work advances
//! the allocators, so surviving records alone under-count). `seq` is a
//! dense commit sequence number: frame N+1 always has `seq = N.seq + 1`,
//! which is what lets recovery prove the log connects to the snapshot.
//!
//! Writes are append-only — interior bytes are never rewritten — so the
//! only damage a crash can inflict is a *torn tail*: a final frame whose
//! bytes are short or whose checksum fails. The scanner classifies tails
//! (see [`TailState`]) instead of erroring so default recovery can land on
//! the last fully-committed frame.

use crate::crc::crc32;
use crate::errors::RecoveryError;
use pg_graph::codec::{self, CodecError, Reader};
use pg_graph::Op;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside a durable directory.
pub const WAL_FILE: &str = "wal.log";
/// 8-byte file magic; doubles as the format version.
pub const WAL_MAGIC: &[u8; 8] = b"PGWAL\0v1";
/// Frame kind byte for a commit frame (the only kind, room for more).
const FRAME_COMMIT: u8 = 1;

/// When appended frames reach the disk platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every commit: no committed transaction is ever lost,
    /// at one disk round-trip per commit.
    Always,
    /// Group commit: frames are written to the OS immediately but fsynced
    /// once per [`WalOptions::group_bytes`] of log (and at checkpoints/
    /// explicit flushes). A crash can lose the unsynced suffix of
    /// *acknowledged* commits — never a prefix, never consistency.
    Group,
    /// Never fsync; the OS decides. For bulk loads and benchmarks.
    Never,
}

impl SyncPolicy {
    /// Parse one spelling. Exactly `always`, `group`, and `never` are
    /// accepted — nothing else. A typo like `alway` silently falling back
    /// to the *weaker* `Group` policy is how acknowledged commits get lost
    /// on the one machine whose operator asked for `always`, so unknown
    /// values are a hard error instead.
    pub fn parse(s: &str) -> Result<SyncPolicy, RecoveryError> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "group" => Ok(SyncPolicy::Group),
            "never" => Ok(SyncPolicy::Never),
            other => Err(RecoveryError::Config(format!(
                "PG_WAL_SYNC={other:?} is not a sync policy \
                 (expected \"always\", \"group\", or \"never\")"
            ))),
        }
    }

    /// Read `PG_WAL_SYNC`: unset defaults to `group`, a set value must
    /// parse ([`SyncPolicy::parse`]) — unknown spellings are an error, not
    /// a silent fallback.
    pub fn from_env() -> Result<SyncPolicy, RecoveryError> {
        match std::env::var("PG_WAL_SYNC") {
            Ok(s) => SyncPolicy::parse(&s),
            Err(std::env::VarError::NotPresent) => Ok(SyncPolicy::Group),
            Err(std::env::VarError::NotUnicode(_)) => Err(RecoveryError::Config(
                "PG_WAL_SYNC is set to non-unicode bytes".into(),
            )),
        }
    }
}

/// Tuning for the WAL writer.
#[derive(Debug, Clone)]
pub struct WalOptions {
    pub sync: SyncPolicy,
    /// Under [`SyncPolicy::Group`], fsync once this many unsynced bytes
    /// accumulate.
    pub group_bytes: usize,
}

impl Default for WalOptions {
    /// `Group` with the 32 KiB batch — **not** environment-sensitive.
    /// Environment resolution is explicit ([`WalOptions::from_env`]) so a
    /// malformed `PG_WAL_SYNC` can fail loudly instead of being swallowed
    /// inside a `Default` impl that cannot report it.
    fn default() -> Self {
        WalOptions {
            sync: SyncPolicy::Group,
            group_bytes: 32 * 1024,
        }
    }
}

impl WalOptions {
    /// Default options with the sync policy resolved from `PG_WAL_SYNC`.
    /// A set-but-unrecognized value is a hard [`RecoveryError::Config`].
    pub fn from_env() -> Result<WalOptions, RecoveryError> {
        Ok(WalOptions {
            sync: SyncPolicy::from_env()?,
            ..WalOptions::default()
        })
    }
}

/// The append-side of the log. Single writer, mirroring the store.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Sequence of the last appended frame (0 = none yet).
    seq: u64,
    /// Bytes appended since the last fsync (group-commit accounting).
    unsynced: usize,
    opts: WalOptions,
}

impl Wal {
    /// Create a fresh WAL at `path` (truncating any existing file) with
    /// the given starting sequence — `0` for an empty store, the
    /// checkpoint sequence after compaction.
    pub fn create(path: &Path, start_seq: u64, opts: WalOptions) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            seq: start_seq,
            unsynced: 0,
            opts,
        })
    }

    /// Reopen an existing WAL for appending after recovery. `valid_len`
    /// is the byte length of the last fully-valid frame's end (the scan's
    /// [`WalScan::valid_len`]); any torn tail beyond it is cut off so the
    /// next append starts on a frame boundary.
    pub fn reopen(path: &Path, seq: u64, valid_len: u64, opts: WalOptions) -> std::io::Result<Wal> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            seq,
            unsynced: 0,
            opts,
        })
    }

    /// Sequence of the last appended frame.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one commit frame and apply the sync policy. Returns the
    /// frame's sequence number.
    pub fn append(&mut self, ops: &[Op], next_node: u64, next_rel: u64) -> std::io::Result<u64> {
        let seq = self.seq + 1;
        let mut payload = Vec::with_capacity(64 + ops.len() * 32);
        codec::put_u8(&mut payload, FRAME_COMMIT);
        codec::put_u64(&mut payload, seq);
        codec::put_u64(&mut payload, next_node);
        codec::put_u64(&mut payload, next_rel);
        codec::encode_ops(ops, &mut payload);

        let mut frame = Vec::with_capacity(8 + payload.len());
        codec::put_u32(&mut frame, payload.len() as u32);
        codec::put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        self.seq = seq;
        self.unsynced += frame.len();
        match self.opts.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::Group => {
                if self.unsynced >= self.opts.group_bytes {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Force everything appended so far to disk (group-commit flush).
    /// A no-op when nothing is pending.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_all()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Drop every frame (after a durable checkpoint has superseded them):
    /// truncate back to the magic header. The sequence counter keeps
    /// running — the next frame continues the dense numbering, which is
    /// how recovery ties the post-checkpoint log to the snapshot.
    pub fn truncate_frames(&mut self) -> std::io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }
}

/// One decoded commit frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub seq: u64,
    pub next_node: u64,
    pub next_rel: u64,
    pub ops: Vec<Op>,
    /// Byte offset of the frame's length prefix in the file.
    pub offset: u64,
}

/// What the scanner found at the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailState {
    /// The file ends exactly on a frame boundary.
    Clean,
    /// The final frame's bytes are short of its length prefix (crash
    /// mid-append). `offset` is the frame's start.
    Truncated { offset: u64 },
    /// The final frame is complete but fails its checksum (crash between
    /// the tail of one write and the head of the next, or a torn sector).
    Corrupt { offset: u64 },
}

/// Result of scanning a WAL file: every fully-valid frame, the byte
/// length they span (magic included), and the tail classification.
#[derive(Debug)]
pub struct WalScan {
    pub frames: Vec<Frame>,
    pub valid_len: u64,
    pub tail: TailState,
}

/// Scan `path`, stopping at the first torn tail. Interior damage —
/// a checksum mismatch or short frame *with more log after it* — is an
/// error regardless of mode: appends never rewrite interior bytes, so
/// that is corruption, not a crash signature. A missing file scans as
/// empty (a store that never committed).
pub fn scan_wal(path: &Path) -> Result<WalScan, RecoveryError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                frames: Vec::new(),
                valid_len: 0,
                tail: TailState::Clean,
            });
        }
        Err(e) => return Err(e.into()),
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A crash during file creation can leave a short magic; anything
        // that is not a prefix of the magic is the wrong file.
        if WAL_MAGIC.starts_with(&bytes[..]) {
            return Ok(WalScan {
                frames: Vec::new(),
                valid_len: 0,
                tail: TailState::Truncated { offset: 0 },
            });
        }
        return Err(RecoveryError::BadWalHeader);
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(RecoveryError::BadWalHeader);
    }

    let mut frames = Vec::new();
    let mut pos = WAL_MAGIC.len();
    let mut tail = TailState::Clean;
    while pos < bytes.len() {
        let offset = pos as u64;
        if bytes.len() - pos < 8 {
            tail = TailState::Truncated { offset };
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            tail = TailState::Truncated { offset };
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            if pos + 8 + len == bytes.len() {
                // Final frame: a torn sector inside the last append.
                tail = TailState::Corrupt { offset };
                break;
            }
            // Interior frame: real corruption, never a crash artifact.
            return Err(RecoveryError::ChecksumMismatch { offset });
        }
        frames.push(decode_frame(payload, offset)?);
        pos += 8 + len;
    }
    Ok(WalScan {
        frames,
        valid_len: pos as u64,
        tail,
    })
}

fn decode_frame(payload: &[u8], offset: u64) -> Result<Frame, RecoveryError> {
    let mut r = Reader::new(payload);
    let kind = r.u8("frame kind")?;
    if kind != FRAME_COMMIT {
        return Err(RecoveryError::Codec(CodecError::BadTag {
            what: "frame kind",
            tag: kind,
        }));
    }
    let seq = r.u64("frame seq")?;
    let next_node = r.u64("frame next_node")?;
    let next_rel = r.u64("frame next_rel")?;
    let ops = codec::decode_ops(&mut r)?;
    if !r.is_empty() {
        return Err(RecoveryError::Codec(CodecError::BadTag {
            what: "bytes after frame payload",
            tag: r.u8("trailing byte")?,
        }));
    }
    Ok(Frame {
        seq,
        next_node,
        next_rel,
        ops,
        offset,
    })
}
