//! Crash recovery: snapshot + WAL replay → a graph equal to the last
//! committed state.
//!
//! The recovery invariants, in order:
//!
//! 1. **Snapshot first.** The latest durable snapshot (if any) is decoded
//!    into a fresh graph — index definitions before records, so every
//!    index and degree statistic is rebuilt through the normal
//!    index-maintaining insert paths.
//! 2. **Replay forward.** WAL frames with `seq > snapshot.seq` are
//!    applied in order through [`Graph::apply_committed_ops`] — the same
//!    code rollback uses, run in the forward direction. Frames at or
//!    below the snapshot sequence are superseded and skipped (they only
//!    exist when a crash hit between snapshot rename and log truncation).
//! 3. **Dense or refuse.** Frame sequences must continue the snapshot
//!    exactly (`snapshot.seq + 1, +2, …`); any gap means the file set is
//!    incoherent and recovery refuses with [`RecoveryError::EpochGap`]
//!    rather than silently losing commits.
//! 4. **Torn tails are normal, interior damage is not.** A final frame
//!    that is short or fails its checksum is the expected signature of a
//!    crash mid-append: default recovery stops just before it (strict
//!    mode surfaces it as an error instead). Damage *followed by more
//!    log* is always an error — appends never rewrite interior bytes.
//! 5. **Effects, not causes.** Frames hold post-cascade committed ops;
//!    replay never enters trigger dispatch, so a trigger that already
//!    fired before the crash fires zero additional times during
//!    recovery.
//! 6. **Fresh statistics.** Replay maintains index entries exactly but
//!    histograms accumulate drift; [`Graph::rebuild_stats`] runs last so
//!    planning estimates (and `EXPLAIN` output) match a never-crashed
//!    twin.

use crate::errors::RecoveryError;
use crate::log::{scan_wal, TailState, WAL_FILE};
use crate::snapshot::load_snapshot;
use pg_graph::Graph;
use std::path::Path;

/// Knobs for [`recover`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryOptions {
    /// Refuse torn tails instead of tolerating them: a truncated or
    /// checksum-failing final frame becomes [`RecoveryError::TruncatedFrame`] /
    /// [`RecoveryError::ChecksumMismatch`]. For operators who would rather
    /// inspect a crashed log than silently drop its tail.
    pub strict_tail: bool,
}

/// What recovery found and did — surfaced so callers (and tests) can
/// assert exactly which commits survived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Commit sequence the snapshot was cut at (0 = no snapshot).
    pub snapshot_seq: u64,
    /// Records loaded from the snapshot.
    pub snapshot_nodes: usize,
    pub snapshot_rels: usize,
    /// WAL frames replayed over the snapshot.
    pub commits_replayed: usize,
    /// The last committed sequence the recovered graph reflects.
    pub last_seq: u64,
    /// Tail classification of the scanned WAL.
    pub tail: TailState,
    /// Byte length of the valid WAL prefix (magic + whole frames); the
    /// append side truncates to this before continuing.
    pub wal_valid_len: u64,
}

/// Recover the graph persisted in `dir`. Returns the rebuilt graph (no
/// commit sink attached — [`crate::Durable::open`] does that) and a
/// report of what was replayed.
pub fn recover(
    dir: &Path,
    opts: &RecoveryOptions,
) -> Result<(Graph, RecoveryReport), RecoveryError> {
    let (mut graph, snapshot_seq, snapshot_nodes, snapshot_rels) = match load_snapshot(dir)? {
        Some(snap) => (snap.graph, snap.seq, snap.nodes, snap.rels),
        None => (Graph::new(), 0, 0, 0),
    };

    let scan = scan_wal(&dir.join(WAL_FILE))?;
    if opts.strict_tail {
        match scan.tail {
            TailState::Clean => {}
            TailState::Truncated { offset } => {
                return Err(RecoveryError::TruncatedFrame { offset });
            }
            TailState::Corrupt { offset } => {
                return Err(RecoveryError::ChecksumMismatch { offset });
            }
        }
    }

    let mut last_seq = snapshot_seq;
    let mut commits_replayed = 0usize;
    for frame in &scan.frames {
        if frame.seq <= snapshot_seq {
            // Superseded by the snapshot: the crash hit between snapshot
            // rename and log truncation. The snapshot already contains
            // this frame's effects.
            continue;
        }
        if frame.seq != last_seq + 1 {
            return Err(RecoveryError::EpochGap {
                have: frame.seq,
                need: last_seq + 1,
            });
        }
        graph
            .apply_committed_ops(&frame.ops)
            .expect("recovery graph has no active transaction");
        graph.set_id_floor(frame.next_node, frame.next_rel);
        last_seq = frame.seq;
        commits_replayed += 1;
    }

    graph.rebuild_stats();
    Ok((
        graph,
        RecoveryReport {
            snapshot_seq,
            snapshot_nodes,
            snapshot_rels,
            commits_replayed,
            last_seq,
            tail: scan.tail,
            wal_valid_len: scan.valid_len,
        },
    ))
}
