//! # pg-wal — durability for the PG-Triggers store
//!
//! An append-only binary write-ahead log plus compacted snapshots and
//! crash recovery for [`pg_graph::Graph`]. The design leans on two facts
//! about the engine above it:
//!
//! * **The op log is the WAL.** Every committed transaction already
//!   linearizes its mutations as an undo-capable [`pg_graph::Op`] stream;
//!   the WAL persists exactly that stream (via the [`pg_graph::codec`]
//!   byte format), and replay re-applies it through the same
//!   index-maintenance code rollback uses.
//! * **Triggers are recovered by effect, not by cause.** Frames are cut
//!   at commit boundaries, *after* trigger cascades ran, so the log
//!   contains cascade effects as plain ops. Recovery replays them
//!   verbatim and never re-enters trigger dispatch — a trigger that fired
//!   before the crash fires zero additional times during recovery (the
//!   paper's reactive semantics made durable without re-execution
//!   hazards).
//!
//! The moving parts:
//!
//! * [`log`] — frame format, the group-commit append side
//!   ([`SyncPolicy`]: `PG_WAL_SYNC=always|group|never`), and the
//!   torn-tail-classifying scanner;
//! * [`snapshot`] — crash-atomic compacted snapshots (tmp + fsync +
//!   rename) that truncate the log;
//! * [`mod@recover`] — snapshot-then-replay recovery with typed
//!   [`RecoveryError`]s and a [`RecoveryReport`] of what survived;
//! * [`Durable`] — the front door: open-or-recover a directory, attach
//!   the WAL as the graph's [`pg_graph::CommitSink`], checkpoint, flush.
//!
//! Opening is exclusive: [`Durable::open`] takes a PID lock file
//! ([`LOCK_FILE`]) under the directory so a second live process (or a
//! second handle in the same process) gets [`RecoveryError::Locked`]
//! instead of interleaving corrupt frames; locks left by dead processes
//! are detected stale and reclaimed. A set-but-malformed `PG_WAL_SYNC` is
//! a hard [`RecoveryError::Config`] at open time.
//!
//! ```no_run
//! use pg_wal::{Durable, RecoveryOptions, WalOptions};
//!
//! let (durable, mut graph, report) = Durable::open(
//!     std::path::Path::new("/var/lib/pg-triggers"),
//!     WalOptions::from_env().unwrap(),
//!     RecoveryOptions::default(),
//! ).unwrap();
//! assert_eq!(report.last_seq, durable.seq());
//! // graph commits now append WAL frames; periodically:
//! durable.checkpoint(&graph).unwrap();
//! ```

pub mod crc;
pub mod errors;
pub mod log;
pub mod recover;
pub mod snapshot;

pub use errors::{RecoveryError, WalError};
pub use log::{scan_wal, Frame, SyncPolicy, TailState, Wal, WalOptions, WAL_FILE, WAL_MAGIC};
pub use recover::{recover, RecoveryOptions, RecoveryReport};
pub use snapshot::{
    encode_snapshot, load_snapshot, write_snapshot, LoadedSnapshot, SNAPSHOT_FILE, SNAPSHOT_MAGIC,
    SNAPSHOT_TMP,
};

use pg_graph::{CommitSink, Graph, Op};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock file name inside a durable directory. Holds the owning PID.
pub const LOCK_FILE: &str = "pg.lock";

/// The graph's durability hook: appends each committed op stream as one
/// WAL frame, applying the configured sync policy.
#[derive(Debug)]
struct WalSink {
    wal: Arc<Mutex<Wal>>,
}

impl CommitSink for WalSink {
    fn on_commit(
        &mut self,
        ops: &[Op],
        next_node: u64,
        next_rel: u64,
    ) -> std::result::Result<(), String> {
        // A poisoned lock means a writer panicked mid-operation: the file
        // may hold a partial frame, so the commit must be vetoed — the
        // engine rolls the transaction back and the error surfaces as
        // `GraphError::Durability`, never a panic of its own.
        let mut wal = self
            .wal
            .lock()
            .map_err(|_| WalError::Poisoned.to_string())?;
        wal.append(ops, next_node, next_rel)
            .map(|_| ())
            .map_err(|e| format!("WAL append failed: {e}"))
    }
}

/// A durable store directory: `wal.log` + `snapshot.pgs` + `pg.lock`.
///
/// [`Durable::open`] recovers whatever the directory holds (empty is
/// fine), hands back the rebuilt graph with the WAL attached as its
/// commit sink, and keeps shared ownership of the log for flushes and
/// checkpoints. Bulk loads performed *outside* a transaction bypass the
/// op log (and therefore the WAL) — call [`Durable::checkpoint`] after
/// them, or they die with the process.
///
/// The handle owns the directory's PID lock; dropping it (or
/// `Session::close_durable` upstream) releases the lock for the next
/// opener.
pub struct Durable {
    dir: PathBuf,
    wal: Arc<Mutex<Wal>>,
    lock_path: PathBuf,
}

/// Whether `pid` is a live process. On Linux the `/proc` entry disappears
/// with the process; on platforms without `/proc` we err on the side of
/// liveness (a stale lock then needs manual removal, which is safer than
/// two writers).
fn pid_is_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).exists()
    } else {
        true
    }
}

/// Take the directory's exclusive PID lock. `create_new` makes the
/// creation atomic; an existing file is probed for staleness (dead PID or
/// unreadable content → reclaim) and otherwise refused with
/// [`RecoveryError::Locked`]. The reclaim loop is bounded so two racing
/// openers terminate with one winner and one `Locked`.
fn take_lock(dir: &Path) -> Result<PathBuf, RecoveryError> {
    let lock_path = dir.join(LOCK_FILE);
    let my_pid = std::process::id();
    for _ in 0..8 {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                f.write_all(my_pid.to_string().as_bytes())?;
                f.sync_all()?;
                return Ok(lock_path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid_is_alive(pid) => {
                        return Err(RecoveryError::Locked { holder_pid: pid });
                    }
                    // Dead PID or garbage content: crash debris. Remove and
                    // retry the atomic create (another process may win).
                    _ => {
                        let _ = fs::remove_file(&lock_path);
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Err(RecoveryError::Io(format!(
        "could not take {} after repeated stale-lock reclaims",
        lock_path.display()
    )))
}

impl Durable {
    /// Open (creating if needed) the durable directory, recover its
    /// state, and attach the WAL to the recovered graph's commit path.
    ///
    /// Fails with [`RecoveryError::Locked`] when a live process already
    /// holds the directory, and with [`RecoveryError::Config`] when
    /// `PG_WAL_SYNC` is set to an unrecognized spelling — even if `opts`
    /// was built programmatically, a policy the operator *believes* is in
    /// force must at least parse.
    pub fn open(
        dir: &Path,
        wal_opts: WalOptions,
        recovery_opts: RecoveryOptions,
    ) -> Result<(Durable, Graph, RecoveryReport), RecoveryError> {
        // Validate the environment before touching any file: a typo'd
        // PG_WAL_SYNC must never run a weaker policy than the operator
        // asked for (see `SyncPolicy::parse`).
        let _ = SyncPolicy::from_env()?;

        fs::create_dir_all(dir)?;
        let lock_path = take_lock(dir)?;

        // Everything below runs under the lock; release it on any failure
        // so an aborted open does not wedge the directory.
        let opened = (|| {
            // A stale in-progress snapshot is crash debris: the rename never
            // landed, so the previous snapshot (or none) is authoritative.
            let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

            let (mut graph, report) = recover(dir, &recovery_opts)?;

            let wal_path = dir.join(WAL_FILE);
            let wal = if report.wal_valid_len >= WAL_MAGIC.len() as u64 {
                Wal::reopen(&wal_path, report.last_seq, report.wal_valid_len, wal_opts)?
            } else {
                Wal::create(&wal_path, report.last_seq, wal_opts)?
            };
            let wal = Arc::new(Mutex::new(wal));
            graph.set_commit_sink(Some(Box::new(WalSink {
                wal: Arc::clone(&wal),
            })));
            Ok((wal, graph, report))
        })();
        match opened {
            Ok((wal, graph, report)) => Ok((
                Durable {
                    dir: dir.to_path_buf(),
                    wal,
                    lock_path,
                },
                graph,
                report,
            )),
            Err(e) => {
                let _ = fs::remove_file(&lock_path);
                Err(e)
            }
        }
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lock the WAL for a mutating operation, mapping poisoning to the
    /// typed error instead of propagating the panic.
    fn lock_wal(&self) -> Result<MutexGuard<'_, Wal>, WalError> {
        self.wal.lock().map_err(|_| WalError::Poisoned)
    }

    /// Sequence of the last appended commit frame.
    ///
    /// Readable even after a poisoning panic: the sequence counter is a
    /// plain integer whose last consistent value is still the best answer
    /// observability can give (appends themselves stay refused).
    pub fn seq(&self) -> u64 {
        match self.wal.lock() {
            Ok(wal) => wal.seq(),
            Err(poisoned) => poisoned.into_inner().seq(),
        }
    }

    /// Byte length of the current WAL file (observability/benches).
    pub fn wal_len(&self) -> Result<u64, WalError> {
        let wal = self.lock_wal()?;
        Ok(fs::metadata(wal.path()).map(|m| m.len())?)
    }

    /// Force buffered group-commit frames to disk.
    pub fn flush(&self) -> Result<(), WalError> {
        Ok(self.lock_wal()?.sync()?)
    }

    /// Cut a compacted snapshot of `graph` and truncate the log it
    /// supersedes. Returns the snapshot's commit sequence.
    ///
    /// Call outside a transaction, with the same graph this `Durable` is
    /// attached to. Every crash window is safe: before the rename the old
    /// snapshot + full log recover; after the rename but before the
    /// truncation the new snapshot recovers and the (now superseded)
    /// frames are skipped by their sequence numbers.
    pub fn checkpoint(&self, graph: &Graph) -> Result<u64, WalError> {
        let mut wal = self.lock_wal()?;
        wal.sync()?;
        let seq = wal.seq();
        write_snapshot(&self.dir, graph, seq)?;
        wal.truncate_frames()?;
        Ok(seq)
    }

    /// Poison the WAL mutex the way a panicking writer thread would —
    /// test scaffolding for the poisoning contract (commit vetoes instead
    /// of panics). Hidden from docs; harmless outside tests but useless.
    #[doc(hidden)]
    pub fn poison_lock_for_test(&self) {
        let wal = Arc::clone(&self.wal);
        let _ = std::thread::spawn(move || {
            let _guard = wal.lock().unwrap();
            panic!("deliberate poison (test)");
        })
        .join();
    }
}

impl Drop for Durable {
    fn drop(&mut self) {
        // Release the directory for the next opener. Crash-safe either
        // way: a lock that outlives us is reclaimed via the stale-PID
        // probe on the next open.
        let _ = fs::remove_file(&self.lock_path);
    }
}
