//! # pg-wal — durability for the PG-Triggers store
//!
//! An append-only binary write-ahead log plus compacted snapshots and
//! crash recovery for [`pg_graph::Graph`]. The design leans on two facts
//! about the engine above it:
//!
//! * **The op log is the WAL.** Every committed transaction already
//!   linearizes its mutations as an undo-capable [`pg_graph::Op`] stream;
//!   the WAL persists exactly that stream (via the [`pg_graph::codec`]
//!   byte format), and replay re-applies it through the same
//!   index-maintenance code rollback uses.
//! * **Triggers are recovered by effect, not by cause.** Frames are cut
//!   at commit boundaries, *after* trigger cascades ran, so the log
//!   contains cascade effects as plain ops. Recovery replays them
//!   verbatim and never re-enters trigger dispatch — a trigger that fired
//!   before the crash fires zero additional times during recovery (the
//!   paper's reactive semantics made durable without re-execution
//!   hazards).
//!
//! The moving parts:
//!
//! * [`log`] — frame format, the group-commit append side
//!   ([`SyncPolicy`]: `PG_WAL_SYNC=always|group|never`), and the
//!   torn-tail-classifying scanner;
//! * [`snapshot`] — crash-atomic compacted snapshots (tmp + fsync +
//!   rename) that truncate the log;
//! * [`mod@recover`] — snapshot-then-replay recovery with typed
//!   [`RecoveryError`]s and a [`RecoveryReport`] of what survived;
//! * [`Durable`] — the front door: open-or-recover a directory, attach
//!   the WAL as the graph's [`pg_graph::CommitSink`], checkpoint, flush.
//!
//! ```no_run
//! use pg_wal::{Durable, RecoveryOptions, WalOptions};
//!
//! let (durable, mut graph, report) = Durable::open(
//!     std::path::Path::new("/var/lib/pg-triggers"),
//!     WalOptions::default(),
//!     RecoveryOptions::default(),
//! ).unwrap();
//! assert_eq!(report.last_seq, durable.seq());
//! // graph commits now append WAL frames; periodically:
//! durable.checkpoint(&graph).unwrap();
//! ```

pub mod crc;
pub mod errors;
pub mod log;
pub mod recover;
pub mod snapshot;

pub use errors::RecoveryError;
pub use log::{scan_wal, Frame, SyncPolicy, TailState, Wal, WalOptions, WAL_FILE, WAL_MAGIC};
pub use recover::{recover, RecoveryOptions, RecoveryReport};
pub use snapshot::{
    encode_snapshot, load_snapshot, write_snapshot, LoadedSnapshot, SNAPSHOT_FILE, SNAPSHOT_MAGIC,
    SNAPSHOT_TMP,
};

use pg_graph::{CommitSink, Graph, Op};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The graph's durability hook: appends each committed op stream as one
/// WAL frame, applying the configured sync policy.
#[derive(Debug)]
struct WalSink {
    wal: Arc<Mutex<Wal>>,
}

impl CommitSink for WalSink {
    fn on_commit(
        &mut self,
        ops: &[Op],
        next_node: u64,
        next_rel: u64,
    ) -> std::result::Result<(), String> {
        let mut wal = self
            .wal
            .lock()
            .map_err(|_| "WAL lock poisoned".to_string())?;
        wal.append(ops, next_node, next_rel)
            .map(|_| ())
            .map_err(|e| format!("WAL append failed: {e}"))
    }
}

/// A durable store directory: `wal.log` + `snapshot.pgs`.
///
/// [`Durable::open`] recovers whatever the directory holds (empty is
/// fine), hands back the rebuilt graph with the WAL attached as its
/// commit sink, and keeps shared ownership of the log for flushes and
/// checkpoints. Bulk loads performed *outside* a transaction bypass the
/// op log (and therefore the WAL) — call [`Durable::checkpoint`] after
/// them, or they die with the process.
pub struct Durable {
    dir: PathBuf,
    wal: Arc<Mutex<Wal>>,
}

impl Durable {
    /// Open (creating if needed) the durable directory, recover its
    /// state, and attach the WAL to the recovered graph's commit path.
    pub fn open(
        dir: &Path,
        wal_opts: WalOptions,
        recovery_opts: RecoveryOptions,
    ) -> Result<(Durable, Graph, RecoveryReport), RecoveryError> {
        fs::create_dir_all(dir)?;
        // A stale in-progress snapshot is crash debris: the rename never
        // landed, so the previous snapshot (or none) is authoritative.
        let _ = fs::remove_file(dir.join(SNAPSHOT_TMP));

        let (mut graph, report) = recover(dir, &recovery_opts)?;

        let wal_path = dir.join(WAL_FILE);
        let wal = if report.wal_valid_len >= WAL_MAGIC.len() as u64 {
            Wal::reopen(&wal_path, report.last_seq, report.wal_valid_len, wal_opts)?
        } else {
            Wal::create(&wal_path, report.last_seq, wal_opts)?
        };
        let wal = Arc::new(Mutex::new(wal));
        graph.set_commit_sink(Some(Box::new(WalSink {
            wal: Arc::clone(&wal),
        })));
        Ok((
            Durable {
                dir: dir.to_path_buf(),
                wal,
            },
            graph,
            report,
        ))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence of the last appended commit frame.
    pub fn seq(&self) -> u64 {
        self.wal.lock().expect("WAL lock").seq()
    }

    /// Byte length of the current WAL file (observability/benches).
    pub fn wal_len(&self) -> std::io::Result<u64> {
        let wal = self.wal.lock().expect("WAL lock");
        fs::metadata(wal.path()).map(|m| m.len())
    }

    /// Force buffered group-commit frames to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.wal.lock().expect("WAL lock").sync()
    }

    /// Cut a compacted snapshot of `graph` and truncate the log it
    /// supersedes. Returns the snapshot's commit sequence.
    ///
    /// Call outside a transaction, with the same graph this `Durable` is
    /// attached to. Every crash window is safe: before the rename the old
    /// snapshot + full log recover; after the rename but before the
    /// truncation the new snapshot recovers and the (now superseded)
    /// frames are skipped by their sequence numbers.
    pub fn checkpoint(&self, graph: &Graph) -> std::io::Result<u64> {
        let mut wal = self.wal.lock().expect("WAL lock");
        wal.sync()?;
        let seq = wal.seq();
        write_snapshot(&self.dir, graph, seq)?;
        wal.truncate_frames()?;
        Ok(seq)
    }
}
