//! Binding rows: the unit of data flowing through a clause pipeline.

use pg_graph::Value;
use std::collections::BTreeMap;

/// Query parameters (`$name`).
pub type Params = BTreeMap<String, Value>;

/// A binding row: variable name → value. Ordered for deterministic output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Row {
    vars: BTreeMap<String, Value>,
}

impl Row {
    pub fn new() -> Row {
        Row::default()
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.vars.keys()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.vars.iter()
    }

    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Build a row from `(name, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, Value)>) -> Row {
        Row {
            vars: pairs.into_iter().collect(),
        }
    }
}

/// The result of executing a query: the `RETURN` projection (if any) plus
/// the final binding rows (used by the trigger engine to seed trigger
/// statements with the bindings surviving the condition).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOutput {
    /// Column names of the `RETURN` clause (empty when the query does not
    /// return anything).
    pub columns: Vec<String>,
    /// Returned rows, aligned with `columns`.
    pub rows: Vec<Vec<Value>>,
    /// The binding rows after the last clause.
    pub bindings: Vec<Row>,
}

impl QueryOutput {
    /// First returned value of the first row, if any. Convenience accessor
    /// for single-value queries in tests and examples.
    pub fn single(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_basics() {
        let mut r = Row::new();
        assert!(r.is_empty());
        r.set("a", Value::Int(1));
        r.set("a", Value::Int(2));
        assert_eq!(r.get("a"), Some(&Value::Int(2)));
        assert_eq!(r.len(), 1);
        assert!(r.contains("a"));
        assert!(!r.contains("b"));
    }

    #[test]
    fn rows_ordered_by_name() {
        let r = Row::from_pairs([
            ("z".to_string(), Value::Int(1)),
            ("a".to_string(), Value::Int(2)),
        ]);
        let names: Vec<_> = r.names().cloned().collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn output_single() {
        let out = QueryOutput {
            columns: vec!["x".into()],
            rows: vec![vec![Value::Int(42)]],
            bindings: vec![],
        };
        assert_eq!(out.single(), Some(&Value::Int(42)));
        assert_eq!(QueryOutput::default().single(), None);
    }
}
