//! Built-in scalar and aggregate functions.

use crate::error::{CypherError, Result};
use pg_graph::{GraphView, Value};

/// Whether `name` (lower-cased) is an aggregate function.
pub fn is_aggregate(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max" | "collect")
}

/// Evaluate a scalar (non-aggregate) builtin. `now_ms` supplies the clock
/// for `datetime()`/`date()`/`timestamp()` so executions are deterministic
/// under test.
pub fn eval_scalar(name: &str, args: &[Value], view: &dyn GraphView, now_ms: i64) -> Result<Value> {
    let argn = |i: usize| -> &Value { args.get(i).unwrap_or(&Value::Null) };
    match name {
        "id" => match argn(0) {
            Value::Node(n) => Ok(Value::Int(n.0 as i64)),
            Value::Rel(r) => Ok(Value::Int(r.0 as i64)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "id() expects a node or relationship, got {}",
                other.type_name()
            ))),
        },
        "labels" => match argn(0) {
            Value::Node(n) => {
                let mut ls = view.node_labels(*n);
                ls.sort();
                Ok(Value::List(ls.into_iter().map(Value::Str).collect()))
            }
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "labels() expects a node, got {}",
                other.type_name()
            ))),
        },
        "type" => match argn(0) {
            Value::Rel(r) => Ok(view.rel_type(*r).map(Value::Str).unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "type() expects a relationship, got {}",
                other.type_name()
            ))),
        },
        "keys" => match argn(0) {
            Value::Node(n) => Ok(Value::List(
                view.node_prop_keys(*n)
                    .into_iter()
                    .map(Value::Str)
                    .collect(),
            )),
            Value::Rel(r) => Ok(Value::List(
                view.rel_prop_keys(*r).into_iter().map(Value::Str).collect(),
            )),
            Value::Map(m) => Ok(Value::List(m.keys().cloned().map(Value::Str).collect())),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "keys() expects a node, relationship or map, got {}",
                other.type_name()
            ))),
        },
        "properties" => match argn(0) {
            Value::Node(n) => {
                let mut m = std::collections::BTreeMap::new();
                for k in view.node_prop_keys(*n) {
                    if let Some(v) = view.node_prop(*n, &k) {
                        m.insert(k, v);
                    }
                }
                Ok(Value::Map(m))
            }
            Value::Rel(r) => {
                let mut m = std::collections::BTreeMap::new();
                for k in view.rel_prop_keys(*r) {
                    if let Some(v) = view.rel_prop(*r, &k) {
                        m.insert(k, v);
                    }
                }
                Ok(Value::Map(m))
            }
            Value::Map(m) => Ok(Value::Map(m.clone())),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "properties() expects a node or relationship, got {}",
                other.type_name()
            ))),
        },
        "startnode" => match argn(0) {
            Value::Rel(r) => Ok(view
                .rel_endpoints(*r)
                .map(|(s, _)| Value::Node(s))
                .unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "startNode() expects a relationship, got {}",
                other.type_name()
            ))),
        },
        "endnode" => match argn(0) {
            Value::Rel(r) => Ok(view
                .rel_endpoints(*r)
                .map(|(_, d)| Value::Node(d))
                .unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "endNode() expects a relationship, got {}",
                other.type_name()
            ))),
        },
        "exists" => match argn(0) {
            // Property-existence form: exists(n.prop) — by the time we get
            // here the property was already resolved; non-null ⇒ true.
            Value::Null => Ok(Value::Bool(false)),
            _ => Ok(Value::Bool(true)),
        },
        "size" | "length" => match argn(0) {
            Value::List(items) => Ok(Value::Int(items.len() as i64)),
            Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
            Value::Map(m) => Ok(Value::Int(m.len() as i64)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "size() expects a list or string, got {}",
                other.type_name()
            ))),
        },
        "head" => match argn(0) {
            Value::List(items) => Ok(items.first().cloned().unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "head() expects a list, got {}",
                other.type_name()
            ))),
        },
        "last" => match argn(0) {
            Value::List(items) => Ok(items.last().cloned().unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "last() expects a list, got {}",
                other.type_name()
            ))),
        },
        "reverse" => match argn(0) {
            Value::List(items) => Ok(Value::List(items.iter().rev().cloned().collect())),
            Value::Str(s) => Ok(Value::Str(s.chars().rev().collect())),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "reverse() expects a list or string, got {}",
                other.type_name()
            ))),
        },
        "range" => {
            let from = argn(0)
                .as_i64()
                .ok_or_else(|| CypherError::type_err("range() start"))?;
            let to = argn(1)
                .as_i64()
                .ok_or_else(|| CypherError::type_err("range() end"))?;
            let step = if args.len() > 2 {
                argn(2)
                    .as_i64()
                    .ok_or_else(|| CypherError::type_err("range() step"))?
            } else {
                1
            };
            if step == 0 {
                return Err(CypherError::Arithmetic(
                    "range() step must be non-zero".into(),
                ));
            }
            let mut out = Vec::new();
            let mut x = from;
            if step > 0 {
                while x <= to {
                    out.push(Value::Int(x));
                    x += step;
                }
            } else {
                while x >= to {
                    out.push(Value::Int(x));
                    x += step;
                }
            }
            Ok(Value::List(out))
        }
        "coalesce" => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        "tointeger" | "toint" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Int(*f as i64)),
            Value::Str(s) => Ok(s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Null)),
            Value::Bool(b) => Ok(Value::Int(*b as i64)),
            Value::Null => Ok(Value::Null),
            _ => Ok(Value::Null),
        },
        "tofloat" => match argn(0) {
            Value::Int(i) => Ok(Value::Float(*i as f64)),
            Value::Float(f) => Ok(Value::Float(*f)),
            Value::Str(s) => Ok(s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .unwrap_or(Value::Null)),
            Value::Null => Ok(Value::Null),
            _ => Ok(Value::Null),
        },
        "tostring" => match argn(0) {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Str(v.to_string())),
        },
        "toupper" => match argn(0) {
            Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "toUpper() expects a string, got {}",
                other.type_name()
            ))),
        },
        "tolower" => match argn(0) {
            Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
            Value::Null => Ok(Value::Null),
            other => Err(CypherError::type_err(format!(
                "toLower() expects a string, got {}",
                other.type_name()
            ))),
        },
        "trim" => match argn(0) {
            Value::Str(s) => Ok(Value::Str(s.trim().to_string())),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("trim() expects a string")),
        },
        "split" => match (argn(0), argn(1)) {
            (Value::Str(s), Value::Str(sep)) => Ok(Value::List(
                s.split(sep.as_str())
                    .map(|p| Value::Str(p.to_string()))
                    .collect(),
            )),
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => Err(CypherError::type_err("split() expects (string, string)")),
        },
        "replace" => match (argn(0), argn(1), argn(2)) {
            (Value::Str(s), Value::Str(from), Value::Str(to)) => {
                Ok(Value::Str(s.replace(from.as_str(), to)))
            }
            (Value::Null, _, _) => Ok(Value::Null),
            _ => Err(CypherError::type_err(
                "replace() expects (string, string, string)",
            )),
        },
        "substring" => match (argn(0), argn(1)) {
            (Value::Str(s), Value::Int(start)) => {
                let start = (*start).max(0) as usize;
                let chars: Vec<char> = s.chars().collect();
                let end = if let Some(Value::Int(len)) = args.get(2) {
                    (start + (*len).max(0) as usize).min(chars.len())
                } else {
                    chars.len()
                };
                let start = start.min(chars.len());
                Ok(Value::Str(chars[start..end].iter().collect()))
            }
            (Value::Null, _) => Ok(Value::Null),
            _ => Err(CypherError::type_err(
                "substring() expects (string, int[, int])",
            )),
        },
        "abs" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("abs() expects a number")),
        },
        "sign" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(i.signum())),
            Value::Float(f) => Ok(Value::Int(if *f > 0.0 {
                1
            } else if *f < 0.0 {
                -1
            } else {
                0
            })),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("sign() expects a number")),
        },
        "ceil" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Float(f.ceil())),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("ceil() expects a number")),
        },
        "floor" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Float(f.floor())),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("floor() expects a number")),
        },
        "round" => match argn(0) {
            Value::Int(i) => Ok(Value::Int(*i)),
            Value::Float(f) => Ok(Value::Float(f.round())),
            Value::Null => Ok(Value::Null),
            _ => Err(CypherError::type_err("round() expects a number")),
        },
        "sqrt" => match argn(0).as_f64() {
            Some(f) => Ok(Value::Float(f.sqrt())),
            None if argn(0).is_null() => Ok(Value::Null),
            None => Err(CypherError::type_err("sqrt() expects a number")),
        },
        "datetime" => Ok(Value::DateTime(now_ms)),
        "date" => Ok(Value::Date(now_ms / 86_400_000)),
        "timestamp" => Ok(Value::Int(now_ms)),
        "abort" => {
            let msg = match argn(0) {
                Value::Str(s) => s.clone(),
                Value::Null => "aborted".to_string(),
                other => other.to_string(),
            };
            Err(CypherError::Aborted(msg))
        }
        other => Err(CypherError::UnknownFunction(other.to_string())),
    }
}

/// Accumulator for aggregate functions.
#[derive(Debug, Clone)]
pub enum Accumulator {
    Count {
        n: i64,
        distinct: bool,
        seen: Vec<Value>,
    },
    Sum {
        acc: Value,
    },
    Avg {
        sum: f64,
        n: i64,
    },
    Min {
        acc: Option<Value>,
    },
    Max {
        acc: Option<Value>,
    },
    Collect {
        items: Vec<Value>,
        distinct: bool,
    },
}

impl Accumulator {
    /// A fresh accumulator for the given aggregate function name.
    pub fn new(name: &str, distinct: bool) -> Option<Accumulator> {
        Some(match name {
            "count" => Accumulator::Count {
                n: 0,
                distinct,
                seen: Vec::new(),
            },
            "sum" => Accumulator::Sum { acc: Value::Int(0) },
            "avg" => Accumulator::Avg { sum: 0.0, n: 0 },
            "min" => Accumulator::Min { acc: None },
            "max" => Accumulator::Max { acc: None },
            "collect" => Accumulator::Collect {
                items: Vec::new(),
                distinct,
            },
            _ => return None,
        })
    }

    /// Fold one input value. `NULL` inputs are skipped (SQL semantics).
    pub fn push(&mut self, v: Value) -> Result<()> {
        if v.is_null() {
            return Ok(());
        }
        match self {
            Accumulator::Count { n, distinct, seen } => {
                if *distinct {
                    if !seen.contains(&v) {
                        seen.push(v);
                        *n += 1;
                    }
                } else {
                    *n += 1;
                }
            }
            Accumulator::Sum { acc } => {
                *acc = acc
                    .add(&v)
                    .ok_or_else(|| CypherError::type_err("sum() over non-numeric values"))?;
            }
            Accumulator::Avg { sum, n } => {
                let f = v
                    .as_f64()
                    .ok_or_else(|| CypherError::type_err("avg() over non-numeric values"))?;
                *sum += f;
                *n += 1;
            }
            Accumulator::Min { acc } => {
                let better = match acc {
                    Some(cur) => v.cmp_order(cur) == std::cmp::Ordering::Less,
                    None => true,
                };
                if better {
                    *acc = Some(v);
                }
            }
            Accumulator::Max { acc } => {
                let better = match acc {
                    Some(cur) => v.cmp_order(cur) == std::cmp::Ordering::Greater,
                    None => true,
                };
                if better {
                    *acc = Some(v);
                }
            }
            Accumulator::Collect { items, distinct } => {
                if !*distinct || !items.contains(&v) {
                    items.push(v);
                }
            }
        }
        Ok(())
    }

    /// The final aggregate value.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Count { n, .. } => Value::Int(n),
            Accumulator::Sum { acc } => acc,
            Accumulator::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Accumulator::Min { acc } | Accumulator::Max { acc } => acc.unwrap_or(Value::Null),
            Accumulator::Collect { items, .. } => Value::List(items),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::Graph;

    fn empty_view() -> Graph {
        Graph::new()
    }

    #[test]
    fn coalesce_and_conversions() {
        let g = empty_view();
        assert_eq!(
            eval_scalar("coalesce", &[Value::Null, Value::Int(2)], &g, 0).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_scalar("tointeger", &[Value::str("42")], &g, 0).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            eval_scalar("tointeger", &[Value::str("nope")], &g, 0).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar("tofloat", &[Value::Int(1)], &g, 0).unwrap(),
            Value::Float(1.0)
        );
        assert_eq!(
            eval_scalar("tostring", &[Value::Int(7)], &g, 0).unwrap(),
            Value::str("7")
        );
    }

    #[test]
    fn string_functions() {
        let g = empty_view();
        assert_eq!(
            eval_scalar("toupper", &[Value::str("ab")], &g, 0).unwrap(),
            Value::str("AB")
        );
        assert_eq!(
            eval_scalar("split", &[Value::str("a,b"), Value::str(",")], &g, 0).unwrap(),
            Value::list([Value::str("a"), Value::str("b")])
        );
        assert_eq!(
            eval_scalar(
                "substring",
                &[Value::str("hello"), Value::Int(1), Value::Int(3)],
                &g,
                0
            )
            .unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            eval_scalar(
                "replace",
                &[Value::str("aXa"), Value::str("X"), Value::str("b")],
                &g,
                0
            )
            .unwrap(),
            Value::str("aba")
        );
    }

    #[test]
    fn numeric_functions() {
        let g = empty_view();
        assert_eq!(
            eval_scalar("abs", &[Value::Int(-3)], &g, 0).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar("sign", &[Value::Float(-0.5)], &g, 0).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(
            eval_scalar("ceil", &[Value::Float(1.2)], &g, 0).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            eval_scalar("sqrt", &[Value::Int(9)], &g, 0).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn clock_functions_use_now() {
        let g = empty_view();
        assert_eq!(
            eval_scalar("datetime", &[], &g, 86_400_000).unwrap(),
            Value::DateTime(86_400_000)
        );
        assert_eq!(
            eval_scalar("date", &[], &g, 86_400_000).unwrap(),
            Value::Date(1)
        );
        assert_eq!(eval_scalar("timestamp", &[], &g, 5).unwrap(), Value::Int(5));
    }

    #[test]
    fn list_functions() {
        let g = empty_view();
        let l = Value::list([Value::Int(1), Value::Int(2)]);
        assert_eq!(
            eval_scalar("size", std::slice::from_ref(&l), &g, 0).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_scalar("head", std::slice::from_ref(&l), &g, 0).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_scalar("last", std::slice::from_ref(&l), &g, 0).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_scalar("range", &[Value::Int(1), Value::Int(3)], &g, 0).unwrap(),
            Value::list([Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval_scalar(
                "range",
                &[Value::Int(3), Value::Int(1), Value::Int(-1)],
                &g,
                0
            )
            .unwrap(),
            Value::list([Value::Int(3), Value::Int(2), Value::Int(1)])
        );
    }

    #[test]
    fn abort_raises() {
        let g = empty_view();
        let err = eval_scalar("abort", &[Value::str("boom")], &g, 0).unwrap_err();
        assert_eq!(err, CypherError::Aborted("boom".into()));
    }

    #[test]
    fn unknown_function_error() {
        let g = empty_view();
        assert!(matches!(
            eval_scalar("frobnicate", &[], &g, 0),
            Err(CypherError::UnknownFunction(_))
        ));
    }

    #[test]
    fn aggregates() {
        let mut c = Accumulator::new("count", false).unwrap();
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(1)).unwrap();
        assert_eq!(c.finish(), Value::Int(2));

        let mut c = Accumulator::new("count", true).unwrap();
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.finish(), Value::Int(2));

        let mut s = Accumulator::new("sum", false).unwrap();
        s.push(Value::Int(1)).unwrap();
        s.push(Value::Float(0.5)).unwrap();
        assert_eq!(s.finish(), Value::Float(1.5));

        let mut a = Accumulator::new("avg", false).unwrap();
        a.push(Value::Int(1)).unwrap();
        a.push(Value::Int(3)).unwrap();
        assert_eq!(a.finish(), Value::Float(2.0));
        assert_eq!(
            Accumulator::new("avg", false).unwrap().finish(),
            Value::Null
        );

        let mut m = Accumulator::new("min", false).unwrap();
        m.push(Value::Int(5)).unwrap();
        m.push(Value::Int(2)).unwrap();
        assert_eq!(m.finish(), Value::Int(2));

        let mut col = Accumulator::new("collect", false).unwrap();
        col.push(Value::Int(1)).unwrap();
        col.push(Value::Null).unwrap();
        col.push(Value::Int(2)).unwrap();
        assert_eq!(col.finish(), Value::list([Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn is_aggregate_names() {
        assert!(is_aggregate("count"));
        assert!(is_aggregate("collect"));
        assert!(!is_aggregate("size"));
    }
}
