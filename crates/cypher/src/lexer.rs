//! The lexer: source text → token stream.

use crate::error::CypherError;
use crate::token::{Token, TokenKind};

/// Tokenize a query string. Comments (`// …` and `/* … */`) are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, CypherError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CypherError::lex(pos, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    pos,
                });
                i += 1;
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    pos,
                });
                i += 1;
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    pos,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    pos,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    pos,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semicolon,
                    pos,
                });
                i += 1;
            }
            '|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    pos,
                });
                i += 1;
            }
            '^' => {
                tokens.push(Token {
                    kind: TokenKind::Caret,
                    pos,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Token {
                    kind: TokenKind::Colon,
                    pos,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    pos,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    pos,
                });
                i += 1;
            }
            '/' => {
                tokens.push(Token {
                    kind: TokenKind::Slash,
                    pos,
                });
                i += 1;
            }
            '+' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::PlusEq,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Plus,
                        pos,
                    });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token {
                        kind: TokenKind::ArrowRight,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Minus,
                        pos,
                    });
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'-') => {
                    tokens.push(Token {
                        kind: TokenKind::ArrowLeft,
                        pos,
                    });
                    i += 2;
                }
                Some(&b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        pos,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        pos,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        pos,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        pos,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    pos,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        pos,
                    });
                    i += 2;
                } else {
                    return Err(CypherError::lex(pos, "unexpected '!'"));
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    tokens.push(Token {
                        kind: TokenKind::DotDot,
                        pos,
                    });
                    i += 2;
                } else if bytes
                    .get(i + 1)
                    .map(|b| b.is_ascii_digit())
                    .unwrap_or(false)
                {
                    // .5 style float
                    let (tok, next) = lex_number(bytes, i)?;
                    tokens.push(Token { kind: tok, pos });
                    i = next;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        pos,
                    });
                    i += 1;
                }
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(CypherError::lex(pos, "expected parameter name after '$'"));
                }
                tokens.push(Token {
                    kind: TokenKind::Param(src[start..j].to_string()),
                    pos,
                });
                i = j;
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let mut j = i + 1;
                let mut out = String::new();
                loop {
                    if j >= bytes.len() {
                        return Err(CypherError::lex(pos, "unterminated string literal"));
                    }
                    let b = bytes[j];
                    if b == quote {
                        j += 1;
                        break;
                    }
                    if b == b'\\' {
                        j += 1;
                        match bytes.get(j) {
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'\'') => out.push('\''),
                            Some(b'"') => out.push('"'),
                            _ => return Err(CypherError::lex(j, "invalid escape sequence")),
                        }
                        j += 1;
                    } else {
                        // copy one UTF-8 character
                        let ch_len = utf8_len(b);
                        out.push_str(&src[j..j + ch_len]);
                        j += ch_len;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(out),
                    pos,
                });
                i = j;
            }
            '`' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'`' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(CypherError::lex(pos, "unterminated backtick identifier"));
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(src[start..j].to_string()),
                    pos,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(bytes, i)?;
                tokens.push(Token { kind: tok, pos });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                    j += 1;
                }
                let word = &src[start..j];
                tokens.push(Token {
                    kind: keyword_or_ident(word),
                    pos,
                });
                i = j;
            }
            other => {
                return Err(CypherError::lex(
                    pos,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        pos: bytes.len(),
    });
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    if first < 0x80 {
        1
    } else if first >> 5 == 0b110 {
        2
    } else if first >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

fn lex_number(bytes: &[u8], start: usize) -> Result<(TokenKind, usize), CypherError> {
    let mut j = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while j < bytes.len() {
        let b = bytes[j];
        if b.is_ascii_digit() {
            j += 1;
        } else if b == b'.' && !saw_dot && !saw_exp {
            // Don't consume `..` (range) or `.prop` (property access).
            if bytes
                .get(j + 1)
                .map(|n| n.is_ascii_digit())
                .unwrap_or(false)
            {
                saw_dot = true;
                j += 1;
            } else {
                break;
            }
        } else if (b == b'e' || b == b'E') && !saw_exp {
            let mut k = j + 1;
            if bytes.get(k) == Some(&b'+') || bytes.get(k) == Some(&b'-') {
                k += 1;
            }
            if bytes.get(k).map(|n| n.is_ascii_digit()).unwrap_or(false) {
                saw_exp = true;
                j = k + 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&bytes[start..j]).unwrap();
    if saw_dot || saw_exp {
        text.parse::<f64>()
            .map(|f| (TokenKind::Float(f), j))
            .map_err(|_| CypherError::lex(start, format!("invalid float literal '{text}'")))
    } else {
        text.parse::<i64>()
            .map(|i| (TokenKind::Int(i), j))
            .map_err(|_| CypherError::lex(start, format!("invalid integer literal '{text}'")))
    }
}

fn keyword_or_ident(word: &str) -> TokenKind {
    match word.to_ascii_uppercase().as_str() {
        "MATCH" => TokenKind::Match,
        "OPTIONAL" => TokenKind::Optional,
        "WHERE" => TokenKind::Where,
        "CREATE" => TokenKind::Create,
        "MERGE" => TokenKind::Merge,
        "DELETE" => TokenKind::Delete,
        "DETACH" => TokenKind::Detach,
        "SET" => TokenKind::Set,
        "REMOVE" => TokenKind::Remove,
        "RETURN" => TokenKind::Return,
        "WITH" => TokenKind::With,
        "UNWIND" => TokenKind::Unwind,
        "AS" => TokenKind::As,
        "ORDER" => TokenKind::Order,
        "BY" => TokenKind::By,
        "ASC" | "ASCENDING" => TokenKind::Asc,
        "DESC" | "DESCENDING" => TokenKind::Desc,
        "SKIP" => TokenKind::Skip,
        "LIMIT" => TokenKind::Limit,
        "DISTINCT" => TokenKind::Distinct,
        "AND" => TokenKind::And,
        "OR" => TokenKind::Or,
        "XOR" => TokenKind::Xor,
        "NOT" => TokenKind::Not,
        "IN" => TokenKind::In,
        "STARTS" => TokenKind::Starts,
        "ENDS" => TokenKind::Ends,
        "CONTAINS" => TokenKind::Contains,
        "IS" => TokenKind::Is,
        "NULL" => TokenKind::Null,
        "TRUE" => TokenKind::True,
        "FALSE" => TokenKind::False,
        "CASE" => TokenKind::Case,
        "WHEN" => TokenKind::When,
        "THEN" => TokenKind::Then,
        "ELSE" => TokenKind::Else,
        "END" => TokenKind::End,
        "EXISTS" => TokenKind::Exists,
        "FOREACH" => TokenKind::Foreach,
        "ON" => TokenKind::On,
        "ABORT" => TokenKind::Abort,
        _ => TokenKind::Ident(word.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("match MATCH Match"),
            vec![
                TokenKind::Match,
                TokenKind::Match,
                TokenKind::Match,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 .5 10..20"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.5),
                TokenKind::Int(10),
                TokenKind::DotDot,
                TokenKind::Int(20),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds(r#"'it\'s' "a\nb""#),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(
            kinds("'héllo→'"),
            vec![TokenKind::Str("héllo→".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn arrows_and_comparisons() {
        assert_eq!(
            kinds("-> <- <= >= <> != < > ="),
            vec![
                TokenKind::ArrowRight,
                TokenKind::ArrowLeft,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Neq,
                TokenKind::Neq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn params_and_backticks() {
        assert_eq!(
            kinds("$p `weird name`"),
            vec![
                TokenKind::Param("p".into()),
                TokenKind::Ident("weird name".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // line\n 2 /* block\n */ 3"),
            vec![
                TokenKind::Int(1),
                TokenKind::Int(2),
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn property_access_not_float() {
        assert_eq!(
            kinds("n.prop"),
            vec![
                TokenKind::Ident("n".into()),
                TokenKind::Dot,
                TokenKind::Ident("prop".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("$").is_err());
        assert!(lex("!x").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("héllo").is_err()); // non-ascii identifier start
    }

    #[test]
    fn plus_eq() {
        assert_eq!(
            kinds("n += m"),
            vec![
                TokenKind::Ident("n".into()),
                TokenKind::PlusEq,
                TokenKind::Ident("m".into()),
                TokenKind::Eof
            ]
        );
    }
}
