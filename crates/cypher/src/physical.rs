//! Physical planning: access paths **as data** (planner v4).
//!
//! Planner v3 chose access paths inline — `index_candidates` counted every
//! applicable probe and immediately materialized the winner, so the
//! decision itself was never observable. Planner v4 splits the two halves:
//!
//! * `choose_index_access` makes the count-only decision and returns a
//!   [`NodeAccess`] value — plain data naming the chosen probe and its
//!   cardinality estimate;
//! * `materialize_index_access` turns a chosen [`NodeAccess`] into the
//!   candidate vector.
//!
//! The matcher ([`crate::pattern`]) composes the two exactly as before
//! (same probes, same tie-breaks, same candidate sets), while `EXPLAIN`
//! and the batched executor inspect the decision without materializing
//! anything: `plan_node_access` / `plan_seed_access` are the fully
//! count-only variants used to annotate plans.
//!
//! **Join-output cardinality** (planner v4): [`expand_fanout`] estimates
//! the expected number of output rows per input row of a hop from the
//! per-(label, rel-type, direction) degree statistics maintained by
//! pg-graph ([`pg_graph::GraphView::degree_edge_count`]): the average
//! degree `edges / |label|` is exact at every instant, so a whole-extent
//! expansion estimate is exact and filtered expansions inherit only the
//! access path's estimation error. The join-order planner feeds these
//! fanouts into path costs (anchor cost + cumulative expected rows per
//! hop), and `EXPLAIN` prints estimated rows per operator next to the
//! actual rows observed during execution.

use crate::ast::{Expr, NodePattern, PathPattern};
use crate::expr::{eval, EvalCtx};
use crate::row::Row;
use pg_graph::{CompositeTrailing, Direction, NodeId, Value};
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;

use crate::pattern::Pushdowns;

/// Owned form of [`CompositeTrailing`]: the trailing bound of a composite
/// probe as assembled by the planner.
#[derive(Debug, Clone, PartialEq)]
pub enum TrailingOwned {
    None,
    Range(Bound<Value>, Bound<Value>),
    Prefix(String),
}

impl TrailingOwned {
    pub(crate) fn as_trailing(&self) -> CompositeTrailing<'_> {
        match self {
            TrailingOwned::None => CompositeTrailing::None,
            TrailingOwned::Range(lo, hi) => CompositeTrailing::Range(lo.as_ref(), hi.as_ref()),
            TrailingOwned::Prefix(p) => CompositeTrailing::Prefix(p),
        }
    }
}

/// The longest-equality-prefix probe a composite definition can serve from
/// the evaluated pushdowns: walk `def`'s columns collecting equality
/// values until the first column without one; that column may contribute
/// one trailing range or `STARTS WITH` bound. `None` when the definition
/// constrains nothing.
pub(crate) fn composite_probe_args(
    eqs: &HashMap<&str, Value>,
    intervals: &HashMap<String, (Bound<Value>, Bound<Value>)>,
    prefixes: &HashMap<&str, String>,
    def: &[String],
) -> Option<(Vec<Value>, TrailingOwned)> {
    let mut eq_vals: Vec<Value> = Vec::new();
    for col in def {
        if let Some(v) = eqs.get(col.as_str()) {
            eq_vals.push(v.clone());
            continue;
        }
        if let Some((lo, hi)) = intervals.get(col) {
            return Some((eq_vals, TrailingOwned::Range(lo.clone(), hi.clone())));
        }
        if let Some(p) = prefixes.get(col.as_str()) {
            return Some((eq_vals, TrailingOwned::Prefix(p.clone())));
        }
        break;
    }
    if eq_vals.is_empty() {
        None
    } else {
        Some((eq_vals, TrailingOwned::None))
    }
}

/// The tightest closed intervals derivable from a variable's `<`/`<=`/
/// `>`/`>=` conjuncts, per property key.
pub(crate) enum Intervals {
    /// Some conjunct can never be truthy (NULL/NaN operand) — the
    /// candidate set is definitively empty.
    Never,
    /// Per-key `(lower, upper)` bounds (possibly unbounded on one side).
    Bounds(HashMap<String, (Bound<Value>, Bound<Value>)>),
}

/// Replace `slot` when `value` tightens it: a greater lower bound /
/// smaller upper bound wins, and at equal values an exclusive bound beats
/// an inclusive one.
fn tighten(slot: &mut Bound<Value>, value: Value, inclusive: bool, lower: bool) {
    use std::cmp::Ordering;
    let replaces = match &*slot {
        Bound::Unbounded => true,
        Bound::Included(c) | Bound::Excluded(c) => {
            let ord = value.cmp_order(c);
            if lower {
                ord != Ordering::Less
            } else {
                ord != Ordering::Greater
            }
        }
    };
    if !replaces {
        return;
    }
    let stay_exclusive =
        matches!(&*slot, Bound::Excluded(c) if value.cmp_order(c) == std::cmp::Ordering::Equal);
    *slot = if inclusive && !stay_exclusive {
        Bound::Included(value)
    } else {
        Bound::Excluded(value)
    };
}

/// Combine a variable's ordering conjuncts into per-key intervals. A NULL
/// or NaN operand makes its conjunct untruthy for every row
/// ([`Intervals::Never`]); an operand that cannot be evaluated yet (it
/// references a variable bound later) merely skips the conjunct — the
/// predicate itself is still enforced by the `WHERE` evaluation.
pub(crate) fn build_intervals(
    ctx: &EvalCtx<'_>,
    row: &Row,
    ranges: &[(String, crate::ast::BinOp, Expr)],
) -> Intervals {
    use crate::ast::BinOp;
    let mut intervals: HashMap<String, (Bound<Value>, Bound<Value>)> = HashMap::new();
    for (key, op, expr) in ranges {
        let Ok(value) = eval(ctx, row, expr) else {
            continue;
        };
        if value.is_null() || matches!(&value, Value::Float(f) if f.is_nan()) {
            return Intervals::Never;
        }
        let entry = intervals
            .entry(key.clone())
            .or_insert((Bound::Unbounded, Bound::Unbounded));
        match op {
            BinOp::Gt | BinOp::Ge => tighten(&mut entry.0, value, *op == BinOp::Ge, true),
            BinOp::Lt | BinOp::Le => tighten(&mut entry.1, value, *op == BinOp::Le, false),
            _ => {}
        }
    }
    Intervals::Bounds(intervals)
}

// ---------------------------------------------------------------------
// Node access paths as data
// ---------------------------------------------------------------------

/// A node pattern's chosen access path — the physical half of planner v4,
/// inspectable by `EXPLAIN` and executable by `materialize_index_access`
/// (index-backed variants) or the matcher's extent paths.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeAccess {
    /// The variable is already bound in the row: one candidate.
    BoundVar(String),
    /// A transition-variable label (`NEW`, `NEWNODES`, …) restricts
    /// candidates to the bound item(s).
    Transition(String),
    /// A pushed conjunct can never be truthy: definitively empty.
    Empty,
    /// Single-key equality probe of the `(label, key)` index.
    IndexEq {
        label: String,
        key: String,
        value: Value,
    },
    /// Ordered range scan of the `(label, key)` index.
    IndexRange {
        label: String,
        key: String,
        lo: Bound<Value>,
        hi: Bound<Value>,
    },
    /// `STARTS WITH` prefix scan of the `(label, key)` index.
    IndexPrefix {
        label: String,
        key: String,
        prefix: String,
    },
    /// Composite probe: equality on the definition's leading columns plus
    /// at most one trailing range/prefix bound.
    Composite {
        label: String,
        columns: Vec<String>,
        eq: Vec<Value>,
        trailing: TrailingOwned,
    },
    /// Intersection of label extents, enumerated from the smallest.
    LabelScan { labels: Vec<String> },
    /// Unconstrained: every node.
    AllNodes,
}

impl fmt::Display for NodeAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAccess::BoundVar(v) => write!(f, "BoundVar({v})"),
            NodeAccess::Transition(l) => write!(f, "Transition({l})"),
            NodeAccess::Empty => write!(f, "Empty"),
            NodeAccess::IndexEq { label, key, .. } => write!(f, "IndexEq({label}.{key})"),
            NodeAccess::IndexRange { label, key, .. } => write!(f, "IndexRange({label}.{key})"),
            NodeAccess::IndexPrefix { label, key, .. } => write!(f, "IndexPrefix({label}.{key})"),
            NodeAccess::Composite { label, columns, .. } => {
                write!(f, "CompositeProbe({label}[{}])", columns.join(","))
            }
            NodeAccess::LabelScan { labels } => write!(f, "LabelScan({})", labels.join("&")),
            NodeAccess::AllNodes => write!(f, "AllNodes"),
        }
    }
}

/// The best index-backed access path for a node pattern, chosen **count-
/// only**: from inline `{key: value}` properties plus pushed-down `WHERE`
/// equality, range and prefix conjuncts on this pattern's variable, tried
/// against every label's single-key and composite indexes. Every probe is
/// counted (O(log n) / histogram); nothing is materialized. An evaluation
/// failure (e.g. the value refers to a variable bound later) merely
/// disqualifies the path — the predicate itself is still enforced by
/// `node_matches` / the WHERE clause.
///
/// Returns `Some((access, estimate))` when some index answered —
/// [`NodeAccess::Empty`] with estimate 0 when a pushed conjunct proves the
/// candidate set empty — and `None` when no index path applies.
pub(crate) fn choose_index_access(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> Option<(NodeAccess, usize)> {
    let preds = np.var.as_ref().and_then(|v| pushed.get(v));
    let mut probes: Vec<NodeAccess> = Vec::new();

    // Equality: inline property maps and pushed `var.key = e` conjuncts.
    let pushed_eqs = preds.map(|p| p.eqs.as_slice()).unwrap_or(&[]);
    let mut eval_eqs: HashMap<&str, Value> = HashMap::new();
    for (key, value_expr) in np.props.iter().chain(pushed_eqs) {
        let Ok(value) = eval(ctx, row, value_expr) else {
            continue;
        };
        for label in &np.labels {
            probes.push(NodeAccess::IndexEq {
                label: label.clone(),
                key: key.clone(),
                value: value.clone(),
            });
        }
        eval_eqs.entry(key.as_str()).or_insert(value);
    }

    let mut intervals: HashMap<String, (Bound<Value>, Bound<Value>)> = HashMap::new();
    let mut prefix_vals: HashMap<&str, String> = HashMap::new();
    if let Some(preds) = preds {
        // Ranges: combine this variable's `<`/`<=`/`>`/`>=` conjuncts per
        // key into the tightest closed interval. A NULL or NaN operand
        // makes the conjunct untruthy for every row — the candidate set is
        // definitively empty, no index required.
        intervals = match build_intervals(ctx, row, &preds.ranges) {
            Intervals::Never => return Some((NodeAccess::Empty, 0)),
            Intervals::Bounds(b) => b,
        };
        for (key, (lo, hi)) in &intervals {
            for label in &np.labels {
                probes.push(NodeAccess::IndexRange {
                    label: label.clone(),
                    key: key.clone(),
                    lo: lo.clone(),
                    hi: hi.clone(),
                });
            }
        }

        // Prefixes: `var.key STARTS WITH e`. A non-string operand can
        // never make the conjunct truthy.
        for (key, expr) in &preds.prefixes {
            let Ok(value) = eval(ctx, row, expr) else {
                continue;
            };
            match &value {
                Value::Str(prefix) => {
                    for label in &np.labels {
                        probes.push(NodeAccess::IndexPrefix {
                            label: label.clone(),
                            key: key.clone(),
                            prefix: prefix.clone(),
                        });
                    }
                    prefix_vals.entry(key.as_str()).or_insert(prefix.clone());
                }
                _ => return Some((NodeAccess::Empty, 0)),
            }
        }
    }

    // Composite probes: the longest equality prefix of each definition
    // plus one trailing range/prefix bound. Added after the single-key
    // probes so a composite path only wins when *strictly* more selective.
    for label in &np.labels {
        for def in ctx.view.node_composite_defs(label) {
            if let Some((eq, trailing)) =
                composite_probe_args(&eval_eqs, &intervals, &prefix_vals, &def)
            {
                probes.push(NodeAccess::Composite {
                    label: label.clone(),
                    columns: def,
                    eq,
                    trailing,
                });
            }
        }
    }

    // Count every probe; keep the most selective answerable one.
    let mut best: Option<(usize, usize)> = None; // (probe idx, estimate)
    for (i, probe) in probes.iter().enumerate() {
        let count = count_access(ctx, probe);
        if let Some(c) = count {
            if best.is_none_or(|(_, b)| c < b) {
                best = Some((i, c));
            }
        }
    }
    let (winner, est) = best?;
    Some((probes.swap_remove(winner), est))
}

/// The count-only cardinality of an index-backed access path; `None` when
/// no index serves it.
pub(crate) fn count_access(ctx: &EvalCtx<'_>, access: &NodeAccess) -> Option<usize> {
    match access {
        NodeAccess::IndexEq { label, key, value } => {
            ctx.view.count_nodes_with_prop(label, key, value)
        }
        NodeAccess::IndexRange { label, key, lo, hi } => {
            ctx.view
                .count_nodes_in_prop_range(label, key, lo.as_ref(), hi.as_ref())
        }
        NodeAccess::IndexPrefix { label, key, prefix } => {
            ctx.view.count_nodes_with_prop_prefix(label, key, prefix)
        }
        NodeAccess::Composite {
            label,
            columns,
            eq,
            trailing,
        } => ctx
            .view
            .count_nodes_with_composite(label, columns, eq, trailing.as_trailing()),
        NodeAccess::Empty => Some(0),
        _ => None,
    }
}

/// Materialize a chosen index-backed access path into its candidate
/// vector. `None` when the index cannot serve it after all (dropped
/// between choice and materialization — cannot happen within one
/// statement, but the contract stays total).
pub(crate) fn materialize_index_access(
    ctx: &EvalCtx<'_>,
    access: &NodeAccess,
) -> Option<Vec<NodeId>> {
    match access {
        NodeAccess::IndexEq { label, key, value } => ctx.view.nodes_with_prop(label, key, value),
        NodeAccess::IndexRange { label, key, lo, hi } => {
            ctx.view
                .nodes_in_prop_range(label, key, lo.as_ref(), hi.as_ref())
        }
        NodeAccess::IndexPrefix { label, key, prefix } => {
            ctx.view.nodes_with_prop_prefix(label, key, prefix)
        }
        NodeAccess::Composite {
            label,
            columns,
            eq,
            trailing,
        } => ctx
            .view
            .nodes_with_composite(label, columns, eq, trailing.as_trailing()),
        NodeAccess::Empty => Some(Vec::new()),
        _ => None,
    }
}

/// The fully count-only access decision for a node pattern — what
/// [`crate::pattern`]'s `node_candidates` will pick, as data, with its
/// cardinality estimate. Used by `EXPLAIN` and by the batched executor's
/// seed stage; never materializes a candidate vector.
pub(crate) fn plan_node_access(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> (NodeAccess, usize) {
    if let Some(v) = &np.var {
        if row.contains(v) {
            return (NodeAccess::BoundVar(v.clone()), 1);
        }
    }
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            let n = match v {
                Value::List(items) => items.len(),
                _ => 1,
            };
            return (NodeAccess::Transition(l.clone()), n);
        }
    }
    let best_index = choose_index_access(ctx, row, np, pushed);
    let mut label_cards: Vec<(&String, usize)> = np
        .labels
        .iter()
        .map(|l| (l, ctx.view.label_cardinality(l)))
        .collect();
    label_cards.sort_by_key(|(_, c)| *c);
    match (best_index, label_cards.first().map(|(_, c)| *c)) {
        (Some((acc, est)), Some(lc)) if est <= lc => (acc, est),
        (Some((acc, est)), None) => (acc, est),
        (_, Some(lc)) => (
            NodeAccess::LabelScan {
                labels: label_cards.iter().map(|(l, _)| (*l).clone()).collect(),
            },
            lc,
        ),
        (None, None) => (NodeAccess::AllNodes, ctx.view.node_count_estimate().max(1)),
    }
}

// ---------------------------------------------------------------------
// Intra-query parallelism decision (morsel-driven execution)
// ---------------------------------------------------------------------

/// Seeds per morsel. Each morsel is one `run_group` call: large enough
/// that the per-morsel overhead (recomputing the shared seed-candidate
/// vector, a fresh memo table) amortizes, small enough that a skewed
/// group still splits into many work units for the queue to balance.
pub const MORSEL_SIZE: usize = 64;

/// Minimum **estimated join-output rows** of a plan-equal seed group
/// before it morselizes. Below this, thread spawn + snapshot pinning +
/// per-morsel re-derivation costs more than the matching itself; the
/// estimate comes from the same degree-statistics fanout model the join
/// planner uses, so the decision is inspectable via `EXPLAIN`.
pub const PARALLEL_ROW_THRESHOLD: f64 = 4096.0;

/// Why a `MATCH` runs serially — the documented decline catalog of the
/// morsel-driven executor, rendered by `EXPLAIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelDecline {
    /// A variable-length segment is in the plan: its DFS interleaves
    /// depths, so the group already falls back to the reference matcher
    /// per seed and has no batch to split.
    VarLength,
    /// A single seed row — no seed axis to partition along.
    SingletonSeed,
    /// Estimated join-output rows below [`PARALLEL_ROW_THRESHOLD`].
    BelowThreshold,
    /// The view cannot pin a `Send + Sync` state (overlay views:
    /// pre-state reconstruction, trigger condition evaluation).
    NoParallelView,
}

impl ParallelDecline {
    /// Stable kebab-case rule name, for `EXPLAIN` and logs.
    pub fn rule(&self) -> &'static str {
        match self {
            ParallelDecline::VarLength => "var-length",
            ParallelDecline::SingletonSeed => "singleton-seed",
            ParallelDecline::BelowThreshold => "below-threshold",
            ParallelDecline::NoParallelView => "no-parallel-view",
        }
    }
}

impl fmt::Display for ParallelDecline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.rule())
    }
}

/// The parallelism decision for one plan-equal seed group (or, in
/// `EXPLAIN`, for a whole `MATCH` clause planned from estimates).
#[derive(Debug, Clone, PartialEq)]
pub enum ParallelPlan {
    /// Morselize: split the group into `morsels` seed chunks of
    /// [`MORSEL_SIZE`] and drain them through a shared work queue with
    /// `degree` workers. `degree == 1` still morselizes (same chunk
    /// boundaries, run inline on the caller's thread), so row order
    /// *and* index-probe totals are identical for every thread count.
    Parallel {
        degree: usize,
        morsels: usize,
        est_rows: f64,
    },
    /// Run the group through the ordinary serial batch path.
    Serial(ParallelDecline),
}

/// Decide whether a plan-equal seed group morselizes.
///
/// The morselize-or-not half of the decision is **thread-count
/// independent** — it looks only at the group shape and the cost
/// estimate — so the set of morsel boundaries (and therefore the result
/// rows, their order, and the index-probe totals) cannot vary with
/// `PG_THREADS` or the machine. `threads` only clamps the worker
/// `degree`, which affects scheduling alone. The degree also never
/// exceeds the morsel count (idle workers are pure overhead) or the
/// cost-derived width `est_rows / PARALLEL_ROW_THRESHOLD` (one
/// threshold's worth of estimated output per worker).
pub fn plan_parallelism(
    group_len: usize,
    var_length: bool,
    est_rows: f64,
    pinnable: bool,
    threads: usize,
    threshold: f64,
) -> ParallelPlan {
    if var_length {
        return ParallelPlan::Serial(ParallelDecline::VarLength);
    }
    if group_len <= 1 {
        return ParallelPlan::Serial(ParallelDecline::SingletonSeed);
    }
    // NaN estimates fall through to the decline: only a comparison that
    // positively says "at or above the threshold" proceeds.
    let at_or_above = matches!(
        est_rows.partial_cmp(&threshold),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    );
    if !at_or_above {
        return ParallelPlan::Serial(ParallelDecline::BelowThreshold);
    }
    if !pinnable {
        return ParallelPlan::Serial(ParallelDecline::NoParallelView);
    }
    let morsels = group_len.div_ceil(MORSEL_SIZE);
    let cost_width = (est_rows / threshold) as usize;
    let degree = cost_width.clamp(1, threads.max(1)).min(morsels);
    ParallelPlan::Parallel {
        degree,
        morsels,
        est_rows,
    }
}

// ---------------------------------------------------------------------
// Join-output cardinality from degree statistics
// ---------------------------------------------------------------------

/// Expected output rows **per input row** of a hop expansion, from the
/// per-(label, rel-type, direction) degree statistics: the average degree
/// `edges / |label|` of the hop's *source* pattern, minimized over the
/// source's labels (all labels must hold) and summed over the hop's types
/// (any type matches). `None` when the source has no stored label or the
/// hop no type — no statistic applies and the planner falls back to
/// access-path-only costing for that hop.
///
/// Both numerator and denominator are exact at every instant (pg-graph
/// maintains them through every mutation and undo path), so a
/// whole-extent expansion estimate is exact; filtered sources inherit
/// only the seed estimate's error.
pub fn expand_fanout(
    ctx: &EvalCtx<'_>,
    src_labels: &[String],
    rel_types: &[String],
    dir: Direction,
) -> Option<f64> {
    if src_labels.is_empty() || rel_types.is_empty() {
        return None;
    }
    let mut best: Option<f64> = None;
    for label in src_labels {
        let card = ctx.view.label_cardinality(label);
        let mut edges = 0usize;
        for t in rel_types {
            edges += ctx.view.degree_edge_count(label, t, dir)?;
        }
        let avg = if card == 0 {
            0.0
        } else {
            edges as f64 / card as f64
        };
        if best.is_none_or(|b| avg < b) {
            best = Some(avg);
        }
    }
    best
}

/// One hop of a physically-planned path: its estimated fanout and the
/// cumulative expected rows after the hop.
#[derive(Debug, Clone)]
pub struct PhysicalHop {
    /// `-[:T]->`-style rendering of the hop (direction + types + target).
    pub repr: String,
    /// Expected output rows per input row; `None` = no statistic applies.
    pub fanout: Option<f64>,
    /// Expected rows after this hop.
    pub est_rows: f64,
}

/// One planned path: the seed access path plus its hops, with estimates.
#[derive(Debug, Clone)]
pub struct PhysicalPathPlan {
    /// The variable (or `_`) of the seed position.
    pub seed_var: String,
    pub seed: NodeAccess,
    pub seed_est: usize,
    pub hops: Vec<PhysicalHop>,
}

impl PhysicalPathPlan {
    /// Expected rows after the whole path.
    pub fn est_rows(&self) -> f64 {
        self.hops
            .last()
            .map(|h| h.est_rows)
            .unwrap_or(self.seed_est as f64)
    }
}

/// Physically annotate one already-ordered path (as produced by the join-
/// order planner): the seed access decision plus per-hop fanout estimates.
pub(crate) fn plan_path(
    ctx: &EvalCtx<'_>,
    row: &Row,
    path: &PathPattern,
    pushed: &Pushdowns,
    label_hints: &HashMap<String, Vec<String>>,
) -> PhysicalPathPlan {
    let (seed, seed_est) = plan_node_access(ctx, row, &path.start, pushed);
    let mut hops = Vec::with_capacity(path.segments.len());
    let mut rows = seed_est as f64;
    let mut src = &path.start;
    for (rp, np) in &path.segments {
        // An unlabeled source position (typically a variable bound by an
        // earlier clause) falls back to the label its binder declared.
        let src_labels: &[String] = if src.labels.is_empty() {
            src.var
                .as_ref()
                .and_then(|v| label_hints.get(v))
                .map(|l| l.as_slice())
                .unwrap_or(&[])
        } else {
            &src.labels
        };
        let fanout = if rp.hops.is_some() {
            None // variable-length: no per-hop statistic
        } else {
            expand_fanout(ctx, src_labels, &rp.types, rp.direction)
        };
        rows *= fanout.unwrap_or(1.0);
        let arrow = match rp.direction {
            Direction::Out => ("-", "->"),
            Direction::In => ("<-", "-"),
            Direction::Both => ("-", "-"),
        };
        let types = if rp.types.is_empty() {
            String::new()
        } else {
            format!(":{}", rp.types.join("|"))
        };
        let target = np.var.clone().unwrap_or_else(|| "_".into());
        let tlabels = if np.labels.is_empty() {
            String::new()
        } else {
            format!(":{}", np.labels.join(":"))
        };
        hops.push(PhysicalHop {
            repr: format!("{}[{}]{}({}{})", arrow.0, types, arrow.1, target, tlabels),
            fanout,
            est_rows: rows,
        });
        src = np;
    }
    PhysicalPathPlan {
        seed_var: path.start.var.clone().unwrap_or_else(|| "_".into()),
        seed,
        seed_est,
        hops,
    }
}
