//! Tokens produced by the lexer.

use std::fmt;

/// A lexical token with its source position (byte offset) for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: usize,
}

/// Token kinds. Keywords are recognized case-insensitively by the lexer and
/// normalized here; identifiers preserve their original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // literals & names
    Ident(String),
    /// `'...'` or `"..."` string literal (escapes resolved).
    Str(String),
    Int(i64),
    Float(f64),
    /// `$name` query parameter.
    Param(String),

    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Dot,
    DotDot,
    Colon,
    Semicolon,
    Pipe,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Caret,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    PlusEq,
    /// `->` arrow head.
    ArrowRight,
    /// `<-` arrow tail.
    ArrowLeft,

    // keywords (upper-cased canonical spelling)
    Match,
    Optional,
    Where,
    Create,
    Merge,
    Delete,
    Detach,
    Set,
    Remove,
    Return,
    With,
    Unwind,
    As,
    Order,
    By,
    Asc,
    Desc,
    Skip,
    Limit,
    Distinct,
    And,
    Or,
    Xor,
    Not,
    In,
    Starts,
    Ends,
    Contains,
    Is,
    Null,
    True,
    False,
    Case,
    When,
    Then,
    Else,
    End,
    Exists,
    Foreach,
    On,
    Abort,

    Eof,
}

impl TokenKind {
    /// The identifier text, when this token can serve as a name. Most
    /// keywords double as identifiers in property/label position (Cypher is
    /// permissive there: `n.end`, `:Case` are legal).
    pub fn as_name(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            TokenKind::Match => Some("match"),
            TokenKind::Optional => Some("optional"),
            TokenKind::Where => Some("where"),
            TokenKind::Create => Some("create"),
            TokenKind::Merge => Some("merge"),
            TokenKind::Delete => Some("delete"),
            TokenKind::Detach => Some("detach"),
            TokenKind::Set => Some("set"),
            TokenKind::Remove => Some("remove"),
            TokenKind::Return => Some("return"),
            TokenKind::With => Some("with"),
            TokenKind::Unwind => Some("unwind"),
            TokenKind::As => Some("as"),
            TokenKind::Order => Some("order"),
            TokenKind::By => Some("by"),
            TokenKind::Asc => Some("asc"),
            TokenKind::Desc => Some("desc"),
            TokenKind::Skip => Some("skip"),
            TokenKind::Limit => Some("limit"),
            TokenKind::Distinct => Some("distinct"),
            TokenKind::Contains => Some("contains"),
            TokenKind::Case => Some("case"),
            TokenKind::When => Some("when"),
            TokenKind::Then => Some("then"),
            TokenKind::Else => Some("else"),
            TokenKind::End => Some("end"),
            TokenKind::Exists => Some("exists"),
            TokenKind::Foreach => Some("foreach"),
            TokenKind::On => Some("on"),
            TokenKind::Abort => Some("abort"),
            TokenKind::Starts => Some("starts"),
            TokenKind::Ends => Some("ends"),
            TokenKind::Is => Some("is"),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Param(p) => write!(f, "${p}"),
            other => write!(f, "{other:?}"),
        }
    }
}
