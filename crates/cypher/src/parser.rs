//! Recursive-descent parser for the Cypher subset.
//!
//! Two entry points matter to the trigger layer:
//! * [`parse_query`] — strict parsing of a full query;
//! * [`parse_query_lenient`] — "paper mode", additionally tolerating the
//!   block punctuation used in the PG-Triggers paper's example statements
//!   (`THEN`, nested `BEGIN … END`) by treating `THEN`/`BEGIN` as clause
//!   separators and `END` as a terminator.

use crate::ast::*;
use crate::error::{CypherError, Result};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use pg_graph::{Direction, Value};

/// Parse a query string into an AST.
pub fn parse_query(src: &str) -> Result<Query> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens, false);
    let clauses = p.parse_clauses()?;
    p.expect_eof()?;
    Ok(Query { clauses })
}

/// Parse in lenient (paper-compatible) mode; see module docs.
pub fn parse_query_lenient(src: &str) -> Result<Query> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens, true);
    let clauses = p.parse_clauses()?;
    p.expect_eof_or_end()?;
    Ok(Query { clauses })
}

/// If `src` is an `EXPLAIN <query>` statement, return the `<query>` part
/// (with the keyword stripped); `None` otherwise. The keyword must be
/// followed by whitespace — `EXPLAINED` is not an `EXPLAIN`.
pub fn strip_explain(src: &str) -> Option<&str> {
    let t = src.trim_start();
    let head = t.get(..7)?;
    if !head.eq_ignore_ascii_case("EXPLAIN") {
        return None;
    }
    let rest = &t[7..];
    if !rest.starts_with(|c: char| c.is_whitespace()) {
        return None;
    }
    Some(rest.trim_start())
}

/// Parse a standalone expression (trigger `WHEN` predicates).
pub fn parse_expression(src: &str) -> Result<Expr> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens, false);
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    lenient: bool,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>, lenient: bool) -> Self {
        Parser {
            tokens,
            pos: 0,
            lenient,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, offset: usize) -> &TokenKind {
        let i = (self.pos + offset).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<()> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(CypherError::parse(
                self.peek_pos(),
                format!("expected {kind}, found {}", self.peek()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        self.eat(&TokenKind::Semicolon);
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(CypherError::parse(
                self.peek_pos(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    fn expect_eof_or_end(&mut self) -> Result<()> {
        while matches!(self.peek(), TokenKind::End | TokenKind::Semicolon) {
            self.bump();
        }
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(CypherError::parse(
                self.peek_pos(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    /// A name in identifier position (labels, properties, aliases): plain
    /// identifiers plus keywords that commonly double as names.
    fn expect_name(&mut self) -> Result<String> {
        if let Some(name) = self.peek().as_name() {
            let name = name.to_string();
            // Preserve original spelling for Ident, canonical for keywords.
            let out = if let TokenKind::Ident(s) = self.peek() {
                s.clone()
            } else {
                name
            };
            self.bump();
            Ok(out)
        } else if let TokenKind::Str(s) = self.peek() {
            // The paper quotes labels in the ON clause ('Mutation'); allow
            // string literals in name position for symmetry.
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            Err(CypherError::parse(
                self.peek_pos(),
                format!("expected a name, found {}", self.peek()),
            ))
        }
    }

    // ------------------------------------------------------------------
    // Clauses
    // ------------------------------------------------------------------

    pub(crate) fn parse_clauses(&mut self) -> Result<Vec<Clause>> {
        let mut clauses = Vec::new();
        loop {
            if self.lenient {
                // Paper mode: THEN and BEGIN act as separators.
                loop {
                    let separator = self.peek() == &TokenKind::Then
                        || matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("begin"));
                    if separator {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            match self.peek() {
                TokenKind::Eof | TokenKind::RBrace | TokenKind::RParen | TokenKind::Semicolon => {
                    break
                }
                TokenKind::End if self.lenient => break,
                _ => {}
            }
            clauses.push(self.parse_clause()?);
        }
        Ok(clauses)
    }

    fn parse_clause(&mut self) -> Result<Clause> {
        match self.peek().clone() {
            TokenKind::Match => {
                self.bump();
                self.parse_match(false)
            }
            TokenKind::Optional => {
                self.bump();
                self.expect(TokenKind::Match)?;
                self.parse_match(true)
            }
            TokenKind::Create => {
                self.bump();
                let patterns = self.parse_pattern_list(false)?;
                Ok(Clause::Create { patterns })
            }
            TokenKind::Merge => {
                self.bump();
                let pattern = self.parse_path_pattern()?;
                let mut on_create = Vec::new();
                let mut on_match = Vec::new();
                while self.peek() == &TokenKind::On {
                    self.bump();
                    match self.bump() {
                        TokenKind::Create => {
                            self.expect(TokenKind::Set)?;
                            on_create.extend(self.parse_set_items()?);
                        }
                        TokenKind::Match => {
                            self.expect(TokenKind::Set)?;
                            on_match.extend(self.parse_set_items()?);
                        }
                        other => {
                            return Err(CypherError::parse(
                                self.peek_pos(),
                                format!("expected CREATE or MATCH after ON, found {other}"),
                            ))
                        }
                    }
                }
                Ok(Clause::Merge {
                    pattern,
                    on_create,
                    on_match,
                })
            }
            TokenKind::Detach => {
                self.bump();
                self.expect(TokenKind::Delete)?;
                Ok(Clause::Delete {
                    detach: true,
                    exprs: self.parse_expr_list()?,
                })
            }
            TokenKind::Delete => {
                self.bump();
                Ok(Clause::Delete {
                    detach: false,
                    exprs: self.parse_expr_list()?,
                })
            }
            TokenKind::Set => {
                self.bump();
                Ok(Clause::Set {
                    items: self.parse_set_items()?,
                })
            }
            TokenKind::Remove => {
                self.bump();
                Ok(Clause::Remove {
                    items: self.parse_remove_items()?,
                })
            }
            TokenKind::With => {
                self.bump();
                Ok(Clause::With(self.parse_projection(true)?))
            }
            TokenKind::Return => {
                self.bump();
                Ok(Clause::Return(self.parse_projection(false)?))
            }
            TokenKind::Unwind => {
                self.bump();
                let expr = self.parse_expr()?;
                self.expect(TokenKind::As)?;
                let alias = self.expect_name()?;
                Ok(Clause::Unwind { expr, alias })
            }
            TokenKind::Foreach => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let var = self.expect_name()?;
                self.expect(TokenKind::In)?;
                let list = self.parse_expr()?;
                let body = if self.eat(&TokenKind::Pipe) {
                    let body = self.parse_clauses()?;
                    self.expect(TokenKind::RParen)?;
                    body
                } else {
                    // Paper style: FOREACH (p IN pn) BEGIN … END
                    self.expect(TokenKind::RParen)?;
                    if matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case("begin"))
                    {
                        self.bump();
                        let mut body = Vec::new();
                        while self.peek() != &TokenKind::End && self.peek() != &TokenKind::Eof {
                            body.push(self.parse_clause()?);
                        }
                        self.expect(TokenKind::End)?;
                        body
                    } else {
                        return Err(CypherError::parse(
                            self.peek_pos(),
                            "expected '|' or BEGIN in FOREACH",
                        ));
                    }
                };
                Ok(Clause::Foreach { var, list, body })
            }
            TokenKind::Where => {
                self.bump();
                Ok(Clause::Where(self.parse_expr()?))
            }
            TokenKind::Abort => {
                self.bump();
                Ok(Clause::Abort(self.parse_expr()?))
            }
            other => Err(CypherError::parse(
                self.peek_pos(),
                format!("expected a clause, found {other}"),
            )),
        }
    }

    fn parse_match(&mut self, optional: bool) -> Result<Clause> {
        let patterns = self.parse_pattern_list(true)?;
        let where_clause = if self.eat(&TokenKind::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Clause::Match {
            optional,
            patterns,
            where_clause,
        })
    }

    fn parse_expr_list(&mut self) -> Result<Vec<Expr>> {
        let mut exprs = vec![self.parse_expr()?];
        while self.eat(&TokenKind::Comma) {
            exprs.push(self.parse_expr()?);
        }
        Ok(exprs)
    }

    fn parse_set_items(&mut self) -> Result<Vec<SetItem>> {
        let mut items = vec![self.parse_set_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.parse_set_item()?);
        }
        Ok(items)
    }

    fn parse_set_item(&mut self) -> Result<SetItem> {
        let var = self.expect_name()?;
        match self.peek().clone() {
            TokenKind::Dot => {
                // n.key = expr (possibly a chained path: treat base as var)
                self.bump();
                let key = self.expect_name()?;
                self.expect(TokenKind::Eq)?;
                let value = self.parse_expr()?;
                Ok(SetItem::Prop {
                    target: Expr::Var(var),
                    key,
                    value,
                })
            }
            TokenKind::Colon => {
                let mut labels = Vec::new();
                while self.eat(&TokenKind::Colon) {
                    labels.push(self.expect_name()?);
                }
                Ok(SetItem::Labels { var, labels })
            }
            TokenKind::Eq => {
                self.bump();
                let value = self.parse_expr()?;
                Ok(SetItem::ReplaceProps { var, value })
            }
            TokenKind::PlusEq => {
                self.bump();
                let value = self.parse_expr()?;
                Ok(SetItem::MergeProps { var, value })
            }
            other => Err(CypherError::parse(
                self.peek_pos(),
                format!("invalid SET item after '{var}': {other}"),
            )),
        }
    }

    fn parse_remove_items(&mut self) -> Result<Vec<RemoveItem>> {
        let mut items = Vec::new();
        loop {
            let var = self.expect_name()?;
            if self.eat(&TokenKind::Dot) {
                let key = self.expect_name()?;
                items.push(RemoveItem::Prop {
                    target: Expr::Var(var),
                    key,
                });
            } else if self.peek() == &TokenKind::Colon {
                let mut labels = Vec::new();
                while self.eat(&TokenKind::Colon) {
                    labels.push(self.expect_name()?);
                }
                items.push(RemoveItem::Labels { var, labels });
            } else {
                return Err(CypherError::parse(
                    self.peek_pos(),
                    "expected '.prop' or ':Label' in REMOVE",
                ));
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_projection(&mut self, allow_where: bool) -> Result<Projection> {
        let distinct = self.eat(&TokenKind::Distinct);
        let mut star = false;
        let mut items = Vec::new();
        if self.eat(&TokenKind::Star) {
            star = true;
            if self.eat(&TokenKind::Comma) {
                items = self.parse_proj_items()?;
            }
        } else {
            items = self.parse_proj_items()?;
        }
        let mut order_by = Vec::new();
        let mut skip = None;
        let mut limit = None;
        let mut where_clause = None;
        loop {
            match self.peek() {
                TokenKind::Order => {
                    self.bump();
                    self.expect(TokenKind::By)?;
                    loop {
                        let key = self.parse_expr()?;
                        let asc = if self.eat(&TokenKind::Desc) {
                            false
                        } else {
                            self.eat(&TokenKind::Asc);
                            true
                        };
                        order_by.push((key, asc));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                TokenKind::Skip => {
                    self.bump();
                    skip = Some(self.parse_expr()?);
                }
                TokenKind::Limit => {
                    self.bump();
                    limit = Some(self.parse_expr()?);
                }
                TokenKind::Where if allow_where && where_clause.is_none() => {
                    self.bump();
                    where_clause = Some(self.parse_expr()?);
                }
                _ => break,
            }
        }
        Ok(Projection {
            distinct,
            items,
            star,
            order_by,
            skip,
            limit,
            where_clause,
        })
    }

    fn parse_proj_items(&mut self) -> Result<Vec<ProjItem>> {
        let mut items = Vec::new();
        loop {
            let expr = self.parse_expr()?;
            let alias = if self.eat(&TokenKind::As) {
                Some(self.expect_name()?)
            } else {
                None
            };
            items.push(ProjItem { expr, alias });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    // ------------------------------------------------------------------
    // Patterns
    // ------------------------------------------------------------------

    /// Parse comma-separated path patterns. In MATCH position the paper
    /// writes `MATCH (a), MATCH (b)`: the repeated keyword starts a **new
    /// MATCH clause** (its own relationship-uniqueness scope, exactly as in
    /// Cypher), so we consume the comma and leave the `MATCH` for the
    /// clause loop.
    fn parse_pattern_list(&mut self, in_match: bool) -> Result<Vec<PathPattern>> {
        let mut patterns = vec![self.parse_path_pattern()?];
        while self.peek() == &TokenKind::Comma {
            if in_match && self.peek_at(1) == &TokenKind::Match {
                self.bump(); // the comma; the clause loop sees MATCH next
                break;
            }
            self.bump();
            patterns.push(self.parse_path_pattern()?);
        }
        Ok(patterns)
    }

    pub(crate) fn parse_path_pattern(&mut self) -> Result<PathPattern> {
        let start = self.parse_node_pattern()?;
        let mut segments = Vec::new();
        while matches!(self.peek(), TokenKind::Minus | TokenKind::ArrowLeft) {
            let rel = self.parse_rel_pattern()?;
            let node = self.parse_node_pattern()?;
            segments.push((rel, node));
        }
        Ok(PathPattern { start, segments })
    }

    fn parse_node_pattern(&mut self) -> Result<NodePattern> {
        self.expect(TokenKind::LParen)?;
        let mut np = NodePattern::default();
        if let Some(_name) = self.peek().as_name() {
            np.var = Some(self.expect_name()?);
        }
        while self.eat(&TokenKind::Colon) {
            np.labels.push(self.expect_name()?);
        }
        if self.peek() == &TokenKind::LBrace {
            np.props = self.parse_prop_map()?;
        }
        self.expect(TokenKind::RParen)?;
        Ok(np)
    }

    fn parse_prop_map(&mut self) -> Result<Vec<(String, Expr)>> {
        self.expect(TokenKind::LBrace)?;
        let mut props = Vec::new();
        if self.peek() != &TokenKind::RBrace {
            loop {
                let key = self.expect_name()?;
                self.expect(TokenKind::Colon)?;
                let value = self.parse_expr()?;
                props.push((key, value));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(props)
    }

    fn parse_rel_pattern(&mut self) -> Result<RelPattern> {
        let left_arrow = self.eat(&TokenKind::ArrowLeft);
        if !left_arrow {
            self.expect(TokenKind::Minus)?;
        }
        let mut rp = RelPattern::default();
        if self.eat(&TokenKind::LBracket) {
            if let Some(_name) = self.peek().as_name() {
                rp.var = Some(self.expect_name()?);
            }
            if self.eat(&TokenKind::Colon) {
                rp.types.push(self.expect_name()?);
                while self.eat(&TokenKind::Pipe) {
                    self.eat(&TokenKind::Colon); // tolerate  :A|:B
                    rp.types.push(self.expect_name()?);
                }
            }
            if self.eat(&TokenKind::Star) {
                let min = if let TokenKind::Int(n) = self.peek() {
                    let n = *n as u32;
                    self.bump();
                    Some(n)
                } else {
                    None
                };
                if self.eat(&TokenKind::DotDot) {
                    let max = if let TokenKind::Int(n) = self.peek() {
                        let n = *n as u32;
                        self.bump();
                        Some(n)
                    } else {
                        None
                    };
                    rp.hops = Some((min.unwrap_or(1), max));
                } else {
                    // `*` = 1.. ; `*n` = exactly n
                    rp.hops = Some(match min {
                        Some(n) => (n, Some(n)),
                        None => (1, None),
                    });
                }
            }
            if self.peek() == &TokenKind::LBrace {
                rp.props = self.parse_prop_map()?;
            }
            self.expect(TokenKind::RBracket)?;
        }
        let right_arrow = self.eat(&TokenKind::ArrowRight);
        if !right_arrow {
            self.expect(TokenKind::Minus)?;
        }
        rp.direction = match (left_arrow, right_arrow) {
            (true, false) => Direction::In,
            (false, true) => Direction::Out,
            (false, false) => Direction::Both,
            (true, true) => {
                return Err(CypherError::parse(
                    self.peek_pos(),
                    "relationship pattern cannot point both ways",
                ))
            }
        };
        Ok(rp)
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_xor()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_xor()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Xor) {
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Neq => Some(BinOp::Neq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            TokenKind::In => Some(BinOp::In),
            TokenKind::Contains => Some(BinOp::Contains),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
        if self.peek() == &TokenKind::Starts {
            self.bump();
            self.expect(TokenKind::With)?;
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary(
                BinOp::StartsWith,
                Box::new(lhs),
                Box::new(rhs),
            ));
        }
        if self.peek() == &TokenKind::Ends {
            self.bump();
            self.expect(TokenKind::With)?;
            let rhs = self.parse_additive()?;
            return Ok(Expr::Binary(BinOp::EndsWith, Box::new(lhs), Box::new(rhs)));
        }
        if self.peek() == &TokenKind::Is {
            self.bump();
            let negated = self.eat(&TokenKind::Not);
            self.expect(TokenKind::Null)?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_power()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_power()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_power(&mut self) -> Result<Expr> {
        let lhs = self.parse_unary()?;
        if self.eat(&TokenKind::Caret) {
            // right-associative
            let rhs = self.parse_power()?;
            return Ok(Expr::Binary(BinOp::Pow, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_atom()?;
        loop {
            match self.peek() {
                TokenKind::Dot => {
                    self.bump();
                    let key = self.expect_name()?;
                    e = Expr::Prop(Box::new(e), key);
                }
                TokenKind::LBracket => {
                    self.bump();
                    // index or slice
                    if self.eat(&TokenKind::DotDot) {
                        let to = if self.peek() != &TokenKind::RBracket {
                            Some(Box::new(self.parse_expr()?))
                        } else {
                            None
                        };
                        self.expect(TokenKind::RBracket)?;
                        e = Expr::Slice(Box::new(e), None, to);
                    } else {
                        let first = self.parse_expr()?;
                        if self.eat(&TokenKind::DotDot) {
                            let to = if self.peek() != &TokenKind::RBracket {
                                Some(Box::new(self.parse_expr()?))
                            } else {
                                None
                            };
                            self.expect(TokenKind::RBracket)?;
                            e = Expr::Slice(Box::new(e), Some(Box::new(first)), to);
                        } else {
                            self.expect(TokenKind::RBracket)?;
                            e = Expr::Index(Box::new(e), Box::new(first));
                        }
                    }
                }
                TokenKind::Colon => {
                    // Label predicate `expr:Label(:Label)*`; only meaningful
                    // on variables/graph items. Avoid consuming ':' in map
                    // literal context (handled elsewhere).
                    let mut labels = Vec::new();
                    while self.peek() == &TokenKind::Colon {
                        // Lookahead: `:name`
                        if self.peek_at(1).as_name().is_none() {
                            break;
                        }
                        self.bump();
                        labels.push(self.expect_name()?);
                    }
                    if labels.is_empty() {
                        break;
                    }
                    e = Expr::HasLabel(Box::new(e), labels);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_atom(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Null => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Param(p) => {
                self.bump();
                Ok(Expr::Param(p))
            }
            TokenKind::Case => {
                self.bump();
                self.parse_case()
            }
            TokenKind::Exists => {
                self.bump();
                self.parse_exists()
            }
            TokenKind::LBracket => {
                self.bump();
                self.parse_list_or_comprehension()
            }
            TokenKind::LBrace => {
                let props = self.parse_prop_map()?;
                Ok(Expr::MapLit(props))
            }
            TokenKind::LParen => {
                // Could be a parenthesized expression or (in WHERE position)
                // the start of a pattern predicate — we only support pattern
                // predicates behind EXISTS, so this is an expression.
                self.bump();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.peek_at(1) == &TokenKind::LParen {
                    self.bump();
                    self.parse_call(name)
                } else {
                    self.bump();
                    Ok(Expr::Var(name))
                }
            }
            // keyword-as-function (e.g. `exists` handled above; `size` etc.
            // are plain identifiers). Also keyword-as-variable for trigger
            // transition names is not needed — they are plain identifiers.
            other => {
                if let Some(name) = other.as_name() {
                    let name = name.to_string();
                    if self.peek_at(1) == &TokenKind::LParen {
                        self.bump();
                        return self.parse_call(name);
                    }
                }
                Err(CypherError::parse(
                    self.peek_pos(),
                    format!("unexpected token in expression: {other}"),
                ))
            }
        }
    }

    fn parse_call(&mut self, name: String) -> Result<Expr> {
        self.expect(TokenKind::LParen)?;
        if name.eq_ignore_ascii_case("count") && self.eat(&TokenKind::Star) {
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::CountStar);
        }
        let distinct = self.eat(&TokenKind::Distinct);
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(Expr::Func {
            name: name.to_lowercase(),
            args,
            distinct,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if self.peek() != &TokenKind::When {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        let mut whens = Vec::new();
        while self.eat(&TokenKind::When) {
            let w = self.parse_expr()?;
            self.expect(TokenKind::Then)?;
            let t = self.parse_expr()?;
            whens.push((w, t));
        }
        if whens.is_empty() {
            return Err(CypherError::parse(
                self.peek_pos(),
                "CASE requires at least one WHEN",
            ));
        }
        let else_ = if self.eat(&TokenKind::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect(TokenKind::End)?;
        Ok(Expr::Case {
            operand,
            whens,
            else_,
        })
    }

    /// `EXISTS { MATCH … [WHERE …] }`, `EXISTS (pattern)`, or
    /// `exists(expr)` (property-existence function form).
    fn parse_exists(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::LBrace) {
            self.eat(&TokenKind::Match);
            let mut patterns = self.parse_pattern_list(true)?;
            // `, MATCH` inside EXISTS continues the same subquery scope.
            while self.eat(&TokenKind::Match) {
                patterns.extend(self.parse_pattern_list(true)?);
            }
            let where_ = if self.eat(&TokenKind::Where) {
                Some(Box::new(self.parse_expr()?))
            } else {
                None
            };
            self.expect(TokenKind::RBrace)?;
            return Ok(Expr::ExistsSubquery(patterns, where_));
        }
        if self.peek() == &TokenKind::LParen {
            // Ambiguous: pattern `(n)-[…]-(…)` vs function arg `(n.prop)`.
            let save = self.pos;
            if let Ok(pattern) = self.parse_path_pattern() {
                if !pattern.segments.is_empty() {
                    let mut patterns = vec![pattern];
                    while self.eat(&TokenKind::Comma) {
                        patterns.push(self.parse_path_pattern()?);
                    }
                    return Ok(Expr::ExistsSubquery(patterns, None));
                }
            }
            self.pos = save;
            self.bump(); // consume '('
            let arg = self.parse_expr()?;
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::Func {
                name: "exists".to_string(),
                args: vec![arg],
                distinct: false,
            });
        }
        Err(CypherError::parse(
            self.peek_pos(),
            "expected '{' or '(' after EXISTS",
        ))
    }

    fn parse_list_or_comprehension(&mut self) -> Result<Expr> {
        // After '['. Comprehension: ident IN … ; else literal list.
        if let TokenKind::Ident(var) = self.peek().clone() {
            if self.peek_at(1) == &TokenKind::In {
                self.bump();
                self.bump();
                let list = Box::new(self.parse_expr()?);
                let filter = if self.eat(&TokenKind::Where) {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                let map = if self.eat(&TokenKind::Pipe) {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect(TokenKind::RBracket)?;
                return Ok(Expr::ListComp {
                    var,
                    list,
                    filter,
                    map,
                });
            }
        }
        let mut items = Vec::new();
        if self.peek() != &TokenKind::RBracket {
            loop {
                items.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RBracket)?;
        Ok(Expr::ListLit(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_match_return() {
        let q = parse_query("MATCH (n:Person) WHERE n.age > 30 RETURN n.name AS name").unwrap();
        assert_eq!(q.clauses.len(), 2);
        match &q.clauses[0] {
            Clause::Match {
                optional,
                patterns,
                where_clause,
            } => {
                assert!(!optional);
                assert_eq!(patterns.len(), 1);
                assert_eq!(patterns[0].start.labels, vec!["Person"]);
                assert!(where_clause.is_some());
            }
            _ => panic!("expected MATCH"),
        }
        assert!(!q.is_updating());
    }

    #[test]
    fn parse_create_path() {
        let q = parse_query("CREATE (a:A {x: 1})-[:R {w: 2}]->(b:B)").unwrap();
        match &q.clauses[0] {
            Clause::Create { patterns } => {
                assert_eq!(patterns[0].segments.len(), 1);
                let (rel, node) = &patterns[0].segments[0];
                assert_eq!(rel.types, vec!["R"]);
                assert_eq!(rel.direction, Direction::Out);
                assert_eq!(node.labels, vec!["B"]);
            }
            _ => panic!("expected CREATE"),
        }
        assert!(q.is_updating());
    }

    #[test]
    fn parse_directions() {
        for (src, dir) in [
            ("MATCH (a)-[:R]->(b) RETURN a", Direction::Out),
            ("MATCH (a)<-[:R]-(b) RETURN a", Direction::In),
            ("MATCH (a)-[:R]-(b) RETURN a", Direction::Both),
        ] {
            let q = parse_query(src).unwrap();
            match &q.clauses[0] {
                Clause::Match { patterns, .. } => {
                    assert_eq!(patterns[0].segments[0].0.direction, dir, "{src}");
                }
                _ => panic!(),
            }
        }
        assert!(parse_query("MATCH (a)<-[:R]->(b) RETURN a").is_err());
    }

    #[test]
    fn parse_var_length() {
        let q = parse_query("MATCH (a)-[:R*2..4]->(b) RETURN a").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].segments[0].0.hops, Some((2, Some(4))));
            }
            _ => panic!(),
        }
        let q = parse_query("MATCH (a)-[*]->(b) RETURN a").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].segments[0].0.hops, Some((1, None)));
            }
            _ => panic!(),
        }
        let q = parse_query("MATCH (a)-[:R*3]->(b) RETURN a").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].segments[0].0.hops, Some((3, Some(3))));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_with_aggregation_and_where() {
        let q = parse_query(
            "MATCH (p:IcuPatient) WITH COUNT(p) AS icuPat WHERE icuPat > 50 RETURN icuPat",
        )
        .unwrap();
        match &q.clauses[1] {
            Clause::With(proj) => {
                assert!(proj.where_clause.is_some());
                assert_eq!(proj.items[0].name(), "icuPat");
                assert!(proj.items[0].expr.has_aggregate());
            }
            _ => panic!("expected WITH"),
        }
    }

    #[test]
    fn parse_order_skip_limit() {
        let q = parse_query("MATCH (n) RETURN n.x ORDER BY n.x DESC, n.y SKIP 2 LIMIT 5").unwrap();
        match &q.clauses[1] {
            Clause::Return(proj) => {
                assert_eq!(proj.order_by.len(), 2);
                assert!(!proj.order_by[0].1);
                assert!(proj.order_by[1].1);
                assert!(proj.skip.is_some());
                assert!(proj.limit.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_exists_subquery_and_pattern() {
        let q = parse_query(
            "MATCH (s:Sequence) WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) } RETURN s",
        )
        .unwrap();
        match &q.clauses[0] {
            Clause::Match {
                where_clause: Some(Expr::ExistsSubquery(ps, None)),
                ..
            } => {
                assert_eq!(ps[0].segments.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Pattern form from the paper's first trigger.
        let e = parse_expression("EXISTS (NEW)-[:Risk]-(:CriticalEffect)").unwrap();
        match e {
            Expr::ExistsSubquery(ps, None) => {
                assert_eq!(ps[0].start.var.as_deref(), Some("NEW"));
                assert_eq!(ps[0].segments.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Function form.
        let e = parse_expression("exists(n.prop)").unwrap();
        match e {
            Expr::Func { name, args, .. } => {
                assert_eq!(name, "exists");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_case_forms() {
        let e = parse_expression("CASE WHEN x > 1 THEN 'big' ELSE 'small' END").unwrap();
        assert!(matches!(e, Expr::Case { operand: None, .. }));
        let e = parse_expression("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").unwrap();
        assert!(matches!(
            e,
            Expr::Case {
                operand: Some(_),
                ..
            }
        ));
        assert!(parse_expression("CASE END").is_err());
    }

    #[test]
    fn parse_foreach_both_styles() {
        let q = parse_query("FOREACH (x IN [1,2] | SET n.p = x)").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Foreach { body, .. } if body.len() == 1));
        let q = parse_query_lenient(
            "FOREACH (p IN pn) BEGIN MATCH (p)-[c:TreatedAt]-(h) DELETE c CREATE (p)-[:TreatedAt]->(hc) END",
        )
        .unwrap();
        assert!(matches!(&q.clauses[0], Clause::Foreach { body, .. } if body.len() == 3));
    }

    #[test]
    fn lenient_mode_skips_then_begin_end() {
        let q = parse_query_lenient("MATCH (a:A) WITH a THEN BEGIN SET a.x = 1 END").unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert!(matches!(&q.clauses[2], Clause::Set { .. }));
    }

    #[test]
    fn parse_set_variants() {
        let q = parse_query("SET n.x = 1, n:Label, m += {a: 1}, k = {b: 2}").unwrap();
        match &q.clauses[0] {
            Clause::Set { items } => {
                assert_eq!(items.len(), 4);
                assert!(matches!(items[0], SetItem::Prop { .. }));
                assert!(matches!(items[1], SetItem::Labels { .. }));
                assert!(matches!(items[2], SetItem::MergeProps { .. }));
                assert!(matches!(items[3], SetItem::ReplaceProps { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_remove_variants() {
        let q = parse_query("REMOVE n.x, n:L1:L2").unwrap();
        match &q.clauses[0] {
            Clause::Remove { items } => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], RemoveItem::Prop { .. }));
                assert!(
                    matches!(&items[1], RemoveItem::Labels { labels, .. } if labels.len() == 2)
                );
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_merge_with_actions() {
        let q = parse_query(
            "MERGE (n:A {k: 1}) ON CREATE SET n.created = true ON MATCH SET n.seen = true",
        )
        .unwrap();
        match &q.clauses[0] {
            Clause::Merge {
                on_create,
                on_match,
                ..
            } => {
                assert_eq!(on_create.len(), 1);
                assert_eq!(on_match.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parse_unwind_and_detach_delete() {
        let q = parse_query("UNWIND [1,2,3] AS x DETACH DELETE n").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Unwind { alias, .. } if alias == "x"));
        assert!(matches!(&q.clauses[1], Clause::Delete { detach: true, .. }));
    }

    #[test]
    fn parse_label_predicate_expr() {
        let e = parse_expression("n:Person AND n.age > 18").unwrap();
        match e {
            Expr::Binary(BinOp::And, lhs, _) => {
                assert!(matches!(*lhs, Expr::HasLabel(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // multi-label predicate
        let e = parse_expression("p:HospitalizedPatient:IcuPatient").unwrap();
        assert!(matches!(e, Expr::HasLabel(_, ref ls) if ls.len() == 2));
    }

    #[test]
    fn parse_list_comprehension_and_ops() {
        let e = parse_expression("[x IN list WHERE x > 1 | x * 2]").unwrap();
        assert!(matches!(e, Expr::ListComp { .. }));
        let e = parse_expression("a[0]").unwrap();
        assert!(matches!(e, Expr::Index(_, _)));
        let e = parse_expression("a[1..3]").unwrap();
        assert!(matches!(e, Expr::Slice(_, Some(_), Some(_))));
        let e = parse_expression("'abc' STARTS WITH 'a'").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::StartsWith, _, _)));
        let e = parse_expression("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull(_, true)));
    }

    #[test]
    fn parse_count_star_and_distinct() {
        let e = parse_expression("count(*)").unwrap();
        assert_eq!(e, Expr::CountStar);
        let e = parse_expression("count(DISTINCT x)").unwrap();
        assert!(matches!(e, Expr::Func { distinct: true, .. }));
    }

    #[test]
    fn parse_abort_clause() {
        let q = parse_query("ABORT 'icuBeds must be non-negative'").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Abort(_)));
    }

    #[test]
    fn quoted_labels_in_patterns() {
        // Paper quotes labels in the ON clause; allow the same in patterns.
        let q = parse_query("MATCH (n:`Weird Label`) RETURN n").unwrap();
        match &q.clauses[0] {
            Clause::Match { patterns, .. } => {
                assert_eq!(patterns[0].start.labels, vec!["Weird Label"]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn paper_comma_match_style_is_two_clauses() {
        // `MATCH …, MATCH …` = two MATCH clauses, each with its own
        // relationship-uniqueness scope (the paper's §6.2 style).
        let q = parse_query("MATCH (p:A)-[:T]-(h:B), MATCH (pn:C)-[:T]-(h2:B) RETURN p").unwrap();
        assert_eq!(q.clauses.len(), 3);
        assert!(matches!(&q.clauses[0], Clause::Match { patterns, .. } if patterns.len() == 1));
        assert!(matches!(&q.clauses[1], Clause::Match { patterns, .. } if patterns.len() == 1));
        // plain commas still group into one clause
        let q = parse_query("MATCH (a), (b) RETURN a").unwrap();
        assert!(matches!(&q.clauses[0], Clause::Match { patterns, .. } if patterns.len() == 2));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_query("MATCH (n RETURN n").unwrap_err();
        assert!(matches!(err, CypherError::Parse { .. }));
        assert!(parse_query("RETURN").is_err());
        assert!(parse_query("MATCH (n) BANANA").is_err());
    }

    #[test]
    fn optional_match_parses() {
        let q = parse_query("OPTIONAL MATCH (n:A) RETURN n").unwrap();
        assert!(matches!(
            &q.clauses[0],
            Clause::Match { optional: true, .. }
        ));
    }

    #[test]
    fn with_star_projection() {
        let q = parse_query("MATCH (n) WITH *, n.x AS x RETURN x").unwrap();
        match &q.clauses[1] {
            Clause::With(p) => {
                assert!(p.star);
                assert_eq!(p.items.len(), 1);
            }
            _ => panic!(),
        }
    }
}
