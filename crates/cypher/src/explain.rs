//! `EXPLAIN` — render a query's physical plan (planner v4).
//!
//! The report is produced from [`crate::plan::lower_query`], so every
//! line reflects a decision the real executor makes: the `Seed` lines
//! carry the [`crate::physical::NodeAccess`] chosen count-only by the
//! cost model, `Expand` lines carry the per-hop degree-statistics fanout
//! and the running join-output estimate, and a `TopK` line appears
//! exactly when the executor's index-served top-k fusion accepts the
//! `MATCH` + projection pair. For read-only queries the query is also
//! executed once so the report closes with `actual rows` next to the
//! estimate — the estimated-vs-actual gap is what the `join_planning`
//! bench tracks.

use crate::ast::Query;
use crate::error::Result;
use crate::expr::EvalCtx;
use crate::parser::parse_query;
use crate::physical::ParallelPlan;
use crate::plan::{lower_query_with, LogicalOp};
use crate::row::{Params, QueryOutput};
use crate::unparse::unparse_expr;
use pg_graph::GraphView;
use std::fmt::Write as _;

/// Format an estimate: integral values print without a fraction
/// (`12`), fractional ones with one decimal (`38.4`).
fn fmt_est(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.1}")
    }
}

/// Render the physical plan of `query`. When `executed` is given, the
/// query has been run and the report compares estimated to actual rows.
///
/// `threads` is the worker ceiling fed into the parallelism decision —
/// callers that pin a plan in a golden test pass a fixed count so the
/// report does not depend on the machine running the test.
pub fn render_plan(
    ctx: &EvalCtx<'_>,
    query: &Query,
    executed: Option<&QueryOutput>,
    threads: usize,
) -> Result<String> {
    let (plan, phys) = lower_query_with(ctx, query, threads)?;
    let mut out = String::new();
    out.push_str("Plan\n");
    let mut pi = 0usize;
    for op in &plan.ops {
        match op {
            LogicalOp::Seed { optional, .. } => {
                let p = &phys[pi];
                pi += 1;
                let opt = if *optional { "OptionalSeed" } else { "Seed" };
                let _ = writeln!(
                    out,
                    "  {opt} ({}) access={} est={} rows",
                    p.seed_var, p.seed, p.seed_est
                );
            }
            LogicalOp::Expand { segment, .. } => {
                // `pi` has already advanced past this path's Seed.
                let p = &phys[pi - 1];
                let h = &p.hops[*segment];
                let fanout = match h.fanout {
                    Some(f) => format!("{f:.2}"),
                    None => "?".to_string(),
                };
                let _ = writeln!(
                    out,
                    "  Expand {} fanout={fanout} est={} rows",
                    h.repr,
                    fmt_est(h.est_rows)
                );
            }
            LogicalOp::Filter { predicate } => {
                let _ = writeln!(out, "  Filter {}", unparse_expr(predicate));
            }
            LogicalOp::Project { distinct, columns } => {
                let d = if *distinct {
                    "Project DISTINCT"
                } else {
                    "Project"
                };
                let cols = if columns.is_empty() {
                    "*".to_string()
                } else {
                    columns.join(", ")
                };
                let _ = writeln!(out, "  {d} [{cols}]");
            }
            LogicalOp::Aggregate { columns } => {
                let _ = writeln!(out, "  Aggregate [{}]", columns.join(", "));
            }
            LogicalOp::Sort { keys, descending } => {
                let dir = if *descending { "desc" } else { "asc" };
                let _ = writeln!(out, "  Sort keys={keys} {dir}");
            }
            LogicalOp::TopK { spec } => {
                let dir = if spec.descending { "desc" } else { "asc" };
                let _ = writeln!(
                    out,
                    "  TopK {}.{} {dir} keep={}",
                    spec.var,
                    spec.keys.join("."),
                    spec.keep
                );
            }
            LogicalOp::Page => {
                let _ = writeln!(out, "  Page (SKIP/LIMIT)");
            }
            LogicalOp::Unwind { alias } => {
                let _ = writeln!(out, "  Unwind AS {alias}");
            }
            LogicalOp::Update { what } => {
                let _ = writeln!(out, "  Update <{what}>");
            }
            LogicalOp::Parallelism { plan } => match plan {
                ParallelPlan::Parallel {
                    degree,
                    morsels,
                    est_rows,
                } => {
                    let _ = writeln!(
                        out,
                        "  Parallel degree={degree} morsels={morsels} est={} rows",
                        fmt_est(*est_rows)
                    );
                }
                ParallelPlan::Serial(decline) => {
                    let _ = writeln!(out, "  Serial ({})", decline.rule());
                }
            },
        }
    }
    if !phys.is_empty() {
        let est: f64 = phys.iter().map(|p| p.est_rows()).product();
        let _ = writeln!(out, "estimated match rows: {}", fmt_est(est));
    }
    match executed {
        Some(qo) => {
            let actual = if qo.columns.is_empty() {
                qo.bindings.len()
            } else {
                qo.rows.len()
            };
            let _ = writeln!(out, "actual rows: {actual}");
        }
        None => {
            let _ = writeln!(out, "actual rows: not executed (updating query)");
        }
    }
    Ok(out)
}

/// Parse and explain `src` against a read-only view. Read-only queries
/// are executed once for the `actual rows` line; updating queries are
/// planned but not run.
pub fn explain_query(
    view: &dyn GraphView,
    src: &str,
    params: &Params,
    now_ms: i64,
) -> Result<String> {
    explain_query_with(
        view,
        src,
        params,
        now_ms,
        crate::exec::default_thread_limit(),
    )
}

/// [`explain_query`] with an explicit thread ceiling for the parallelism
/// decision. Golden tests pass a fixed count so the rendered `Parallel`
/// / `Serial` line is identical on every machine.
pub fn explain_query_with(
    view: &dyn GraphView,
    src: &str,
    params: &Params,
    now_ms: i64,
    threads: usize,
) -> Result<String> {
    let query = parse_query(src)?;
    let executed = if query.is_updating() {
        None
    } else {
        Some(crate::run_read_only(
            view,
            &query,
            Vec::new(),
            params,
            now_ms,
        )?)
    };
    let ctx = EvalCtx::new(view, params, now_ms);
    render_plan(&ctx, &query, executed.as_ref(), threads)
}
