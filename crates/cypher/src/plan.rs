//! Logical plans as data (planner v4).
//!
//! The logical layer sits between the AST and the physical access-path
//! decisions of [`crate::physical`]: a query's clauses are lowered to a
//! flat list of [`LogicalOp`]s — `Seed`, `Expand`, `Filter`, `Project`,
//! `Sort`, `TopK`, `Aggregate`, … — built by the *existing* pushdown and
//! join-order machinery (`extract_pushdowns` / `plan_patterns` in
//! [`crate::pattern`]), so the plan printed by `EXPLAIN` is the plan the
//! matcher executes, not a parallel reimplementation.
//!
//! This module is also the home of the **top-k fusion analysis** that
//! previously lived inside the executor: [`TopKSpec`],
//! `plan_topk_projection` (the decline rules) and `composite_pin` are
//! plan-level decisions — they inspect only the AST and the catalog — and
//! both the executor and `EXPLAIN` consume them.

use crate::ast::{Clause, Expr, PathPattern, Projection, Query};
use crate::error::{CypherError, Result};
use crate::expr::{eval, EvalCtx};
use crate::pattern::{extract_pushdowns, pattern_vars, plan_patterns, Pushdowns};
use crate::physical::{plan_path, PhysicalPathPlan};
use crate::row::Row;
use pg_graph::Value;
use std::collections::HashMap;

/// Largest `SKIP + LIMIT` the index-served top-k fusion accepts; beyond
/// it, per-item re-matching would erase the early-exit advantage.
pub(crate) const TOPK_FUSE_MAX: usize = 128;

/// The projection-side shape of a fusable top-k: `ORDER BY var.k1
/// [, var.k2, …]` with a constant `SKIP + LIMIT` budget. Every order key
/// must dereference the *same* pattern variable and share one direction
/// (a composite walk has a single direction; mixed-direction multi-key
/// orders decline to the heap path).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSpec {
    /// The pattern variable the order keys dereference.
    pub var: String,
    /// The property keys ordered by, in order. One key → single-key or
    /// composite walks; several → composite walks only.
    pub keys: Vec<String>,
    pub descending: bool,
    /// Rows to produce before stopping (`SKIP + LIMIT`).
    pub keep: usize,
}

/// Evaluate a constant (seed-independent) non-negative integer expression
/// — the `SKIP` / `LIMIT` operands.
pub(crate) fn eval_const_int(ctx: &EvalCtx<'_>, e: &Expr) -> Result<i64> {
    let v = eval(ctx, &Row::new(), e)?;
    v.as_i64()
        .filter(|n| *n >= 0)
        .ok_or_else(|| CypherError::type_err("SKIP/LIMIT must be a non-negative integer"))
}

/// Analyze the projection side of a potential top-k fusion; `None` =
/// fusion declined (shape, aggregation, or aliasing rules — the full
/// decline catalog lives in the [`crate::exec`] module docs).
pub(crate) fn plan_topk_projection(
    ctx: &EvalCtx<'_>,
    proj: &Projection,
    seeds: &[Row],
) -> Result<Option<TopKSpec>> {
    if proj.order_by.is_empty()
        || proj.limit.is_none()
        || proj.distinct
        || proj.where_clause.is_some()
        || proj.items.iter().any(|it| it.expr.has_aggregate())
    {
        return Ok(None);
    }
    let skip = match &proj.skip {
        Some(e) => eval_const_int(ctx, e)? as usize,
        None => 0,
    };
    let limit = match &proj.limit {
        Some(e) => eval_const_int(ctx, e)? as usize,
        None => unreachable!("checked above"),
    };
    let keep = skip.saturating_add(limit);
    if keep > TOPK_FUSE_MAX {
        return Ok(None);
    }
    // Resolve every order key: `ORDER BY alias` is traced back to its
    // projected expression; each must be a plain `var.key` over one
    // shared `var`, and all directions must agree (a walk has one
    // direction — mixed multi-key orders decline).
    let mut var: Option<&String> = None;
    let mut keys: Vec<String> = Vec::with_capacity(proj.order_by.len());
    let mut ascending: Option<bool> = None;
    let mut any_literal = false;
    for (key_expr, asc) in &proj.order_by {
        match ascending {
            None => ascending = Some(*asc),
            Some(a) if a == *asc => {}
            Some(_) => return Ok(None),
        }
        let mut via_alias = false;
        let key_expr = if let Expr::Var(name) = key_expr {
            match proj.items.iter().find(|it| &it.name() == name) {
                Some(it) => {
                    via_alias = true;
                    &it.expr
                }
                None => key_expr,
            }
        } else {
            key_expr
        };
        let Expr::Prop(base, key) = key_expr else {
            return Ok(None);
        };
        let Expr::Var(v) = base.as_ref() else {
            return Ok(None);
        };
        match var {
            None => var = Some(v),
            Some(existing) if existing == v => {}
            Some(_) => return Ok(None),
        }
        if !via_alias {
            any_literal = true;
        }
        keys.push(key.clone());
    }
    let var = var.expect("order_by is non-empty");
    // A literal `ORDER BY var.key` is re-evaluated by `project` on the
    // *projected* rows, where the column `var` may have been rebound
    // (`WITH y AS x ORDER BY x.k`): fuse only when the projection
    // carries `var` through as itself. An alias-resolved key is exempt
    // — its column value was computed from the match row regardless of
    // what else the projection binds.
    if any_literal {
        let mut identity = proj.star;
        for it in &proj.items {
            if &it.name() == var {
                if matches!(&it.expr, Expr::Var(v) if v == var) {
                    identity = true;
                } else {
                    return Ok(None);
                }
            }
        }
        if !identity {
            return Ok(None);
        }
    }
    // `var` must be bound *by this MATCH*, not by the incoming rows.
    if seeds.iter().any(|r| r.contains(var)) {
        return Ok(None);
    }
    Ok(Some(TopKSpec {
        var: var.clone(),
        keys,
        descending: !ascending.expect("order_by is non-empty"),
        keep,
    }))
}

/// The pinned equality values under which a composite definition serves
/// `spec.keys` as an ordered walk: `def` must contain `spec.keys` as a
/// contiguous run, and every column *before* the run needs an equality
/// conjunct (inline pattern prop or top-level `WHERE` conjunct on
/// `spec.var`) whose operand evaluates against `row` — the **empty row**
/// for a seed-shared walk (constants/params only, the §6.2.3 relocation
/// shape with a status filter), or a **concrete seed row** for the
/// per-seed re-pinned walks, where the pin value comes from the seed's
/// own bindings (`{group: g.id} … ORDER BY severity LIMIT 1` under a
/// `WITH g` pipeline). Columns after the run are free: they only refine
/// the walk order beyond the requested keys. Returns the evaluated pin
/// values (empty when the run starts at the leading column); `None` =
/// this definition cannot serve the order under `row`.
pub(crate) fn composite_pin(
    ctx: &EvalCtx<'_>,
    row: &Row,
    inline_props: &[(String, Expr)],
    pushed: &Pushdowns,
    spec: &TopKSpec,
    def: &[String],
) -> Option<Vec<Value>> {
    let j = (0..=def.len().checked_sub(spec.keys.len())?)
        .find(|&j| def[j..j + spec.keys.len()] == spec.keys[..])?;
    let preds = pushed.get(&spec.var);
    let mut pins = Vec::with_capacity(j);
    for col in &def[..j] {
        let expr = inline_props
            .iter()
            .find(|(k, _)| k == col)
            .map(|(_, e)| e)
            .or_else(|| preds.and_then(|p| p.eqs.iter().find(|(k, _)| k == col).map(|(_, e)| e)))?;
        pins.push(eval(ctx, row, expr).ok()?);
    }
    Some(pins)
}

// ---------------------------------------------------------------------
// Logical plan IR
// ---------------------------------------------------------------------

/// One operator of a logical plan. A `MATCH` clause lowers to one
/// [`LogicalOp::Seed`] plus a chain of [`LogicalOp::Expand`]s per planned
/// (re-rooted, join-ordered) path, followed by a [`LogicalOp::Filter`]
/// for the residual `WHERE`; projections lower to
/// `Aggregate`/`Project`/`Sort`/`TopK`/`Page` as their shape dictates.
#[derive(Debug, Clone)]
pub enum LogicalOp {
    /// Enumerate candidates for one planned path's anchor position.
    Seed {
        optional: bool,
        pattern: PathPattern,
    },
    /// Expand one hop (`pattern.segments[segment]`) from the rows of the
    /// previous operator.
    Expand {
        pattern: PathPattern,
        segment: usize,
    },
    /// Residual predicate evaluation (the full `WHERE`).
    Filter { predicate: Expr },
    /// Row projection (`WITH` / `RETURN`), possibly distinct.
    Project {
        distinct: bool,
        columns: Vec<String>,
    },
    /// Grouped aggregation (`count`/`sum`/…).
    Aggregate { columns: Vec<String> },
    /// Full or bounded (`LIMIT`-capped heap) sort by the `ORDER BY` keys.
    Sort { keys: usize, descending: bool },
    /// An index-served fused top-k walk replacing Seed/Expand enumeration.
    TopK { spec: TopKSpec },
    /// `SKIP` / `LIMIT` application.
    Page,
    /// `UNWIND`.
    Unwind { alias: String },
    /// An updating or otherwise opaque clause, carried through verbatim.
    Update { what: &'static str },
    /// The morsel-driven parallelism decision for the preceding `MATCH`
    /// clause (see [`crate::physical::plan_parallelism`]), planned from
    /// the running row estimate. Fused top-k matches emit none — the
    /// ordered index walk replaces batch enumeration entirely.
    Parallelism { plan: crate::physical::ParallelPlan },
}

/// A whole query lowered to logical operators.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    pub ops: Vec<LogicalOp>,
}

/// Lower one `MATCH` clause: plan the join order from `seed` (the
/// representative seed row — execution re-plans per seed, which can only
/// refine the order), then emit `Seed`/`Expand` per planned path and a
/// trailing `Filter`. Returns the **physical annotation** of each planned
/// (re-rooted, ordered) path — the chosen access paths and join-output
/// estimates for exactly what will run.
pub(crate) fn lower_match(
    ctx: &EvalCtx<'_>,
    seed: &Row,
    optional: bool,
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    label_hints: &HashMap<String, Vec<String>>,
    plan: &mut LogicalPlan,
) -> Vec<PhysicalPathPlan> {
    let pushed = extract_pushdowns(where_clause);
    let planned = plan_patterns(ctx, seed, patterns, &pushed);
    let mut phys = Vec::with_capacity(planned.len());
    for path in &planned {
        plan.ops.push(LogicalOp::Seed {
            optional,
            pattern: path.clone(),
        });
        for seg in 0..path.segments.len() {
            plan.ops.push(LogicalOp::Expand {
                pattern: path.clone(),
                segment: seg,
            });
        }
        phys.push(plan_path(ctx, seed, path, &pushed, label_hints));
    }
    if let Some(w) = where_clause {
        plan.ops.push(LogicalOp::Filter {
            predicate: w.clone(),
        });
    }
    phys
}

/// Lower a projection (`WITH` / `RETURN`); `fused` carries the top-k spec
/// when the preceding `MATCH` was fused into an ordered index walk.
pub(crate) fn lower_projection(
    proj: &Projection,
    fused: Option<&TopKSpec>,
    plan: &mut LogicalPlan,
) {
    let columns: Vec<String> = proj.items.iter().map(|it| it.name()).collect();
    if proj.items.iter().any(|it| it.expr.has_aggregate()) {
        plan.ops.push(LogicalOp::Aggregate { columns });
    } else {
        plan.ops.push(LogicalOp::Project {
            distinct: proj.distinct,
            columns,
        });
    }
    if let Some(spec) = fused {
        plan.ops.push(LogicalOp::TopK { spec: spec.clone() });
        return;
    }
    if !proj.order_by.is_empty() {
        plan.ops.push(LogicalOp::Sort {
            keys: proj.order_by.len(),
            descending: proj.order_by.first().is_some_and(|(_, asc)| !*asc),
        });
    }
    if proj.skip.is_some() || proj.limit.is_some() {
        plan.ops.push(LogicalOp::Page);
    }
}

/// Lower a whole query to its logical plan. Mirrors the executor's clause
/// loop — including the `MATCH` + `WITH`/`RETURN` top-k fusion decision —
/// so `EXPLAIN` prints what `run_clauses` will do. Also returns, aligned
/// with the `Seed` ops in order, the physical annotation of each planned
/// path (access paths and join-output estimates).
///
/// Later clauses are planned from a **representative bound row**: every
/// variable an earlier clause binds is present, bound to `Null`. That is
/// enough for the planner's *shape* decisions (a re-used variable plans as
/// `BoundVar` with fanout annotations instead of being double-counted as a
/// fresh label scan), but it is pessimistic for *value*-dependent access:
/// an operand that dereferences a `Null` binding proves empty at plan
/// time, so such a clause may annotate as `Empty(0)` even though execution
/// (with real values) finds rows. The annotation documents the access
/// path; the row estimate for correlated cross-clause predicates is a
/// lower bound.
pub fn lower_query(
    ctx: &EvalCtx<'_>,
    query: &Query,
) -> Result<(LogicalPlan, Vec<PhysicalPathPlan>)> {
    lower_query_with(ctx, query, crate::exec::default_thread_limit())
}

/// [`lower_query`] with an explicit worker-thread ceiling, so plan
/// renderings (and their golden tests) are machine-independent. The
/// ceiling affects only the degree printed on `Parallelism` lines —
/// never the morselize-or-not half of the decision.
pub fn lower_query_with(
    ctx: &EvalCtx<'_>,
    query: &Query,
    threads: usize,
) -> Result<(LogicalPlan, Vec<PhysicalPathPlan>)> {
    let mut plan = LogicalPlan::default();
    let mut seeds_out: Vec<PhysicalPathPlan> = Vec::new();
    let clauses = &query.clauses;
    // Running row estimate flowing between clauses — the plan-time proxy
    // for the seed-group size the runtime decision will see. MATCH
    // multiplies it by the clause's join-output estimate; an aggregation
    // collapses it; a fused top-k caps it at its `keep`.
    let mut est_in = 1.0f64;
    let pinnable = ctx.view.parallel_snapshot().is_some();
    // Representative seed row: earlier clauses' bindings, as Null.
    let mut bound = Row::new();
    let bind_patterns = |bound: &mut Row, patterns: &[PathPattern]| {
        for v in pattern_vars(patterns) {
            if !bound.contains(&v) {
                bound.set(v, Value::Null);
            }
        }
    };
    // Labels each pattern variable was declared with, for fanout lookups
    // at unlabeled re-use sites (`MATCH (u:User) MATCH (u)-[:F]->…`).
    let mut hints: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < clauses.len() {
        if let Clause::Match {
            optional: false,
            patterns,
            where_clause,
        } = &clauses[i]
        {
            // The same fusion test the executor runs, over the
            // representative row.
            let next_proj = match clauses.get(i + 1) {
                Some(Clause::With(p)) | Some(Clause::Return(p)) => Some(p),
                _ => None,
            };
            if let Some(p) = next_proj {
                let reps = std::slice::from_ref(&bound);
                if let Some(spec) = plan_topk_projection(ctx, p, reps)? {
                    note_hints(&mut hints, patterns);
                    let planned = lower_match(
                        ctx,
                        &bound,
                        false,
                        patterns,
                        where_clause.as_ref(),
                        &hints,
                        &mut plan,
                    );
                    let clause_est: f64 = planned.iter().map(|p| p.est_rows()).product();
                    est_in = (est_in * clause_est).min(spec.keep as f64);
                    seeds_out.extend(planned);
                    lower_projection(p, Some(&spec), &mut plan);
                    bind_patterns(&mut bound, patterns);
                    rebind_projection(&mut bound, p);
                    i += 2;
                    continue;
                }
            }
        }
        match &clauses[i] {
            Clause::Match {
                optional,
                patterns,
                where_clause,
            } => {
                note_hints(&mut hints, patterns);
                let planned = lower_match(
                    ctx,
                    &bound,
                    *optional,
                    patterns,
                    where_clause.as_ref(),
                    &hints,
                    &mut plan,
                );
                // The same decision the batch matcher makes at runtime,
                // from plan-time estimates: incoming rows stand in for
                // the seed-group size, the join-output estimate feeds
                // the cost gate.
                let var_length = patterns
                    .iter()
                    .any(|p| p.segments.iter().any(|(r, _)| r.hops.is_some()));
                let clause_est: f64 = planned.iter().map(|p| p.est_rows()).product();
                let est_rows = est_in * clause_est;
                plan.ops.push(LogicalOp::Parallelism {
                    plan: crate::physical::plan_parallelism(
                        est_in.round() as usize,
                        var_length,
                        est_rows,
                        pinnable,
                        threads,
                        crate::physical::PARALLEL_ROW_THRESHOLD,
                    ),
                });
                est_in = est_rows;
                seeds_out.extend(planned);
                bind_patterns(&mut bound, patterns);
            }
            Clause::With(p) | Clause::Return(p) => {
                if p.items.iter().any(|it| it.expr.has_aggregate()) {
                    est_in = 1.0;
                }
                lower_projection(p, None, &mut plan);
                rebind_projection(&mut bound, p);
                // A projection ends the old variables' scope: drop hints
                // for names a later clause may re-introduce fresh.
                hints.retain(|k, _| bound.contains(k));
            }
            Clause::Where(pred) => plan.ops.push(LogicalOp::Filter {
                predicate: pred.clone(),
            }),
            Clause::Unwind { alias, .. } => {
                plan.ops.push(LogicalOp::Unwind {
                    alias: alias.clone(),
                });
                if !bound.contains(alias) {
                    bound.set(alias.clone(), Value::Null);
                }
            }
            other => {
                plan.ops.push(LogicalOp::Update {
                    what: clause_name(other),
                });
                match other {
                    Clause::Create { patterns } => {
                        note_hints(&mut hints, patterns);
                        bind_patterns(&mut bound, patterns);
                    }
                    Clause::Merge { pattern, .. } => {
                        note_hints(&mut hints, std::slice::from_ref(pattern));
                        bind_patterns(&mut bound, std::slice::from_ref(pattern));
                    }
                    _ => {}
                }
            }
        }
        i += 1;
    }
    Ok((plan, seeds_out))
}

/// Record the labels each node variable is declared with, so a later
/// unlabeled re-use site can still look up degree statistics. First
/// declaration wins (that is the clause that bound the variable).
fn note_hints(hints: &mut HashMap<String, Vec<String>>, patterns: &[PathPattern]) {
    let mut note = |np: &crate::ast::NodePattern| {
        if let Some(v) = &np.var {
            if !np.labels.is_empty() && !hints.contains_key(v) {
                hints.insert(v.clone(), np.labels.clone());
            }
        }
    };
    for p in patterns {
        note(&p.start);
        for (_, np) in &p.segments {
            note(np);
        }
    }
}

/// After a `WITH`/`RETURN`, only the projected names survive (`*` keeps
/// everything already bound alongside the explicit items).
fn rebind_projection(bound: &mut Row, proj: &Projection) {
    let mut next = if proj.star { bound.clone() } else { Row::new() };
    for it in &proj.items {
        let name = it.name();
        if !next.contains(&name) {
            next.set(name, Value::Null);
        }
    }
    *bound = next;
}

/// A short, stable name for an opaque clause.
fn clause_name(c: &Clause) -> &'static str {
    match c {
        Clause::Match { .. } => "Match",
        Clause::Where(_) => "Where",
        Clause::Unwind { .. } => "Unwind",
        Clause::With(_) => "With",
        Clause::Return(_) => "Return",
        Clause::Create { .. } => "Create",
        Clause::Merge { .. } => "Merge",
        Clause::Delete { detach: true, .. } => "DetachDelete",
        Clause::Delete { .. } => "Delete",
        Clause::Set { .. } => "Set",
        Clause::Remove { .. } => "Remove",
        Clause::Foreach { .. } => "Foreach",
        Clause::Abort(_) => "Abort",
    }
}
