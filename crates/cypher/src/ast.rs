//! Abstract syntax tree for the Cypher subset.

use pg_graph::{Direction, Value};

/// A query: a sequence of clauses executed as a pipeline over binding rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub clauses: Vec<Clause>,
}

impl Query {
    /// `true` when the query contains any updating clause (directly or inside
    /// `FOREACH`). Used by the trigger engine to reject mutating conditions
    /// and to statically validate `BEFORE` trigger bodies.
    pub fn is_updating(&self) -> bool {
        fn clause_updates(c: &Clause) -> bool {
            match c {
                Clause::Create { .. }
                | Clause::Merge { .. }
                | Clause::Delete { .. }
                | Clause::Set { .. }
                | Clause::Remove { .. } => true,
                Clause::Foreach { body, .. } => body.iter().any(clause_updates),
                _ => false,
            }
        }
        self.clauses.iter().any(clause_updates)
    }
}

/// A top-level clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    Match {
        optional: bool,
        patterns: Vec<PathPattern>,
        where_clause: Option<Expr>,
    },
    Unwind {
        expr: Expr,
        alias: String,
    },
    With(Projection),
    Return(Projection),
    Create {
        patterns: Vec<PathPattern>,
    },
    Merge {
        pattern: PathPattern,
        on_create: Vec<SetItem>,
        on_match: Vec<SetItem>,
    },
    Delete {
        detach: bool,
        exprs: Vec<Expr>,
    },
    Set {
        items: Vec<SetItem>,
    },
    Remove {
        items: Vec<RemoveItem>,
    },
    Foreach {
        var: String,
        list: Expr,
        body: Vec<Clause>,
    },
    /// `WHERE` appearing directly after `WITH` is folded into the
    /// projection; a standalone filtering clause is used inside trigger
    /// conditions (`WHEN … WHERE pred`).
    Where(Expr),
    /// Extension: `ABORT <expr>` raises [`crate::CypherError::Aborted`],
    /// rolling back the enclosing statement/transaction. Gives trigger
    /// bodies a way to veto the activating statement (SQL3's unhandled
    /// exception behaviour).
    Abort(Expr),
}

/// Projection (`WITH`/`RETURN`) with its sub-clauses.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    pub distinct: bool,
    pub items: Vec<ProjItem>,
    /// `*` projection keeps all current bindings (plus extra items).
    pub star: bool,
    pub order_by: Vec<(Expr, bool)>, // (key, ascending)
    pub skip: Option<Expr>,
    pub limit: Option<Expr>,
    /// `WHERE` after `WITH` (filters the projected rows).
    pub where_clause: Option<Expr>,
}

/// One projected item, `expr [AS alias]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl ProjItem {
    /// The output column name: the alias when given, else the source text
    /// reconstruction of simple expressions (variable or property access).
    pub fn name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        self.expr.display_name()
    }
}

/// `SET` targets.
#[derive(Debug, Clone, PartialEq)]
pub enum SetItem {
    /// `SET n.key = expr`
    Prop {
        target: Expr,
        key: String,
        value: Expr,
    },
    /// `SET n:Label1:Label2`
    Labels { var: String, labels: Vec<String> },
    /// `SET n = expr` (replace all properties with map)
    ReplaceProps { var: String, value: Expr },
    /// `SET n += expr` (merge map into properties)
    MergeProps { var: String, value: Expr },
}

/// `REMOVE` targets.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoveItem {
    /// `REMOVE n.key`
    Prop { target: Expr, key: String },
    /// `REMOVE n:Label1:Label2`
    Labels { var: String, labels: Vec<String> },
}

/// A linear path pattern: a start node and zero or more (rel, node) hops.
#[derive(Debug, Clone, PartialEq)]
pub struct PathPattern {
    pub start: NodePattern,
    pub segments: Vec<(RelPattern, NodePattern)>,
}

/// `(var:Label1:Label2 {prop: expr, …})`
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodePattern {
    pub var: Option<String>,
    pub labels: Vec<String>,
    pub props: Vec<(String, Expr)>,
}

/// `-[var:TYPE1|TYPE2 *min..max {prop: expr}]->`
#[derive(Debug, Clone, PartialEq)]
pub struct RelPattern {
    pub var: Option<String>,
    pub types: Vec<String>,
    pub props: Vec<(String, Expr)>,
    pub direction: Direction,
    /// Variable-length bounds (`*`, `*n`, `*n..m`, `*..m`); `None` = single hop.
    pub hops: Option<(u32, Option<u32>)>,
}

impl Default for RelPattern {
    fn default() -> Self {
        RelPattern {
            var: None,
            types: Vec::new(),
            props: Vec::new(),
            direction: Direction::Both,
            hops: None,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    Param(String),
    Var(String),
    /// `base.key`
    Prop(Box<Expr>, String),
    /// `expr:Label` (label predicate)
    HasLabel(Box<Expr>, Vec<String>),
    Unary(UnaryOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `fn(args…)`; `distinct` applies to aggregate calls.
    Func {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `count(*)`
    CountStar,
    /// `[e1, e2, …]`
    ListLit(Vec<Expr>),
    /// `{k: v, …}`
    MapLit(Vec<(String, Expr)>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base[from..to]`
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`
    Case {
        operand: Option<Box<Expr>>,
        whens: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    /// `EXISTS { MATCH … [WHERE …] }` or `EXISTS (pattern)`
    ExistsSubquery(Vec<PathPattern>, Option<Box<Expr>>),
    /// `expr IS NULL` / `IS NOT NULL`
    IsNull(Box<Expr>, bool),
    /// `[x IN list WHERE pred | map]` list comprehension
    ListComp {
        var: String,
        list: Box<Expr>,
        filter: Option<Box<Expr>>,
        map: Option<Box<Expr>>,
    },
}

impl Expr {
    /// A readable reconstruction used for implicit column names.
    pub fn display_name(&self) -> String {
        match self {
            Expr::Var(v) => v.clone(),
            Expr::Prop(base, key) => format!("{}.{}", base.display_name(), key),
            Expr::Func { name, .. } => format!("{name}(…)"),
            Expr::CountStar => "count(*)".to_string(),
            Expr::Literal(v) => v.to_string(),
            Expr::Param(p) => format!("${p}"),
            _ => "expr".to_string(),
        }
    }

    /// Collect variable references (free variables) into `out`.
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Prop(b, _) | Expr::HasLabel(b, _) | Expr::Unary(_, b) | Expr::IsNull(b, _) => {
                b.collect_vars(out)
            }
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Expr::ListLit(items) => {
                for i in items {
                    i.collect_vars(out);
                }
            }
            Expr::MapLit(entries) => {
                for (_, v) in entries {
                    v.collect_vars(out);
                }
            }
            Expr::Index(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Slice(a, f, t) => {
                a.collect_vars(out);
                if let Some(f) = f {
                    f.collect_vars(out);
                }
                if let Some(t) = t {
                    t.collect_vars(out);
                }
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                if let Some(o) = operand {
                    o.collect_vars(out);
                }
                for (w, t) in whens {
                    w.collect_vars(out);
                    t.collect_vars(out);
                }
                if let Some(e) = else_ {
                    e.collect_vars(out);
                }
            }
            Expr::ExistsSubquery(patterns, where_) => {
                for p in patterns {
                    for (_, e) in p.start.props.iter().chain(
                        p.segments
                            .iter()
                            .flat_map(|(r, n)| r.props.iter().chain(n.props.iter())),
                    ) {
                        e.collect_vars(out);
                    }
                    if let Some(v) = &p.start.var {
                        out.push(v.clone());
                    }
                    for (r, n) in &p.segments {
                        if let Some(v) = &r.var {
                            out.push(v.clone());
                        }
                        if let Some(v) = &n.var {
                            out.push(v.clone());
                        }
                    }
                }
                if let Some(w) = where_ {
                    w.collect_vars(out);
                }
            }
            Expr::ListComp {
                list, filter, map, ..
            } => {
                list.collect_vars(out);
                if let Some(f) = filter {
                    f.collect_vars(out);
                }
                if let Some(m) = map {
                    m.collect_vars(out);
                }
            }
            Expr::Literal(_) | Expr::Param(_) | Expr::CountStar => {}
        }
    }

    /// Whether the expression contains an aggregate function call. Drives
    /// grouping in `WITH`/`RETURN` projections.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Func { name, args, .. } => {
                crate::functions::is_aggregate(name) || args.iter().any(Expr::has_aggregate)
            }
            Expr::Prop(b, _) | Expr::HasLabel(b, _) | Expr::Unary(_, b) | Expr::IsNull(b, _) => {
                b.has_aggregate()
            }
            Expr::Binary(_, a, b) => a.has_aggregate() || b.has_aggregate(),
            Expr::ListLit(items) => items.iter().any(Expr::has_aggregate),
            Expr::MapLit(entries) => entries.iter().any(|(_, v)| v.has_aggregate()),
            Expr::Index(a, b) => a.has_aggregate() || b.has_aggregate(),
            Expr::Slice(a, f, t) => {
                a.has_aggregate()
                    || f.as_ref().map(|e| e.has_aggregate()).unwrap_or(false)
                    || t.as_ref().map(|e| e.has_aggregate()).unwrap_or(false)
            }
            Expr::Case {
                operand,
                whens,
                else_,
            } => {
                operand.as_ref().map(|e| e.has_aggregate()).unwrap_or(false)
                    || whens
                        .iter()
                        .any(|(w, t)| w.has_aggregate() || t.has_aggregate())
                    || else_.as_ref().map(|e| e.has_aggregate()).unwrap_or(false)
            }
            _ => false,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Pow,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Xor,
    In,
    StartsWith,
    EndsWith,
    Contains,
}
