//! Batch-at-a-time pattern matching (planner v4).
//!
//! The reference executor ([`crate::pattern::match_patterns`]) recurses
//! one seed row at a time: each seed re-plans the join order, re-runs
//! `start_candidates` and walks its own DFS. This module instead runs
//! **operator stages over candidate batches**: all seed rows that share a
//! plan advance together through one `Seed` stage and one `Expand` stage
//! per segment, so stage-level work can be shared across the whole batch:
//!
//! * the **seed candidate vector** is computed once per batch when the
//!   path's access decision cannot observe any binding a seed row carries
//!   (no transition variables, no pushed operand referencing a bound
//!   variable);
//! * **hop expansions are memoized per source node** within a stage when
//!   the relationship pattern is seed-independent — the common star-join
//!   shape where many intermediate rows fan into the same hub re-uses one
//!   adjacency scan (plus its index-vs-adjacency serve decision) instead
//!   of recomputing it per row;
//! * **target-node pattern checks are memoized per node** under the same
//!   kind of gate — a hub's label/prop conformance is decided once per
//!   stage, not once per incoming row.
//!
//! Sharing is gated on a **liveness analysis**: a stage input is shared
//! only if none of the variables the stage's planning consults (pattern
//! variables, transition-variable labels, free variables of inline props
//! and pushed-down operands) is bound in *any* batched row at that stage.
//! The live set is computed statically — a name is bound in some row at a
//! stage iff it is bound in some *seed* row or it is a pattern variable
//! of an already-traversed position — so the gates cost O(pattern), not
//! O(batch), per stage. An operand referencing a variable bound in no row
//! fails evaluation identically for every row, so the per-row fallbacks
//! also agree.
//!
//! **Equivalence to the reference executor** (exercised by the
//! differential fuzzer's executor-twin panel): stages process rows in
//! order and append candidates in enumeration order, so the stage-wise
//! (BFS) leaf order equals the reference DFS leaf order — both are the
//! lexicographic order of per-level candidate indices. Variable-length
//! segments do not batch (their DFS interleaves depths); a plan group
//! containing one falls back to the reference path per seed, as does a
//! singleton group (nothing to share).

use crate::ast::{Expr, NodePattern, PathPattern, RelPattern};
use crate::error::Result;
use crate::expr::{eval, EvalCtx};
use crate::pattern::{
    extract_pushdowns, hop_candidates, match_patterns, node_matches, plan_patterns,
    start_candidates, MatchState, Pushdowns,
};
use crate::physical::{plan_parallelism, plan_path, ParallelPlan, MORSEL_SIZE};
use crate::row::Row;
use pg_graph::{NodeId, Value};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The executor's parallelism knobs, resolved once per query (see
/// [`crate::exec::Executor::with_thread_limit`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParallelCfg {
    /// Worker-degree ceiling (`PG_THREADS` / `available_parallelism`);
    /// clamps scheduling width only, never the morselize decision.
    pub threads: usize,
    /// Estimated-join-output-rows floor for morselization — normally
    /// [`crate::physical::PARALLEL_ROW_THRESHOLD`], overridable so tests
    /// can force the parallel path on small fixtures.
    pub threshold: f64,
}

/// Match `patterns` for every seed row, returning the matches **per
/// seed** (the caller owns `OPTIONAL MATCH` null-binding, which is a
/// per-seed decision). Row-for-row identical to calling
/// [`match_patterns`] on each seed; batches only where sharing is sound,
/// and morselizes a batch across worker threads when the cost model
/// says the join output is large enough ([`plan_parallelism`]).
pub(crate) fn match_patterns_batch(
    ctx: &EvalCtx<'_>,
    seeds: &[Row],
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    par: &ParallelCfg,
) -> Result<Vec<Vec<Row>>> {
    let pushed = extract_pushdowns(where_clause);
    let plans: Vec<Vec<PathPattern>> = seeds
        .iter()
        .map(|s| plan_patterns(ctx, s, patterns, &pushed))
        .collect();
    let mut out: Vec<Vec<Row>> = Vec::with_capacity(seeds.len());
    let mut i = 0;
    while i < seeds.len() {
        let mut j = i + 1;
        while j < seeds.len() && plans[j] == plans[i] {
            j += 1;
        }
        let group = &seeds[i..j];
        let var_length = plans[i]
            .iter()
            .any(|p| p.segments.iter().any(|(r, _)| r.hops.is_some()));
        if group.len() == 1 || var_length {
            for seed in group {
                out.push(match_patterns(ctx, seed, patterns, where_clause, None)?);
            }
        } else {
            let est = group_est_rows(ctx, group, &plans[i], &pushed);
            // Pin only once the cost gate passes — pinning is cheap but
            // not free, and most groups are small.
            let snap = (est >= par.threshold)
                .then(|| ctx.view.parallel_snapshot())
                .flatten();
            let decision = plan_parallelism(
                group.len(),
                var_length,
                est,
                snap.is_some(),
                par.threads,
                par.threshold,
            );
            match decision {
                ParallelPlan::Parallel { degree, .. } => {
                    out.extend(run_group_morselized(
                        ctx,
                        group,
                        &plans[i],
                        where_clause,
                        &pushed,
                        degree,
                        &snap.expect("Parallel decision implies a pinned view"),
                    )?);
                }
                ParallelPlan::Serial(_) => {
                    out.extend(run_group(ctx, group, &plans[i], where_clause, &pushed)?);
                }
            }
        }
        i = j;
    }
    Ok(out)
}

/// Estimated join-output rows of one plan-equal group: the group size
/// times the product of each planned path's degree-statistics estimate
/// (see [`plan_path`]), evaluated against the group's representative
/// (first) seed row. Unlabeled source positions whose variable the
/// representative row binds to a concrete node borrow that node's stored
/// labels for the fanout lookup — at runtime the binding is real, so the
/// hint is exact where `EXPLAIN`'s plan-time `Null` representative can
/// only guess.
fn group_est_rows(
    ctx: &EvalCtx<'_>,
    group: &[Row],
    planned: &[PathPattern],
    pushed: &Pushdowns,
) -> f64 {
    let rep = &group[0];
    let mut hints: HashMap<String, Vec<String>> = HashMap::new();
    for path in planned {
        let mut note = |np: &NodePattern| {
            if let (Some(v), true) = (&np.var, np.labels.is_empty()) {
                if let Some(Value::Node(id)) = rep.get(v) {
                    hints
                        .entry(v.clone())
                        .or_insert_with(|| ctx.view.node_labels(*id));
                }
            }
        };
        note(&path.start);
        for (_, np) in &path.segments {
            note(np);
        }
    }
    let mut est = group.len() as f64;
    for path in planned {
        est *= plan_path(ctx, rep, path, pushed, &hints).est_rows();
    }
    est
}

/// One morsel's result slot: `None` until a worker claims and finishes
/// the morsel at that ordinal.
type MorselSlot = Mutex<Option<Result<Vec<Vec<Row>>>>>;

/// Morsel-driven execution of one plan-equal group: split the seeds into
/// [`MORSEL_SIZE`] chunks, drain the chunks through a shared claim
/// counter with `degree` scoped workers against a pinned snapshot, and
/// concatenate the per-morsel outputs in morsel order.
///
/// **Determinism.** [`run_group`]'s output for a seed depends only on
/// the seed row and the pinned state, never on which other seeds share
/// its batch (memo gates only *reuse* results that per-row evaluation
/// would reproduce). So per-morsel outputs concatenated in morsel
/// ordinal order equal the serial group output row-for-row — and since
/// the chunk boundaries don't depend on `degree`, every thread count
/// produces byte-identical rows *and* identical index-probe totals.
/// `degree == 1` skips the snapshot and runs the same morsels inline on
/// the caller's context.
///
/// **Errors.** Workers always drain the whole queue; the merge returns
/// the error of the lowest-ordinal failed morsel — the same error the
/// serial path would have hit first.
#[allow(clippy::too_many_arguments)]
fn run_group_morselized(
    ctx: &EvalCtx<'_>,
    seeds: &[Row],
    planned: &[PathPattern],
    where_clause: Option<&Expr>,
    pushed: &Pushdowns,
    degree: usize,
    snap: &pg_graph::Snapshot,
) -> Result<Vec<Vec<Row>>> {
    let morsels: Vec<&[Row]> = seeds.chunks(MORSEL_SIZE).collect();
    if degree <= 1 {
        let mut out = Vec::with_capacity(seeds.len());
        for m in &morsels {
            out.extend(run_group(ctx, m, planned, where_clause, pushed)?);
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<MorselSlot> = morsels.iter().map(|_| Mutex::new(None)).collect();
    // Workers share only `Sync` state: the pinned snapshot, the claim
    // counter, the morsel list, and the result slots. (`ctx` itself
    // holds a non-`Sync` `&dyn GraphView` and stays on this thread.)
    let (params, now_ms) = (ctx.params, ctx.now_ms);
    {
        let (next, slots, morsels) = (&next, &slots, &morsels);
        std::thread::scope(|scope| {
            for _ in 0..degree {
                scope.spawn(move || {
                    let wctx = EvalCtx::new(snap, params, now_ms);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(morsel) = morsels.get(i) else {
                            break;
                        };
                        let r = run_group(&wctx, morsel, planned, where_clause, pushed);
                        *slots[i].lock().expect("morsel slot poisoned") = Some(r);
                    }
                });
            }
        });
    }
    // The workers counted probes on the snapshot's own counters; fold
    // them back so totals match a serial run of the same morsels.
    ctx.view.absorb_probes(snap.index_probes());
    let mut out = Vec::with_capacity(seeds.len());
    for slot in slots {
        let result = slot
            .into_inner()
            .expect("morsel slot poisoned")
            .expect("scope joined every worker, every morsel was claimed");
        out.extend(result?);
    }
    Ok(out)
}

/// Stage-wise execution of one plan over a batch of seed rows.
fn run_group(
    ctx: &EvalCtx<'_>,
    seeds: &[Row],
    planned: &[PathPattern],
    where_clause: Option<&Expr>,
    pushed: &Pushdowns,
) -> Result<Vec<Vec<Row>>> {
    // The static live set: names bound in any seed row, extended with
    // every pattern variable as its position is traversed (an unbound
    // position binds unconditionally, so after its stage the name is
    // live in every surviving state).
    let mut live: HashSet<String> = HashSet::new();
    for s in seeds {
        live.extend(s.names().cloned());
    }

    // (seed index, in-progress match) — the batch the stages flow over.
    let mut states: Vec<(usize, MatchState)> = seeds
        .iter()
        .enumerate()
        .map(|(si, s)| {
            (
                si,
                MatchState {
                    row: s.clone(),
                    used: Vec::new(),
                },
            )
        })
        .collect();

    for path in planned {
        // ---- Seed stage: anchor candidates per surviving state ----
        let shared: Option<Vec<NodeId>> = if start_shareable(path, pushed, &live) {
            Some(start_candidates(ctx, &states[0].1.row, path, pushed)?)
        } else {
            None
        };
        let mut nmemo: Option<HashMap<NodeId, bool>> =
            node_shareable(&path.start, &live).then(HashMap::new);
        // States now also carry the node the path walk is currently at.
        let mut cur: Vec<(usize, MatchState, NodeId)> = Vec::new();
        for (si, st) in &states {
            let owned;
            let cands: &[NodeId] = match &shared {
                Some(c) => c,
                None => {
                    owned = start_candidates(ctx, &st.row, path, pushed)?;
                    &owned
                }
            };
            for &cand in cands {
                let ok = match &mut nmemo {
                    Some(memo) => match memo.get(&cand) {
                        Some(&ok) => ok,
                        None => {
                            let ok = node_matches(ctx, &st.row, cand, &path.start)?;
                            memo.insert(cand, ok);
                            ok
                        }
                    },
                    None => node_matches(ctx, &st.row, cand, &path.start)?,
                };
                if !ok {
                    continue;
                }
                let mut st2 = st.clone();
                if let Some(v) = &path.start.var {
                    if let Some(bound) = st2.row.get(v) {
                        if bound.eq3(&Value::Node(cand)) != Some(true) {
                            continue;
                        }
                    } else {
                        st2.row.set(v.clone(), Value::Node(cand));
                    }
                }
                cur.push((*si, st2, cand));
            }
        }
        if let Some(v) = &path.start.var {
            live.insert(v.clone());
        }

        // ---- Expand stages: one per segment, whole batch at a time ----
        for (rel_pat, node_pat) in &path.segments {
            let memoize = hop_shareable(rel_pat, pushed, &live);
            let mut memo: HashMap<NodeId, Vec<(pg_graph::RelId, NodeId)>> = HashMap::new();
            let mut nmemo: Option<HashMap<NodeId, bool>> =
                node_shareable(node_pat, &live).then(HashMap::new);
            let mut next: Vec<(usize, MatchState, NodeId)> = Vec::new();
            for (si, st, at) in &cur {
                let owned;
                let cands: &[(pg_graph::RelId, NodeId)] = if memoize {
                    if !memo.contains_key(at) {
                        let c = hop_candidates(ctx, &st.row, *at, rel_pat, pushed)?;
                        memo.insert(*at, c);
                    }
                    &memo[at]
                } else {
                    owned = hop_candidates(ctx, &st.row, *at, rel_pat, pushed)?;
                    &owned
                };
                for (rid, other) in cands {
                    if st.used.contains(rid) {
                        continue;
                    }
                    let ok = match &mut nmemo {
                        Some(memo) => match memo.get(other) {
                            Some(&ok) => ok,
                            None => {
                                let ok = node_matches(ctx, &st.row, *other, node_pat)?;
                                memo.insert(*other, ok);
                                ok
                            }
                        },
                        None => node_matches(ctx, &st.row, *other, node_pat)?,
                    };
                    if !ok {
                        continue;
                    }
                    let mut st2 = st.clone();
                    st2.used.push(*rid);
                    if let Some(v) = &rel_pat.var {
                        if let Some(bound) = st2.row.get(v) {
                            if bound.eq3(&Value::Rel(*rid)) != Some(true) {
                                continue;
                            }
                        } else {
                            st2.row.set(v.clone(), Value::Rel(*rid));
                        }
                    }
                    if let Some(v) = &node_pat.var {
                        if let Some(bound) = st2.row.get(v) {
                            if bound.eq3(&Value::Node(*other)) != Some(true) {
                                continue;
                            }
                        } else {
                            st2.row.set(v.clone(), Value::Node(*other));
                        }
                    }
                    next.push((*si, st2, *other));
                }
            }
            if let Some(v) = &rel_pat.var {
                live.insert(v.clone());
            }
            if let Some(v) = &node_pat.var {
                live.insert(v.clone());
            }
            cur = next;
        }

        states = cur.into_iter().map(|(si, st, _)| (si, st)).collect();
        if states.is_empty() {
            break;
        }
    }

    // ---- Filter stage: residual WHERE, regrouped per seed ----
    let mut out: Vec<Vec<Row>> = vec![Vec::new(); seeds.len()];
    for (si, st) in states {
        if let Some(w) = where_clause {
            if !eval(ctx, &st.row, w)?.is_truthy() {
                continue;
            }
        }
        out[si].push(st.row);
    }
    Ok(out)
}

/// Free variables of every pushed-down operand of `var`.
fn pushed_expr_vars(var: Option<&String>, pushed: &Pushdowns, out: &mut Vec<String>) {
    let Some(p) = var.and_then(|v| pushed.get(v)) else {
        return;
    };
    for (_, e) in &p.eqs {
        e.collect_vars(out);
    }
    for (_, _, e) in &p.ranges {
        e.collect_vars(out);
    }
    for (_, e) in &p.prefixes {
        e.collect_vars(out);
    }
}

/// Whether [`start_candidates`] is row-independent for this batch: none
/// of the names its access decision consults — the anchor variable, its
/// labels (transition-variable check), the free variables of its inline
/// props and pushdowns, and the same for the first segment's relationship
/// (a rel extent may seed the anchor) — is live in any batched row.
fn start_shareable(path: &PathPattern, pushed: &Pushdowns, live: &HashSet<String>) -> bool {
    if live.is_empty() {
        return true;
    }
    let mut names: Vec<String> = Vec::new();
    names.extend(path.start.var.iter().cloned());
    names.extend(path.start.labels.iter().cloned());
    for (_, e) in &path.start.props {
        e.collect_vars(&mut names);
    }
    pushed_expr_vars(path.start.var.as_ref(), pushed, &mut names);
    if let Some((rel_pat, _)) = path.segments.first() {
        names.extend(rel_pat.var.iter().cloned());
        for (_, e) in &rel_pat.props {
            e.collect_vars(&mut names);
        }
        pushed_expr_vars(rel_pat.var.as_ref(), pushed, &mut names);
    }
    names.iter().all(|n| !live.contains(n))
}

/// Whether [`hop_candidates`] depends only on the source node for this
/// batch: the relationship variable is unbound everywhere (no pre-bound
/// rel fast path) and no inline prop or pushdown operand reads a live
/// variable.
fn hop_shareable(rel_pat: &RelPattern, pushed: &Pushdowns, live: &HashSet<String>) -> bool {
    if live.is_empty() {
        return true;
    }
    let mut names: Vec<String> = Vec::new();
    names.extend(rel_pat.var.iter().cloned());
    for (_, e) in &rel_pat.props {
        e.collect_vars(&mut names);
    }
    pushed_expr_vars(rel_pat.var.as_ref(), pushed, &mut names);
    names.iter().all(|n| !live.contains(n))
}

/// Whether [`node_matches`] depends only on the candidate node for this
/// batch: no label doubles as a live transition variable and no inline
/// prop expression reads a live variable. (The pattern's own `var` is
/// irrelevant — `node_matches` never consults it; the bound-variable
/// equality check stays per state, outside the memo.)
fn node_shareable(np: &NodePattern, live: &HashSet<String>) -> bool {
    if live.is_empty() {
        return true;
    }
    let mut names: Vec<String> = Vec::new();
    names.extend(np.labels.iter().cloned());
    for (_, e) in &np.props {
        e.collect_vars(&mut names);
    }
    names.iter().all(|n| !live.contains(n))
}
