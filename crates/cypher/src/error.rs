//! Error types for the query layer.

use pg_graph::GraphError;
use std::fmt;

/// Errors from lexing, parsing, or executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum CypherError {
    /// Lexical error at a byte offset.
    Lex { pos: usize, msg: String },
    /// Parse error at a byte offset.
    Parse { pos: usize, msg: String },
    /// Runtime type error or misuse (e.g. property access on an integer).
    Type(String),
    /// Reference to an unbound variable.
    UnboundVariable(String),
    /// A write clause was executed against a read-only target (condition
    /// evaluation, pre-state views).
    ReadOnly(&'static str),
    /// Explicit `ABORT` raised by a query or trigger statement.
    Aborted(String),
    /// Arithmetic failure (division by zero, invalid operand types).
    Arithmetic(String),
    /// Unknown function.
    UnknownFunction(String),
    /// An underlying store error (constraint violations, write-policy
    /// rejections, …).
    Store(GraphError),
}

impl CypherError {
    pub fn lex(pos: usize, msg: impl Into<String>) -> Self {
        CypherError::Lex {
            pos,
            msg: msg.into(),
        }
    }

    pub fn parse(pos: usize, msg: impl Into<String>) -> Self {
        CypherError::Parse {
            pos,
            msg: msg.into(),
        }
    }

    pub fn type_err(msg: impl Into<String>) -> Self {
        CypherError::Type(msg.into())
    }
}

impl fmt::Display for CypherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CypherError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            CypherError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            CypherError::Type(msg) => write!(f, "type error: {msg}"),
            CypherError::UnboundVariable(v) => write!(f, "unbound variable '{v}'"),
            CypherError::ReadOnly(what) => write!(f, "{what} not allowed in read-only context"),
            CypherError::Aborted(msg) => write!(f, "aborted: {msg}"),
            CypherError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            CypherError::UnknownFunction(name) => write!(f, "unknown function '{name}'"),
            CypherError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for CypherError {}

impl From<GraphError> for CypherError {
    fn from(e: GraphError) -> Self {
        CypherError::Store(e)
    }
}

/// Result alias for query operations.
pub type Result<T> = std::result::Result<T, CypherError>;
