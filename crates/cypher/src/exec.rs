//! Clause-pipeline execution, including updating clauses and projections.
//!
//! ## Top-k (`ORDER BY … LIMIT k`) execution — planner v3
//!
//! Two optimizations make the paper's §6.2.3 relocation shape
//! (`WITH ct, c, hc, pn ORDER BY ct.distance LIMIT 1`) cheap:
//!
//! 1. **Bounded top-k selection.** A projection with `ORDER BY` *and* a
//!    constant `LIMIT` keeps only the best `SKIP + LIMIT` rows in a
//!    bounded heap (O(n log k)) instead of sorting every row. The input
//!    index is the final tiebreaker, so the result is identical to the
//!    stable full sort it replaces.
//! 2. **Index-served top-k.** A non-optional `MATCH` directly followed by
//!    `WITH`/`RETURN … ORDER BY var.k1 [, var.k2, …] LIMIT k`, where `var`
//!    is a node or single-hop relationship variable of the pattern, is
//!    *fused*: candidates are enumerated straight from an ordered index
//!    walk and matching stops as soon as `SKIP + LIMIT` rows were
//!    produced — O(log n + k) for selective patterns. Walk strategies,
//!    tried in order per binding site:
//!
//!    * a **composite walk** over a `(label, [c1, c2, …])` definition that
//!      contains the order keys as a contiguous run
//!      ([`GraphView::nodes_in_composite_order`] /
//!      [`GraphView::rels_in_composite_order`]); columns *before* the run
//!      are **pinned** to equality conjuncts whose operands evaluate
//!      without row bindings (the §6.2.3 relocation shape with a status
//!      filter: `{status: 'ICU'} … ORDER BY severity LIMIT 1`). Composite
//!      entries key absent properties on an explicit missing marker, so
//!      these walks cover the whole extent — both directions fuse (NULL
//!      last ascending, first descending) and no NULL tail is needed;
//!    * for single-key orders, the plain ordered walk of the `(label,
//!      key)` index ([`GraphView::nodes_in_prop_order`] /
//!      [`GraphView::rels_in_prop_order`]); items without the property
//!      are appended from the extent after the walk when ascending.
//!
//!    The fusion *declines* (falls back to the heap path, never changing
//!    results) when: the projection aggregates, uses `DISTINCT` or a
//!    post-`WITH WHERE`; an order key is not a plain `var.key` (after
//!    alias resolution); the order keys span more than one variable or
//!    mix ascending and descending; `var` is already bound in a seed row;
//!    a candidate label is shadowed by a transition variable; no index
//!    covers every stored value (lossy numerics, NaN, lists); a
//!    *single-key* order is descending while property-less items exist
//!    (their `NULL` keys would have to lead); a multi-key order has no
//!    composite definition carrying the keys as a contiguous run behind
//!    evaluable pins; the walk exhausts its `TOPK_WALK_BUDGET` candidates
//!    without producing enough rows; or `SKIP + LIMIT` exceeds
//!    `TOPK_FUSE_MAX`. Ties at the cut-off may legitimately resolve
//!    differently than the sort path — the *multiset of order keys* is
//!    always identical.

use crate::ast::*;
use crate::error::{CypherError, Result};
use crate::expr::{eval, EvalCtx};
use crate::functions::{is_aggregate, Accumulator};
use crate::pattern::{extract_pushdowns, match_patterns, pattern_vars, Pushdowns};
use crate::plan::{composite_pin, plan_topk_projection, TopKSpec};
use crate::row::{Params, QueryOutput, Row};
use pg_graph::{Direction, Graph, GraphView, NodeId, PropertyMap, RelId, Value};
use std::cmp::Ordering;
use std::collections::HashSet;

/// Compare two keyed rows by the `ORDER BY` spec, breaking full ties by
/// input index — the total order a stable sort + truncate would produce.
fn order_cmp(
    order_by: &[(Expr, bool)],
    a: &(Vec<Value>, usize, Row),
    b: &(Vec<Value>, usize, Row),
) -> Ordering {
    for (i, (_, asc)) in order_by.iter().enumerate() {
        let ord = a.0[i].cmp_order(&b.0[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.1.cmp(&b.1)
}

/// Bounded top-k selection: keeps the `keep` smallest keyed rows under
/// [`order_cmp`] in a max-heap (worst kept row at the root), O(n log k).
struct TopKRows<'o> {
    order_by: &'o [(Expr, bool)],
    keep: usize,
    heap: Vec<(Vec<Value>, usize, Row)>,
}

impl<'o> TopKRows<'o> {
    fn new(order_by: &'o [(Expr, bool)], keep: usize) -> Self {
        TopKRows {
            order_by,
            keep,
            heap: Vec::with_capacity(keep.min(1024)),
        }
    }

    fn push(&mut self, item: (Vec<Value>, usize, Row)) {
        if self.keep == 0 {
            return;
        }
        if self.heap.len() < self.keep {
            self.heap.push(item);
            self.sift_up(self.heap.len() - 1);
        } else if order_cmp(self.order_by, &item, &self.heap[0]) == Ordering::Less {
            self.heap[0] = item;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if order_cmp(self.order_by, &self.heap[i], &self.heap[parent]) == Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut m = i;
            if l < self.heap.len()
                && order_cmp(self.order_by, &self.heap[l], &self.heap[m]) == Ordering::Greater
            {
                m = l;
            }
            if r < self.heap.len()
                && order_cmp(self.order_by, &self.heap[r], &self.heap[m]) == Ordering::Greater
            {
                m = r;
            }
            if m == i {
                break;
            }
            self.heap.swap(i, m);
            i = m;
        }
    }

    fn into_sorted_rows(self) -> Vec<Row> {
        let TopKRows {
            order_by, mut heap, ..
        } = self;
        heap.sort_unstable_by(|a, b| order_cmp(order_by, a, b));
        heap.into_iter().map(|(_, _, r)| r).collect()
    }
}

/// Ceiling on ordered-walk candidates examined per fused top-k before the
/// fusion bails back to the heap path: a walk that keeps *matching
/// nothing* (a selective pattern elsewhere, an empty seed set after
/// filtering) must not degrade into a full index walk with a per-item
/// re-match on the trigger hot path.
const TOPK_WALK_BUDGET: usize = 4096;

/// Which composite catalog a per-seed re-pinned top-k walk probes.
#[derive(Clone, Copy)]
enum CompositeSite<'p> {
    Node { label: &'p str },
    Rel { rel_type: &'p str },
}

/// The execution target: a mutable graph (full query power) or a read-only
/// view (conditions, pre-state evaluation). Updating clauses against a
/// read-only target fail with [`CypherError::ReadOnly`].
pub enum Target<'a> {
    Write(&'a mut Graph),
    Read(&'a dyn GraphView),
}

/// How `MATCH` drives the pattern matcher. [`MatchMode::Batched`] (the
/// default) flows all seed rows through the stage-wise executor of
/// [`crate::batch`], sharing seed-candidate vectors and memoizing hop
/// expansions where the liveness analysis allows;
/// [`MatchMode::Reference`] recurses one seed row at a time — kept as the
/// differential-testing oracle. Both produce identical rows in identical
/// order. `MERGE` and `EXISTS` always use the reference path (single-seed
/// / existence-capped — batching has nothing to share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    #[default]
    Batched,
    Reference,
}

/// Resolve the worker-thread ceiling for morsel-driven execution:
/// an explicit [`Executor::with_thread_limit`] wins, then the
/// `PG_THREADS` environment variable, then the machine's available
/// parallelism; always at least 1. Pure so the precedence is testable
/// without mutating the process environment.
pub(crate) fn resolve_thread_limit(
    explicit: Option<usize>,
    env: Option<usize>,
    hardware: usize,
) -> usize {
    explicit.or(env).unwrap_or(hardware).max(1)
}

/// The process-wide thread ceiling: `PG_THREADS` (when set to a positive
/// integer) or the machine's available parallelism.
pub(crate) fn default_thread_limit() -> usize {
    let env = std::env::var("PG_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    resolve_thread_limit(None, env, hardware)
}

/// Executes a parsed query over a target.
pub struct Executor<'a> {
    target: Target<'a>,
    params: &'a Params,
    now_ms: i64,
    match_mode: MatchMode,
    /// Worker-degree ceiling for morsel-driven `MATCH` execution;
    /// `None` = `PG_THREADS` / available parallelism.
    thread_limit: Option<usize>,
    /// Estimated-rows floor for morselization; `None` = the documented
    /// [`crate::physical::PARALLEL_ROW_THRESHOLD`]. Test knob: row order
    /// and probe totals are identical either way, so lowering it merely
    /// forces the parallel machinery onto small fixtures.
    parallel_threshold: Option<f64>,
}

impl<'a> Executor<'a> {
    pub fn new(target: Target<'a>, params: &'a Params, now_ms: i64) -> Self {
        Executor {
            target,
            params,
            now_ms,
            match_mode: MatchMode::default(),
            thread_limit: None,
            parallel_threshold: None,
        }
    }

    /// Select the `MATCH` execution strategy (defaults to
    /// [`MatchMode::Batched`]).
    pub fn with_match_mode(mut self, mode: MatchMode) -> Self {
        self.match_mode = mode;
        self
    }

    /// Cap the worker degree of morsel-driven `MATCH` execution
    /// (overrides `PG_THREADS` and the machine's parallelism; clamped to
    /// at least 1). Results are byte-identical for every limit.
    pub fn with_thread_limit(mut self, threads: usize) -> Self {
        self.thread_limit = Some(threads.max(1));
        self
    }

    /// Override the estimated-rows floor for morselization (test knob).
    pub fn with_parallel_threshold(mut self, threshold: f64) -> Self {
        self.parallel_threshold = Some(threshold);
        self
    }

    /// The parallelism knobs handed to the batch matcher.
    fn parallel_cfg(&self) -> crate::batch::ParallelCfg {
        crate::batch::ParallelCfg {
            threads: self.thread_limit.unwrap_or_else(default_thread_limit),
            threshold: self
                .parallel_threshold
                .unwrap_or(crate::physical::PARALLEL_ROW_THRESHOLD),
        }
    }

    fn view(&self) -> &dyn GraphView {
        match &self.target {
            Target::Write(g) => *g as &dyn GraphView,
            Target::Read(v) => *v,
        }
    }

    fn graph_mut(&mut self, what: &'static str) -> Result<&mut Graph> {
        match &mut self.target {
            Target::Write(g) => Ok(g),
            Target::Read(_) => Err(CypherError::ReadOnly(what)),
        }
    }

    /// Run the query from the given seed rows (an empty seed list means one
    /// empty row, i.e. a fresh pipeline).
    pub fn run(&mut self, query: &Query, seeds: Vec<Row>) -> Result<QueryOutput> {
        let mut rows = if seeds.is_empty() {
            vec![Row::new()]
        } else {
            seeds
        };
        let mut output: Option<(Vec<String>, Vec<Row>)> = None;
        rows = self.run_clauses(&query.clauses, rows, &mut output)?;
        let mut qo = QueryOutput {
            bindings: rows,
            ..QueryOutput::default()
        };
        if let Some((columns, out_rows)) = output {
            qo.rows = out_rows
                .iter()
                .map(|r| {
                    columns
                        .iter()
                        .map(|c| r.get(c).cloned().unwrap_or(Value::Null))
                        .collect()
                })
                .collect();
            qo.columns = columns;
        }
        Ok(qo)
    }

    fn run_clauses(
        &mut self,
        clauses: &[Clause],
        mut rows: Vec<Row>,
        output: &mut Option<(Vec<String>, Vec<Row>)>,
    ) -> Result<Vec<Row>> {
        let mut i = 0;
        while i < clauses.len() {
            // Fuse MATCH + WITH/RETURN `ORDER BY var.key LIMIT k` into an
            // ordered index walk with early exit (see module docs).
            if let Clause::Match {
                optional: false,
                patterns,
                where_clause,
            } = &clauses[i]
            {
                let next_proj = match clauses.get(i + 1) {
                    Some(Clause::With(p)) => Some((p, false)),
                    Some(Clause::Return(p)) => Some((p, true)),
                    _ => None,
                };
                if let Some((proj, is_return)) = next_proj {
                    if let Some(matched) =
                        self.try_indexed_topk(patterns, where_clause.as_ref(), proj, &rows)?
                    {
                        let (cols, out) = self.project(proj, matched, !is_return)?;
                        if is_return {
                            *output = Some((cols, out.clone()));
                        }
                        rows = out;
                        i += 2;
                        continue;
                    }
                }
            }
            rows = self.exec_clause(&clauses[i], rows, output)?;
            i += 1;
        }
        Ok(rows)
    }

    /// Drive one ordered walk: for each walked item, bind `spec.var` and
    /// re-match the full pattern under every seed, stopping once
    /// `spec.keep` rows were produced. Returns `false` when the walk
    /// budget ran dry (the caller declines the fusion).
    #[allow(clippy::too_many_arguments)] // threads the whole fusion context
    fn drive_walk(
        &self,
        ctx: &EvalCtx<'_>,
        items: impl Iterator<Item = Value>,
        patterns: &[PathPattern],
        where_clause: Option<&Expr>,
        seeds: &[Row],
        spec: &TopKSpec,
        budget: &mut usize,
        collected: &mut Vec<Row>,
    ) -> Result<bool> {
        for item in items {
            if *budget == 0 {
                return Ok(false);
            }
            *budget -= 1;
            for seed in seeds {
                let mut s2 = seed.clone();
                s2.set(spec.var.clone(), item.clone());
                collected.extend(match_patterns(ctx, &s2, patterns, where_clause, None)?);
            }
            if collected.len() >= spec.keep {
                break;
            }
        }
        Ok(true)
    }

    /// Per-seed **re-pinned** composite walks (planner v4): when the pin
    /// operands reference seed bindings (`{group: g.id} … ORDER BY
    /// severity LIMIT 1` under a `WITH g` pipeline), no single walk
    /// serves every seed — instead each seed row gets its own walk pinned
    /// to *its* evaluated values, producing that seed's top `spec.keep`
    /// rows. The union is a superset of the global top-k (every global
    /// winner is some seed's local winner) and the caller's projection
    /// re-sorts it, so results are unchanged. Declines (`Ok(None)`)
    /// unless **every** seed yields a pinned walk; all walks share the
    /// one `TOPK_WALK_BUDGET`.
    #[allow(clippy::too_many_arguments)] // threads the whole fusion context
    fn drive_per_seed_walks(
        &self,
        ctx: &EvalCtx<'_>,
        site: CompositeSite<'_>,
        seeds: &[Row],
        inline_props: &[(String, Expr)],
        pushed: &Pushdowns,
        spec: &TopKSpec,
        def: &[String],
        patterns: &[PathPattern],
        where_clause: Option<&Expr>,
        budget: &mut usize,
    ) -> Result<Option<Vec<Row>>> {
        // Resolve every seed's pins before driving any walk: a seed whose
        // pins cannot be evaluated forfeits the whole strategy (its rows
        // would silently go missing otherwise).
        let mut all_pins = Vec::with_capacity(seeds.len());
        for seed in seeds {
            let Some(pins) = composite_pin(ctx, seed, inline_props, pushed, spec, def) else {
                return Ok(None);
            };
            all_pins.push(pins);
        }
        let mut out: Vec<Row> = Vec::new();
        for (seed, pins) in seeds.iter().zip(&all_pins) {
            let walk: Box<dyn Iterator<Item = Value> + '_> = match site {
                CompositeSite::Node { label } => {
                    match ctx
                        .view
                        .nodes_in_composite_order(label, def, pins, spec.descending)
                    {
                        Some(w) => Box::new(w.map(Value::Node)),
                        None => return Ok(None),
                    }
                }
                CompositeSite::Rel { rel_type } => {
                    match ctx
                        .view
                        .rels_in_composite_order(rel_type, def, pins, spec.descending)
                    {
                        Some(w) => Box::new(w.map(Value::Rel)),
                        None => return Ok(None),
                    }
                }
            };
            // Each walk collects into its own buffer: `drive_walk` stops
            // at `spec.keep` rows, and the stop must be per seed, not
            // across the whole union.
            let mut rows: Vec<Row> = Vec::new();
            if !self.drive_walk(
                ctx,
                walk,
                patterns,
                where_clause,
                std::slice::from_ref(seed),
                spec,
                budget,
                &mut rows,
            )? {
                return Ok(None);
            }
            out.extend(rows);
        }
        Ok(Some(out))
    }

    /// Execute a fused index-served top-k `MATCH`; returns the matched
    /// binding rows (a superset of the final top-k, in order-key order) or
    /// `None` when fusion declined — including when the walk exhausted its
    /// candidate budget — and the caller must run the clauses separately.
    ///
    /// Per binding site of `var`, composite walks are tried first
    /// (optionally pinned to an equality prefix; they cover missing
    /// values via the explicit marker, so they serve both directions and
    /// need no NULL tail), then — for single-key orders — the plain
    /// ordered index walk with its NULL-tail/descending rules.
    fn try_indexed_topk(
        &self,
        patterns: &[PathPattern],
        where_clause: Option<&Expr>,
        proj: &Projection,
        seeds: &[Row],
    ) -> Result<Option<Vec<Row>>> {
        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
        let Some(spec) = plan_topk_projection(&ctx, proj, seeds)? else {
            return Ok(None);
        };
        let pushed = extract_pushdowns(where_clause);
        let mut budget = TOPK_WALK_BUDGET;
        let mut collected: Vec<Row> = Vec::new();
        // Try every binding site of `var` in the patterns until one offers
        // a complete ordered walk; the walk is constructed exactly once
        // and consumed directly.
        for p in patterns {
            // Node route: a node pattern position named `var`.
            for np in std::iter::once(&p.start).chain(p.segments.iter().map(|(_, n)| n)) {
                if np.var.as_deref() != Some(spec.var.as_str()) {
                    continue;
                }
                for label in &np.labels {
                    // a transition-variable label is not a stored extent
                    if seeds.iter().any(|r| r.contains(label)) {
                        continue;
                    }
                    // Composite walks, pinned or plain: one walk shared by
                    // every seed when the pins evaluate without row
                    // bindings, else one **re-pinned walk per seed row**
                    // (the pin operand reads the seed's own bindings).
                    let empty = Row::new();
                    for def in ctx.view.node_composite_defs(label) {
                        if let Some(pins) =
                            composite_pin(&ctx, &empty, &np.props, &pushed, &spec, &def)
                        {
                            let Some(walk) = ctx.view.nodes_in_composite_order(
                                label,
                                &def,
                                &pins,
                                spec.descending,
                            ) else {
                                continue;
                            };
                            if !self.drive_walk(
                                &ctx,
                                walk.map(Value::Node),
                                patterns,
                                where_clause,
                                seeds,
                                &spec,
                                &mut budget,
                                &mut collected,
                            )? {
                                return Ok(None);
                            }
                            return Ok(Some(collected));
                        }
                        // Per-seed re-pinned walks; sound only when EVERY
                        // seed row yields a pinned walk (each contributes
                        // its own top `keep` — the final projection
                        // re-sorts the union, so it is a superset of the
                        // global top-k).
                        if let Some(per_seed) = self.drive_per_seed_walks(
                            &ctx,
                            CompositeSite::Node { label },
                            seeds,
                            &np.props,
                            &pushed,
                            &spec,
                            &def,
                            patterns,
                            where_clause,
                            &mut budget,
                        )? {
                            collected.extend(per_seed);
                            return Ok(Some(collected));
                        }
                    }
                    // Single-key ordered walk.
                    if spec.keys.len() != 1 {
                        continue;
                    }
                    let key = &spec.keys[0];
                    let total = ctx
                        .view
                        .node_prop_stats(label, key)
                        .map(|(t, _)| t)
                        .unwrap_or(0);
                    let missing = ctx.view.label_cardinality(label).saturating_sub(total);
                    if spec.descending && missing > 0 {
                        // property-less items (NULL keys) would have to
                        // lead a descending order — decline this label
                        continue;
                    }
                    let Some(walk) = ctx.view.nodes_in_prop_order(label, key, spec.descending)
                    else {
                        continue;
                    };
                    let mut walked: Vec<NodeId> = Vec::new();
                    for id in walk {
                        if budget == 0 {
                            return Ok(None);
                        }
                        budget -= 1;
                        walked.push(id);
                        for seed in seeds {
                            let mut s2 = seed.clone();
                            s2.set(spec.var.clone(), Value::Node(id));
                            collected.extend(match_patterns(
                                &ctx,
                                &s2,
                                patterns,
                                where_clause,
                                None,
                            )?);
                        }
                        if collected.len() >= spec.keep {
                            break;
                        }
                    }
                    if collected.len() < spec.keep && !spec.descending && missing > 0 {
                        // NULL tail: extent items without the property
                        let walked: HashSet<NodeId> = walked.into_iter().collect();
                        let tail = ctx
                            .view
                            .nodes_with_label(label)
                            .into_iter()
                            .filter(|id| !walked.contains(id))
                            .map(Value::Node);
                        if !self.drive_walk(
                            &ctx,
                            tail,
                            patterns,
                            where_clause,
                            seeds,
                            &spec,
                            &mut budget,
                            &mut collected,
                        )? {
                            return Ok(None);
                        }
                    }
                    return Ok(Some(collected));
                }
                return Ok(None);
            }
            // Rel route: a single-hop relationship position named `var`.
            for (rp, _) in &p.segments {
                if rp.var.as_deref() != Some(spec.var.as_str())
                    || rp.hops.is_some()
                    || rp.types.len() != 1
                {
                    continue;
                }
                let rel_type = &rp.types[0];
                // Composite walks, pinned or plain — shared when the pins
                // are seed-independent, else re-pinned per seed row.
                let empty = Row::new();
                for def in ctx.view.rel_composite_defs(rel_type) {
                    if let Some(pins) = composite_pin(&ctx, &empty, &rp.props, &pushed, &spec, &def)
                    {
                        let Some(walk) = ctx.view.rels_in_composite_order(
                            rel_type,
                            &def,
                            &pins,
                            spec.descending,
                        ) else {
                            continue;
                        };
                        if !self.drive_walk(
                            &ctx,
                            walk.map(Value::Rel),
                            patterns,
                            where_clause,
                            seeds,
                            &spec,
                            &mut budget,
                            &mut collected,
                        )? {
                            return Ok(None);
                        }
                        return Ok(Some(collected));
                    }
                    if let Some(per_seed) = self.drive_per_seed_walks(
                        &ctx,
                        CompositeSite::Rel { rel_type },
                        seeds,
                        &rp.props,
                        &pushed,
                        &spec,
                        &def,
                        patterns,
                        where_clause,
                        &mut budget,
                    )? {
                        collected.extend(per_seed);
                        return Ok(Some(collected));
                    }
                }
                if spec.keys.len() != 1 {
                    continue;
                }
                let key = &spec.keys[0];
                let total = ctx
                    .view
                    .rel_prop_stats(rel_type, key)
                    .map(|(t, _)| t)
                    .unwrap_or(0);
                let missing = ctx
                    .view
                    .rel_type_cardinality(rel_type)
                    .saturating_sub(total);
                if spec.descending && missing > 0 {
                    continue;
                }
                let Some(walk) = ctx.view.rels_in_prop_order(rel_type, key, spec.descending) else {
                    continue;
                };
                let mut walked: Vec<RelId> = Vec::new();
                for id in walk {
                    if budget == 0 {
                        return Ok(None);
                    }
                    budget -= 1;
                    walked.push(id);
                    for seed in seeds {
                        let mut s2 = seed.clone();
                        s2.set(spec.var.clone(), Value::Rel(id));
                        collected.extend(match_patterns(&ctx, &s2, patterns, where_clause, None)?);
                    }
                    if collected.len() >= spec.keep {
                        break;
                    }
                }
                if collected.len() < spec.keep && !spec.descending && missing > 0 {
                    let walked: HashSet<RelId> = walked.into_iter().collect();
                    let tail = ctx
                        .view
                        .rels_with_type(rel_type)
                        .into_iter()
                        .filter(|id| !walked.contains(id))
                        .map(Value::Rel);
                    if !self.drive_walk(
                        &ctx,
                        tail,
                        patterns,
                        where_clause,
                        seeds,
                        &spec,
                        &mut budget,
                        &mut collected,
                    )? {
                        return Ok(None);
                    }
                }
                return Ok(Some(collected));
            }
        }
        Ok(None)
    }

    fn exec_clause(
        &mut self,
        clause: &Clause,
        rows: Vec<Row>,
        output: &mut Option<(Vec<String>, Vec<Row>)>,
    ) -> Result<Vec<Row>> {
        match clause {
            Clause::Match {
                optional,
                patterns,
                where_clause,
            } => {
                let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                let per_seed: Vec<Vec<Row>> = match self.match_mode {
                    MatchMode::Batched => crate::batch::match_patterns_batch(
                        &ctx,
                        &rows,
                        patterns,
                        where_clause.as_ref(),
                        &self.parallel_cfg(),
                    )?,
                    MatchMode::Reference => rows
                        .iter()
                        .map(|row| match_patterns(&ctx, row, patterns, where_clause.as_ref(), None))
                        .collect::<Result<_>>()?,
                };
                let mut out = Vec::new();
                for (row, matches) in rows.iter().zip(per_seed) {
                    if matches.is_empty() && *optional {
                        let mut r2 = row.clone();
                        for v in pattern_vars(patterns) {
                            if !r2.contains(&v) {
                                r2.set(v, Value::Null);
                            }
                        }
                        out.push(r2);
                    } else {
                        out.extend(matches);
                    }
                }
                Ok(out)
            }
            Clause::Where(pred) => {
                let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                let mut out = Vec::new();
                for row in rows {
                    if eval(&ctx, &row, pred)?.is_truthy() {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            Clause::Unwind { expr, alias } => {
                let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                let mut out = Vec::new();
                for row in &rows {
                    match eval(&ctx, row, expr)? {
                        Value::Null => {}
                        Value::List(items) => {
                            for item in items {
                                let mut r2 = row.clone();
                                r2.set(alias.clone(), item);
                                out.push(r2);
                            }
                        }
                        single => {
                            let mut r2 = row.clone();
                            r2.set(alias.clone(), single);
                            out.push(r2);
                        }
                    }
                }
                Ok(out)
            }
            Clause::With(proj) => {
                let (_cols, out) = self.project(proj, rows, true)?;
                Ok(out)
            }
            Clause::Return(proj) => {
                let (cols, out) = self.project(proj, rows, false)?;
                *output = Some((cols, out.clone()));
                Ok(out)
            }
            Clause::Create { patterns } => {
                let mut out = Vec::new();
                for mut row in rows {
                    for p in patterns {
                        self.create_path(&mut row, p)?;
                    }
                    out.push(row);
                }
                Ok(out)
            }
            Clause::Merge {
                pattern,
                on_create,
                on_match,
            } => {
                let mut out = Vec::new();
                for row in rows {
                    let matches = {
                        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                        match_patterns(&ctx, &row, std::slice::from_ref(pattern), None, None)?
                    };
                    if matches.is_empty() {
                        let mut r2 = row.clone();
                        self.create_path(&mut r2, pattern)?;
                        self.apply_set_items(on_create, std::slice::from_mut(&mut r2))?;
                        out.push(r2);
                    } else {
                        let mut matched = matches;
                        self.apply_set_items(on_match, &mut matched)?;
                        out.extend(matched);
                    }
                }
                Ok(out)
            }
            Clause::Set { items } => {
                let mut rows = rows;
                self.apply_set_items(items, &mut rows)?;
                Ok(rows)
            }
            Clause::Remove { items } => {
                for row in &rows {
                    for item in items {
                        match item {
                            RemoveItem::Prop { target, key } => {
                                let tv = {
                                    let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                                    eval(&ctx, row, target)?
                                };
                                match tv {
                                    Value::Node(n) => {
                                        self.graph_mut("REMOVE")?.remove_node_prop(n, key)?;
                                    }
                                    Value::Rel(r) => {
                                        self.graph_mut("REMOVE")?.remove_rel_prop(r, key)?;
                                    }
                                    Value::Null => {}
                                    other => {
                                        return Err(CypherError::type_err(format!(
                                            "REMOVE on {}",
                                            other.type_name()
                                        )))
                                    }
                                }
                            }
                            RemoveItem::Labels { var, labels } => {
                                let tv = row
                                    .get(var)
                                    .cloned()
                                    .ok_or_else(|| CypherError::UnboundVariable(var.clone()))?;
                                match tv {
                                    Value::Node(n) => {
                                        let g = self.graph_mut("REMOVE")?;
                                        for l in labels {
                                            g.remove_label(n, l)?;
                                        }
                                    }
                                    Value::Null => {}
                                    other => {
                                        return Err(CypherError::type_err(format!(
                                            "REMOVE label on {}",
                                            other.type_name()
                                        )))
                                    }
                                }
                            }
                        }
                    }
                }
                Ok(rows)
            }
            Clause::Delete { detach, exprs } => {
                // Collect targets first (eval needs the read view), then
                // mutate; tolerate items already deleted by an earlier row.
                let mut nodes = Vec::new();
                let mut rels = Vec::new();
                {
                    let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                    for row in &rows {
                        for e in exprs {
                            collect_delete_targets(eval(&ctx, row, e)?, &mut nodes, &mut rels)?;
                        }
                    }
                }
                let g = self.graph_mut("DELETE")?;
                for r in rels {
                    if g.rel_exists(r) {
                        g.delete_rel(r)?;
                    }
                }
                for n in nodes {
                    if g.node_exists(n) {
                        if *detach {
                            g.detach_delete_node(n)?;
                        } else {
                            g.delete_node(n)?;
                        }
                    }
                }
                Ok(rows)
            }
            Clause::Foreach { var, list, body } => {
                for row in &rows {
                    let lv = {
                        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                        eval(&ctx, row, list)?
                    };
                    let items = match lv {
                        Value::Null => continue,
                        Value::List(items) => items,
                        single => vec![single],
                    };
                    for item in items {
                        let mut inner = row.clone();
                        inner.set(var.clone(), item);
                        let mut ignored = None;
                        self.run_clauses(body, vec![inner], &mut ignored)?;
                    }
                }
                Ok(rows)
            }
            Clause::Abort(msg_expr) => {
                if let Some(first) = rows.first() {
                    let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                    let msg = match eval(&ctx, first, msg_expr)? {
                        Value::Str(s) => s,
                        other => other.to_string(),
                    };
                    return Err(CypherError::Aborted(msg));
                }
                Ok(rows)
            }
        }
    }

    // ------------------------------------------------------------------
    // Updating helpers
    // ------------------------------------------------------------------

    fn apply_set_items(&mut self, items: &[SetItem], rows: &mut [Row]) -> Result<()> {
        for row in rows.iter() {
            for item in items {
                match item {
                    SetItem::Prop { target, key, value } => {
                        let (tv, v) = {
                            let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                            (eval(&ctx, row, target)?, eval(&ctx, row, value)?)
                        };
                        match tv {
                            Value::Node(n) => {
                                self.graph_mut("SET")?.set_node_prop(n, key.clone(), v)?;
                            }
                            Value::Rel(r) => {
                                self.graph_mut("SET")?.set_rel_prop(r, key.clone(), v)?;
                            }
                            Value::Null => {}
                            other => {
                                return Err(CypherError::type_err(format!(
                                    "SET property on {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    SetItem::Labels { var, labels } => {
                        let tv = row
                            .get(var)
                            .cloned()
                            .ok_or_else(|| CypherError::UnboundVariable(var.clone()))?;
                        match tv {
                            Value::Node(n) => {
                                let g = self.graph_mut("SET")?;
                                for l in labels {
                                    g.set_label(n, l.clone())?;
                                }
                            }
                            Value::Null => {}
                            other => {
                                return Err(CypherError::type_err(format!(
                                    "SET label on {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    SetItem::ReplaceProps { var, value } | SetItem::MergeProps { var, value } => {
                        let replace = matches!(item, SetItem::ReplaceProps { .. });
                        let (tv, v) = {
                            let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                            let tv = row
                                .get(var)
                                .cloned()
                                .ok_or_else(|| CypherError::UnboundVariable(var.clone()))?;
                            (tv, eval(&ctx, row, value)?)
                        };
                        let map = match v {
                            Value::Map(m) => m,
                            Value::Null => continue,
                            other => {
                                return Err(CypherError::type_err(format!(
                                    "SET {} = expects a map, got {}",
                                    var,
                                    other.type_name()
                                )))
                            }
                        };
                        match tv {
                            Value::Node(n) => {
                                if replace {
                                    let keys = self.view().node_prop_keys(n);
                                    let g = self.graph_mut("SET")?;
                                    for k in keys {
                                        if !map.contains_key(&k) {
                                            g.remove_node_prop(n, &k)?;
                                        }
                                    }
                                }
                                let g = self.graph_mut("SET")?;
                                for (k, val) in map {
                                    g.set_node_prop(n, k, val)?;
                                }
                            }
                            Value::Rel(r) => {
                                if replace {
                                    let keys = self.view().rel_prop_keys(r);
                                    let g = self.graph_mut("SET")?;
                                    for k in keys {
                                        if !map.contains_key(&k) {
                                            g.remove_rel_prop(r, &k)?;
                                        }
                                    }
                                }
                                let g = self.graph_mut("SET")?;
                                for (k, val) in map {
                                    g.set_rel_prop(r, k, val)?;
                                }
                            }
                            Value::Null => {}
                            other => {
                                return Err(CypherError::type_err(format!(
                                    "SET map on {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// `CREATE` one path for one row, binding any fresh variables.
    fn create_path(&mut self, row: &mut Row, path: &PathPattern) -> Result<()> {
        let mut prev = self.resolve_or_create_node(row, &path.start)?;
        for (rel_pat, node_pat) in &path.segments {
            if rel_pat.hops.is_some() {
                return Err(CypherError::type_err(
                    "variable-length relationships cannot be created",
                ));
            }
            if rel_pat.types.len() != 1 {
                return Err(CypherError::type_err(
                    "CREATE requires exactly one relationship type",
                ));
            }
            let next = self.resolve_or_create_node(row, node_pat)?;
            let (src, dst) = match rel_pat.direction {
                Direction::Out => (prev, next),
                Direction::In => (next, prev),
                Direction::Both => {
                    return Err(CypherError::type_err(
                        "CREATE requires a directed relationship",
                    ))
                }
            };
            let props = self.eval_prop_map(row, &rel_pat.props)?;
            let rid =
                self.graph_mut("CREATE")?
                    .create_rel(src, dst, rel_pat.types[0].clone(), props)?;
            if let Some(v) = &rel_pat.var {
                row.set(v.clone(), Value::Rel(rid));
            }
            prev = next;
        }
        Ok(())
    }

    fn resolve_or_create_node(
        &mut self,
        row: &mut Row,
        np: &NodePattern,
    ) -> Result<pg_graph::NodeId> {
        if let Some(v) = &np.var {
            if let Some(bound) = row.get(v) {
                return match bound {
                    Value::Node(n) => Ok(*n),
                    other => Err(CypherError::type_err(format!(
                        "CREATE cannot reuse '{v}' bound to {}",
                        other.type_name()
                    ))),
                };
            }
        }
        let props = self.eval_prop_map(row, &np.props)?;
        let id = self
            .graph_mut("CREATE")?
            .create_node(np.labels.iter().cloned(), props)?;
        if let Some(v) = &np.var {
            row.set(v.clone(), Value::Node(id));
        }
        Ok(id)
    }

    fn eval_prop_map(&self, row: &Row, props: &[(String, Expr)]) -> Result<PropertyMap> {
        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
        let mut pm = PropertyMap::new();
        for (k, e) in props {
            pm.set(k.clone(), eval(&ctx, row, e)?);
        }
        Ok(pm)
    }

    // ------------------------------------------------------------------
    // Projection (WITH / RETURN) with grouping & aggregation
    // ------------------------------------------------------------------

    fn project(
        &mut self,
        proj: &Projection,
        rows: Vec<Row>,
        allow_where: bool,
    ) -> Result<(Vec<String>, Vec<Row>)> {
        // Expand `*` into identity items over all bound names.
        let mut items: Vec<ProjItem> = Vec::new();
        if proj.star {
            let mut names: Vec<String> = Vec::new();
            for r in &rows {
                for n in r.names() {
                    if !names.contains(n) {
                        names.push(n.clone());
                    }
                }
            }
            names.sort();
            for n in names {
                items.push(ProjItem {
                    expr: Expr::Var(n.clone()),
                    alias: Some(n),
                });
            }
        }
        items.extend(proj.items.iter().cloned());
        let columns: Vec<String> = items.iter().map(|i| i.name()).collect();

        let has_agg = items.iter().any(|i| i.expr.has_aggregate());
        let mut projected: Vec<Row> = if has_agg {
            self.project_grouped(&items, &columns, &rows)?
        } else {
            let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut r2 = Row::new();
                for (item, col) in items.iter().zip(&columns) {
                    r2.set(col.clone(), eval(&ctx, row, &item.expr)?);
                }
                out.push(r2);
            }
            out
        };

        if proj.distinct {
            let mut seen: Vec<Row> = Vec::new();
            for r in projected {
                if !seen.contains(&r) {
                    seen.push(r);
                }
            }
            projected = seen;
        }

        if allow_where {
            if let Some(pred) = &proj.where_clause {
                let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
                let mut kept = Vec::new();
                for r in projected {
                    if eval(&ctx, &r, pred)?.is_truthy() {
                        kept.push(r);
                    }
                }
                projected = kept;
            }
        }

        let skip = match &proj.skip {
            Some(e) => self.eval_const_int(e)? as usize,
            None => 0,
        };
        let limit = match &proj.limit {
            Some(e) => Some(self.eval_const_int(e)? as usize),
            None => None,
        };

        if !proj.order_by.is_empty() {
            let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
            if let Some(l) = limit {
                // Bounded top-k: keep only the best SKIP + LIMIT rows
                // (O(n log k)); the input index as final tiebreaker makes
                // this identical to the stable full sort it replaces.
                let mut top = TopKRows::new(&proj.order_by, skip.saturating_add(l));
                for (idx, r) in projected.into_iter().enumerate() {
                    let mut keys = Vec::with_capacity(proj.order_by.len());
                    for (e, _) in &proj.order_by {
                        keys.push(eval(&ctx, &r, e)?);
                    }
                    top.push((keys, idx, r));
                }
                projected = top.into_sorted_rows();
            } else {
                let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(projected.len());
                for r in projected {
                    let mut keys = Vec::with_capacity(proj.order_by.len());
                    for (e, _) in &proj.order_by {
                        keys.push(eval(&ctx, &r, e)?);
                    }
                    keyed.push((keys, r));
                }
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, (_, asc)) in proj.order_by.iter().enumerate() {
                        let ord = ka[i].cmp_order(&kb[i]);
                        let ord = if *asc { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                projected = keyed.into_iter().map(|(_, r)| r).collect();
            }
        }

        let mut projected: Vec<Row> = projected.into_iter().skip(skip).collect();
        if let Some(l) = limit {
            projected.truncate(l);
        }

        Ok((columns, projected))
    }

    fn eval_const_int(&self, e: &Expr) -> Result<i64> {
        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
        crate::plan::eval_const_int(&ctx, e)
    }

    fn project_grouped(
        &mut self,
        items: &[ProjItem],
        columns: &[String],
        rows: &[Row],
    ) -> Result<Vec<Row>> {
        // Split items into group keys and aggregate-bearing expressions; the
        // latter get their aggregate subexpressions replaced by placeholder
        // variables resolved per group.
        struct AggSpec {
            arg: Option<Expr>, // None = count(*)
            name: String,
            distinct: bool,
        }
        let mut specs: Vec<AggSpec> = Vec::new();
        fn rewrite(e: &Expr, specs: &mut Vec<AggSpec>) -> Expr
        where
            AggSpec: Sized,
        {
            match e {
                Expr::CountStar => {
                    specs.push(AggSpec {
                        arg: None,
                        name: "count".into(),
                        distinct: false,
                    });
                    Expr::Var(format!("__agg{}", specs.len() - 1))
                }
                Expr::Func {
                    name,
                    args,
                    distinct,
                } if is_aggregate(name) => {
                    specs.push(AggSpec {
                        arg: args.first().cloned(),
                        name: name.clone(),
                        distinct: *distinct,
                    });
                    Expr::Var(format!("__agg{}", specs.len() - 1))
                }
                Expr::Prop(b, k) => Expr::Prop(Box::new(rewrite(b, specs)), k.clone()),
                Expr::HasLabel(b, ls) => Expr::HasLabel(Box::new(rewrite(b, specs)), ls.clone()),
                Expr::Unary(op, b) => Expr::Unary(*op, Box::new(rewrite(b, specs))),
                Expr::IsNull(b, neg) => Expr::IsNull(Box::new(rewrite(b, specs)), *neg),
                Expr::Binary(op, a, b) => Expr::Binary(
                    *op,
                    Box::new(rewrite(a, specs)),
                    Box::new(rewrite(b, specs)),
                ),
                Expr::Func {
                    name,
                    args,
                    distinct,
                } => Expr::Func {
                    name: name.clone(),
                    args: args.iter().map(|a| rewrite(a, specs)).collect(),
                    distinct: *distinct,
                },
                Expr::ListLit(xs) => Expr::ListLit(xs.iter().map(|x| rewrite(x, specs)).collect()),
                Expr::MapLit(es) => Expr::MapLit(
                    es.iter()
                        .map(|(k, v)| (k.clone(), rewrite(v, specs)))
                        .collect(),
                ),
                Expr::Index(a, b) => {
                    Expr::Index(Box::new(rewrite(a, specs)), Box::new(rewrite(b, specs)))
                }
                Expr::Slice(a, f, t) => Expr::Slice(
                    Box::new(rewrite(a, specs)),
                    f.as_ref().map(|x| Box::new(rewrite(x, specs))),
                    t.as_ref().map(|x| Box::new(rewrite(x, specs))),
                ),
                Expr::Case {
                    operand,
                    whens,
                    else_,
                } => Expr::Case {
                    operand: operand.as_ref().map(|o| Box::new(rewrite(o, specs))),
                    whens: whens
                        .iter()
                        .map(|(w, t)| (rewrite(w, specs), rewrite(t, specs)))
                        .collect(),
                    else_: else_.as_ref().map(|e| Box::new(rewrite(e, specs))),
                },
                other => other.clone(),
            }
        }

        enum ItemKind {
            GroupKey(Expr),
            Agg(Expr), // rewritten with placeholders
        }
        let kinds: Vec<ItemKind> = items
            .iter()
            .map(|i| {
                if i.expr.has_aggregate() {
                    ItemKind::Agg(rewrite(&i.expr, &mut specs))
                } else {
                    ItemKind::GroupKey(i.expr.clone())
                }
            })
            .collect();

        // Group rows by evaluated group-key tuples.
        struct Group {
            key: Vec<Value>,
            accs: Vec<Accumulator>,
            rep: Row,
        }
        let mut groups: Vec<Group> = Vec::new();
        {
            let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
            for row in rows {
                let mut key = Vec::new();
                for k in &kinds {
                    if let ItemKind::GroupKey(e) = k {
                        key.push(eval(&ctx, row, e)?);
                    }
                }
                let group = match groups.iter_mut().find(|g| g.key == key) {
                    Some(g) => g,
                    None => {
                        let accs = specs
                            .iter()
                            .map(|s| Accumulator::new(&s.name, s.distinct).expect("aggregate"))
                            .collect();
                        groups.push(Group {
                            key,
                            accs,
                            rep: row.clone(),
                        });
                        groups.last_mut().unwrap()
                    }
                };
                for (si, spec) in specs.iter().enumerate() {
                    let v = match &spec.arg {
                        None => Value::Int(1), // count(*): count every row
                        Some(arg) => eval(&ctx, row, arg)?,
                    };
                    group.accs[si].push(v)?;
                }
            }
            // Aggregation over the empty input with no group keys yields a
            // single group (so `RETURN count(*)` on no rows is 0).
            let no_group_keys = kinds.iter().all(|k| matches!(k, ItemKind::Agg(_)));
            if groups.is_empty() && no_group_keys {
                groups.push(Group {
                    key: Vec::new(),
                    accs: specs
                        .iter()
                        .map(|s| Accumulator::new(&s.name, s.distinct).expect("aggregate"))
                        .collect(),
                    rep: Row::new(),
                });
            }
        }

        // Materialize one output row per group.
        let ctx = EvalCtx::new(self.view(), self.params, self.now_ms);
        let mut out = Vec::with_capacity(groups.len());
        for g in groups {
            let mut env = g.rep.clone();
            for (si, acc) in g.accs.into_iter().enumerate() {
                env.set(format!("__agg{si}"), acc.finish());
            }
            let mut r2 = Row::new();
            let mut key_iter = g.key.into_iter();
            for (kind, col) in kinds.iter().zip(columns) {
                match kind {
                    ItemKind::GroupKey(_) => {
                        r2.set(col.clone(), key_iter.next().expect("group key"));
                    }
                    ItemKind::Agg(rewritten) => {
                        r2.set(col.clone(), eval(&ctx, &env, rewritten)?);
                    }
                }
            }
            out.push(r2);
        }
        Ok(out)
    }
}

fn collect_delete_targets(
    v: Value,
    nodes: &mut Vec<pg_graph::NodeId>,
    rels: &mut Vec<pg_graph::RelId>,
) -> Result<()> {
    match v {
        Value::Node(n) => nodes.push(n),
        Value::Rel(r) => rels.push(r),
        Value::Null => {}
        Value::List(items) => {
            for i in items {
                collect_delete_targets(i, nodes, rels)?;
            }
        }
        other => {
            return Err(CypherError::type_err(format!(
                "DELETE on {}",
                other.type_name()
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::resolve_thread_limit;

    #[test]
    fn thread_limit_precedence() {
        // explicit beats env beats hardware
        assert_eq!(resolve_thread_limit(Some(3), Some(7), 16), 3);
        assert_eq!(resolve_thread_limit(None, Some(7), 16), 7);
        assert_eq!(resolve_thread_limit(None, None, 16), 16);
        // never below 1, whatever the inputs claim
        assert_eq!(resolve_thread_limit(Some(0), None, 16), 1);
        assert_eq!(resolve_thread_limit(None, Some(0), 16), 1);
        assert_eq!(resolve_thread_limit(None, None, 0), 1);
    }
}
