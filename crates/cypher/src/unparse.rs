//! AST → source text rendering (unparser).
//!
//! Used by the syntax-directed translators (PG-Trigger → APOC, PG-Trigger →
//! Memgraph; paper Figures 2 and 3) to splice trigger conditions and
//! statements into the target systems' trigger bodies, and by tests to check
//! parse/unparse round-trips.

use crate::ast::*;
use pg_graph::{Direction, Value};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Render a query as Cypher text.
pub fn unparse_query(q: &Query) -> String {
    q.clauses
        .iter()
        .map(unparse_clause)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Render a single clause.
pub fn unparse_clause(c: &Clause) -> String {
    match c {
        Clause::Match {
            optional,
            patterns,
            where_clause,
        } => {
            let mut s = String::new();
            if *optional {
                s.push_str("OPTIONAL ");
            }
            s.push_str("MATCH ");
            s.push_str(
                &patterns
                    .iter()
                    .map(unparse_pattern)
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            if let Some(w) = where_clause {
                write!(s, " WHERE {}", unparse_expr(w)).unwrap();
            }
            s
        }
        Clause::Where(e) => format!("WHERE {}", unparse_expr(e)),
        Clause::Unwind { expr, alias } => {
            format!("UNWIND {} AS {}", unparse_expr(expr), ident(alias))
        }
        Clause::With(p) => format!("WITH {}", unparse_projection(p)),
        Clause::Return(p) => format!("RETURN {}", unparse_projection(p)),
        Clause::Create { patterns } => format!(
            "CREATE {}",
            patterns
                .iter()
                .map(unparse_pattern)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Clause::Merge {
            pattern,
            on_create,
            on_match,
        } => {
            let mut s = format!("MERGE {}", unparse_pattern(pattern));
            if !on_create.is_empty() {
                write!(s, " ON CREATE SET {}", unparse_set_items(on_create)).unwrap();
            }
            if !on_match.is_empty() {
                write!(s, " ON MATCH SET {}", unparse_set_items(on_match)).unwrap();
            }
            s
        }
        Clause::Delete { detach, exprs } => format!(
            "{}DELETE {}",
            if *detach { "DETACH " } else { "" },
            exprs
                .iter()
                .map(unparse_expr)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Clause::Set { items } => format!("SET {}", unparse_set_items(items)),
        Clause::Remove { items } => format!(
            "REMOVE {}",
            items
                .iter()
                .map(|i| match i {
                    RemoveItem::Prop { target, key } => {
                        format!("{}.{}", unparse_expr(target), ident(key))
                    }
                    RemoveItem::Labels { var, labels } => format!(
                        "{}{}",
                        ident(var),
                        labels
                            .iter()
                            .map(|l| format!(":{}", ident(l)))
                            .collect::<String>()
                    ),
                })
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Clause::Foreach { var, list, body } => format!(
            "FOREACH ({} IN {} | {})",
            ident(var),
            unparse_expr(list),
            body.iter()
                .map(unparse_clause)
                .collect::<Vec<_>>()
                .join(" ")
        ),
        Clause::Abort(e) => format!("ABORT {}", unparse_expr(e)),
    }
}

fn unparse_projection(p: &Projection) -> String {
    let mut s = String::new();
    if p.distinct {
        s.push_str("DISTINCT ");
    }
    let mut items: Vec<String> = Vec::new();
    if p.star {
        items.push("*".to_string());
    }
    for i in &p.items {
        match &i.alias {
            Some(a) => items.push(format!("{} AS {}", unparse_expr(&i.expr), ident(a))),
            None => items.push(unparse_expr(&i.expr)),
        }
    }
    s.push_str(&items.join(", "));
    if !p.order_by.is_empty() {
        s.push_str(" ORDER BY ");
        s.push_str(
            &p.order_by
                .iter()
                .map(|(e, asc)| format!("{}{}", unparse_expr(e), if *asc { "" } else { " DESC" }))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if let Some(sk) = &p.skip {
        write!(s, " SKIP {}", unparse_expr(sk)).unwrap();
    }
    if let Some(l) = &p.limit {
        write!(s, " LIMIT {}", unparse_expr(l)).unwrap();
    }
    if let Some(w) = &p.where_clause {
        write!(s, " WHERE {}", unparse_expr(w)).unwrap();
    }
    s
}

fn unparse_set_items(items: &[SetItem]) -> String {
    items
        .iter()
        .map(|i| match i {
            SetItem::Prop { target, key, value } => {
                format!(
                    "{}.{} = {}",
                    unparse_expr(target),
                    ident(key),
                    unparse_expr(value)
                )
            }
            SetItem::Labels { var, labels } => format!(
                "{}{}",
                ident(var),
                labels
                    .iter()
                    .map(|l| format!(":{}", ident(l)))
                    .collect::<String>()
            ),
            SetItem::ReplaceProps { var, value } => {
                format!("{} = {}", ident(var), unparse_expr(value))
            }
            SetItem::MergeProps { var, value } => {
                format!("{} += {}", ident(var), unparse_expr(value))
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Render a path pattern.
pub fn unparse_pattern(p: &PathPattern) -> String {
    let mut s = unparse_node_pattern(&p.start);
    for (r, n) in &p.segments {
        s.push_str(&unparse_rel_pattern(r));
        s.push_str(&unparse_node_pattern(n));
    }
    s
}

fn unparse_node_pattern(n: &NodePattern) -> String {
    let mut s = String::from("(");
    if let Some(v) = &n.var {
        s.push_str(&ident(v));
    }
    for l in &n.labels {
        write!(s, ":{}", ident(l)).unwrap();
    }
    if !n.props.is_empty() {
        write!(s, " {{{}}}", unparse_prop_map(&n.props)).unwrap();
    }
    s.push(')');
    s
}

fn unparse_rel_pattern(r: &RelPattern) -> String {
    let mut inner = String::new();
    if let Some(v) = &r.var {
        inner.push_str(&ident(v));
    }
    if !r.types.is_empty() {
        write!(
            inner,
            ":{}",
            r.types
                .iter()
                .map(|t| ident(t))
                .collect::<Vec<_>>()
                .join("|")
        )
        .unwrap();
    }
    if let Some((min, max)) = r.hops {
        match max {
            Some(max) if max == min => write!(inner, "*{min}").unwrap(),
            Some(max) => write!(inner, "*{min}..{max}").unwrap(),
            None => {
                if min == 1 {
                    inner.push('*');
                } else {
                    write!(inner, "*{min}..").unwrap();
                }
            }
        }
    }
    if !r.props.is_empty() {
        write!(inner, " {{{}}}", unparse_prop_map(&r.props)).unwrap();
    }
    let body = if inner.is_empty() {
        String::new()
    } else {
        format!("[{inner}]")
    };
    match r.direction {
        Direction::Out => format!("-{body}->"),
        Direction::In => format!("<-{body}-"),
        Direction::Both => format!("-{body}-"),
    }
}

fn unparse_prop_map(props: &[(String, Expr)]) -> String {
    props
        .iter()
        .map(|(k, v)| format!("{}: {}", ident(k), unparse_expr(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn ident(name: &str) -> String {
    let plain = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("`{name}`")
    }
}

fn unparse_value(v: &Value) -> String {
    match v {
        Value::Str(s) => format!("'{}'", s.replace('\\', "\\\\").replace('\'', "\\'")),
        Value::Null => "null".to_string(),
        Value::List(items) => format!(
            "[{}]",
            items
                .iter()
                .map(unparse_value)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Value::Map(m) => format!(
            "{{{}}}",
            m.iter()
                .map(|(k, v)| format!("{}: {}", ident(k), unparse_value(v)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        other => other.to_string(),
    }
}

/// Render an expression (fully parenthesized where precedence matters).
pub fn unparse_expr(e: &Expr) -> String {
    match e {
        Expr::Literal(v) => unparse_value(v),
        Expr::Param(p) => format!("${p}"),
        Expr::Var(v) => ident(v),
        Expr::Prop(b, k) => format!("{}.{}", unparse_expr(b), ident(k)),
        Expr::HasLabel(b, ls) => format!(
            "{}{}",
            unparse_expr(b),
            ls.iter()
                .map(|l| format!(":{}", ident(l)))
                .collect::<String>()
        ),
        Expr::Unary(op, b) => match op {
            UnaryOp::Not => format!("NOT ({})", unparse_expr(b)),
            UnaryOp::Neg => format!("-({})", unparse_expr(b)),
        },
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Pow => "^",
                BinOp::Eq => "=",
                BinOp::Neq => "<>",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
                BinOp::Xor => "XOR",
                BinOp::In => "IN",
                BinOp::StartsWith => "STARTS WITH",
                BinOp::EndsWith => "ENDS WITH",
                BinOp::Contains => "CONTAINS",
            };
            format!("({} {} {})", unparse_expr(a), sym, unparse_expr(b))
        }
        Expr::Func {
            name,
            args,
            distinct,
        } => format!(
            "{}({}{})",
            name,
            if *distinct { "DISTINCT " } else { "" },
            args.iter().map(unparse_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::CountStar => "count(*)".to_string(),
        Expr::ListLit(items) => format!(
            "[{}]",
            items
                .iter()
                .map(unparse_expr)
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Expr::MapLit(entries) => format!("{{{}}}", unparse_prop_map(entries)),
        Expr::Index(b, i) => format!("{}[{}]", unparse_expr(b), unparse_expr(i)),
        Expr::Slice(b, f, t) => format!(
            "{}[{}..{}]",
            unparse_expr(b),
            f.as_ref().map(|x| unparse_expr(x)).unwrap_or_default(),
            t.as_ref().map(|x| unparse_expr(x)).unwrap_or_default()
        ),
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                write!(s, " {}", unparse_expr(o)).unwrap();
            }
            for (w, t) in whens {
                write!(s, " WHEN {} THEN {}", unparse_expr(w), unparse_expr(t)).unwrap();
            }
            if let Some(el) = else_ {
                write!(s, " ELSE {}", unparse_expr(el)).unwrap();
            }
            s.push_str(" END");
            s
        }
        Expr::ExistsSubquery(patterns, where_) => {
            let pats = patterns
                .iter()
                .map(unparse_pattern)
                .collect::<Vec<_>>()
                .join(", ");
            match where_ {
                Some(w) => format!("EXISTS {{ MATCH {} WHERE {} }}", pats, unparse_expr(w)),
                None => format!("EXISTS {{ MATCH {} }}", pats),
            }
        }
        Expr::IsNull(b, negated) => format!(
            "{} IS {}NULL",
            unparse_expr(b),
            if *negated { "NOT " } else { "" }
        ),
        Expr::ListComp {
            var,
            list,
            filter,
            map,
        } => {
            let mut s = format!("[{} IN {}", ident(var), unparse_expr(list));
            if let Some(f) = filter {
                write!(s, " WHERE {}", unparse_expr(f)).unwrap();
            }
            if let Some(m) = map {
                write!(s, " | {}", unparse_expr(m)).unwrap();
            }
            s.push(']');
            s
        }
    }
}

/// Rename free variables throughout a query (used by translators to map
/// `NEW`/`OLD`/`NEWNODES` onto the target system's variable names, e.g.
/// `cNodes` in the paper's Figure 2).
pub fn rename_vars(q: &Query, renames: &BTreeMap<String, String>) -> Query {
    Query {
        clauses: q
            .clauses
            .iter()
            .map(|c| rename_clause(c, renames))
            .collect(),
    }
}

fn rn(name: &str, renames: &BTreeMap<String, String>) -> String {
    renames
        .get(name)
        .cloned()
        .unwrap_or_else(|| name.to_string())
}

fn rename_clause(c: &Clause, m: &BTreeMap<String, String>) -> Clause {
    match c {
        Clause::Match {
            optional,
            patterns,
            where_clause,
        } => Clause::Match {
            optional: *optional,
            patterns: patterns.iter().map(|p| rename_pattern(p, m)).collect(),
            where_clause: where_clause.as_ref().map(|e| rename_expr(e, m)),
        },
        Clause::Where(e) => Clause::Where(rename_expr(e, m)),
        Clause::Unwind { expr, alias } => Clause::Unwind {
            expr: rename_expr(expr, m),
            alias: rn(alias, m),
        },
        Clause::With(p) => Clause::With(rename_projection(p, m)),
        Clause::Return(p) => Clause::Return(rename_projection(p, m)),
        Clause::Create { patterns } => Clause::Create {
            patterns: patterns.iter().map(|p| rename_pattern(p, m)).collect(),
        },
        Clause::Merge {
            pattern,
            on_create,
            on_match,
        } => Clause::Merge {
            pattern: rename_pattern(pattern, m),
            on_create: on_create.iter().map(|i| rename_set_item(i, m)).collect(),
            on_match: on_match.iter().map(|i| rename_set_item(i, m)).collect(),
        },
        Clause::Delete { detach, exprs } => Clause::Delete {
            detach: *detach,
            exprs: exprs.iter().map(|e| rename_expr(e, m)).collect(),
        },
        Clause::Set { items } => Clause::Set {
            items: items.iter().map(|i| rename_set_item(i, m)).collect(),
        },
        Clause::Remove { items } => Clause::Remove {
            items: items
                .iter()
                .map(|i| match i {
                    RemoveItem::Prop { target, key } => RemoveItem::Prop {
                        target: rename_expr(target, m),
                        key: key.clone(),
                    },
                    RemoveItem::Labels { var, labels } => RemoveItem::Labels {
                        var: rn(var, m),
                        labels: labels.clone(),
                    },
                })
                .collect(),
        },
        Clause::Foreach { var, list, body } => Clause::Foreach {
            var: rn(var, m),
            list: rename_expr(list, m),
            body: body.iter().map(|c| rename_clause(c, m)).collect(),
        },
        Clause::Abort(e) => Clause::Abort(rename_expr(e, m)),
    }
}

fn rename_projection(p: &Projection, m: &BTreeMap<String, String>) -> Projection {
    Projection {
        distinct: p.distinct,
        items: p
            .items
            .iter()
            .map(|i| ProjItem {
                expr: rename_expr(&i.expr, m),
                alias: i.alias.as_ref().map(|a| rn(a, m)),
            })
            .collect(),
        star: p.star,
        order_by: p
            .order_by
            .iter()
            .map(|(e, asc)| (rename_expr(e, m), *asc))
            .collect(),
        skip: p.skip.as_ref().map(|e| rename_expr(e, m)),
        limit: p.limit.as_ref().map(|e| rename_expr(e, m)),
        where_clause: p.where_clause.as_ref().map(|e| rename_expr(e, m)),
    }
}

fn rename_set_item(i: &SetItem, m: &BTreeMap<String, String>) -> SetItem {
    match i {
        SetItem::Prop { target, key, value } => SetItem::Prop {
            target: rename_expr(target, m),
            key: key.clone(),
            value: rename_expr(value, m),
        },
        SetItem::Labels { var, labels } => SetItem::Labels {
            var: rn(var, m),
            labels: labels.clone(),
        },
        SetItem::ReplaceProps { var, value } => SetItem::ReplaceProps {
            var: rn(var, m),
            value: rename_expr(value, m),
        },
        SetItem::MergeProps { var, value } => SetItem::MergeProps {
            var: rn(var, m),
            value: rename_expr(value, m),
        },
    }
}

fn rename_pattern(p: &PathPattern, m: &BTreeMap<String, String>) -> PathPattern {
    PathPattern {
        start: rename_node_pattern(&p.start, m),
        segments: p
            .segments
            .iter()
            .map(|(r, n)| {
                (
                    RelPattern {
                        var: r.var.as_ref().map(|v| rn(v, m)),
                        types: r.types.clone(),
                        props: r
                            .props
                            .iter()
                            .map(|(k, e)| (k.clone(), rename_expr(e, m)))
                            .collect(),
                        direction: r.direction,
                        hops: r.hops,
                    },
                    rename_node_pattern(n, m),
                )
            })
            .collect(),
    }
}

fn rename_node_pattern(n: &NodePattern, m: &BTreeMap<String, String>) -> NodePattern {
    NodePattern {
        var: n.var.as_ref().map(|v| rn(v, m)),
        // Labels may be transition-variable references (e.g. `(pn:NEWNODES)`),
        // so they participate in renaming too.
        labels: n.labels.iter().map(|l| rn(l, m)).collect(),
        props: n
            .props
            .iter()
            .map(|(k, e)| (k.clone(), rename_expr(e, m)))
            .collect(),
    }
}

fn rename_expr(e: &Expr, m: &BTreeMap<String, String>) -> Expr {
    match e {
        Expr::Var(v) => Expr::Var(rn(v, m)),
        Expr::Literal(_) | Expr::Param(_) | Expr::CountStar => e.clone(),
        Expr::Prop(b, k) => Expr::Prop(Box::new(rename_expr(b, m)), k.clone()),
        Expr::HasLabel(b, ls) => Expr::HasLabel(Box::new(rename_expr(b, m)), ls.clone()),
        Expr::Unary(op, b) => Expr::Unary(*op, Box::new(rename_expr(b, m))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, m)),
            Box::new(rename_expr(b, m)),
        ),
        Expr::Func {
            name,
            args,
            distinct,
        } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| rename_expr(a, m)).collect(),
            distinct: *distinct,
        },
        Expr::ListLit(items) => Expr::ListLit(items.iter().map(|i| rename_expr(i, m)).collect()),
        Expr::MapLit(entries) => Expr::MapLit(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), rename_expr(v, m)))
                .collect(),
        ),
        Expr::Index(a, b) => Expr::Index(Box::new(rename_expr(a, m)), Box::new(rename_expr(b, m))),
        Expr::Slice(a, f, t) => Expr::Slice(
            Box::new(rename_expr(a, m)),
            f.as_ref().map(|x| Box::new(rename_expr(x, m))),
            t.as_ref().map(|x| Box::new(rename_expr(x, m))),
        ),
        Expr::Case {
            operand,
            whens,
            else_,
        } => Expr::Case {
            operand: operand.as_ref().map(|o| Box::new(rename_expr(o, m))),
            whens: whens
                .iter()
                .map(|(w, t)| (rename_expr(w, m), rename_expr(t, m)))
                .collect(),
            else_: else_.as_ref().map(|x| Box::new(rename_expr(x, m))),
        },
        Expr::ExistsSubquery(patterns, where_) => Expr::ExistsSubquery(
            patterns.iter().map(|p| rename_pattern(p, m)).collect(),
            where_.as_ref().map(|w| Box::new(rename_expr(w, m))),
        ),
        Expr::IsNull(b, n) => Expr::IsNull(Box::new(rename_expr(b, m)), *n),
        Expr::ListComp {
            var,
            list,
            filter,
            map,
        } => Expr::ListComp {
            var: rn(var, m),
            list: Box::new(rename_expr(list, m)),
            filter: filter.as_ref().map(|f| Box::new(rename_expr(f, m))),
            map: map.as_ref().map(|x| Box::new(rename_expr(x, m))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn round_trip(src: &str) {
        let q1 = parse_query(src).unwrap();
        let text = unparse_query(&q1);
        let q2 = parse_query(&text).unwrap_or_else(|e| panic!("re-parse of `{text}`: {e}"));
        assert_eq!(q1, q2, "round-trip changed AST for `{src}` → `{text}`");
    }

    #[test]
    fn round_trips() {
        for src in [
            "MATCH (n:Person {name: 'Ada'})-[:KNOWS*1..3]->(m) WHERE n.age > 30 RETURN m.name AS name ORDER BY name DESC SKIP 1 LIMIT 5",
            "OPTIONAL MATCH (a)<-[r:R {w: 1}]-(b) RETURN a, r, b",
            "CREATE (a:A {x: 1})-[:REL {w: 2}]->(b:B)",
            "MERGE (n:K {k: 1}) ON CREATE SET n.c = true ON MATCH SET n.m = true",
            "MATCH (n) DETACH DELETE n",
            "MATCH (n) SET n.a = 1, n:L, n += {b: 2} REMOVE n.c, n:M",
            "UNWIND [1, 2, 3] AS x WITH DISTINCT x WHERE x > 1 RETURN collect(x) AS xs",
            "FOREACH (i IN range(1, 3) | CREATE (:I {i: i}))",
            "MATCH (s) WHERE EXISTS { MATCH (s)-[:R]-(:T) WHERE s.x = 1 } RETURN count(*)",
            "RETURN CASE WHEN 1 > 0 THEN 'y' ELSE 'n' END AS v",
            "RETURN [x IN [1,2] WHERE x > 1 | x * 2] AS l",
            "RETURN {a: 1, b: 'two'} AS m, [1,2][0] AS i, 'abc'[1..2] AS s",
            "MATCH (n) WHERE n.name STARTS WITH 'a' AND NOT (n.x IS NULL) RETURN n",
            "MATCH (n) RETURN n.a + n.b * 2 - -n.c AS v, $p AS param",
            "ABORT 'nope'",
            "MATCH (a)-[r]-(b) WHERE a:X:Y RETURN type(r)",
        ] {
            round_trip(src);
        }
    }

    #[test]
    fn rename_vars_renames_everywhere() {
        let q =
            parse_query("MATCH (pn:NEWNODES)-[:TreatedAt]-(h) WHERE NEW.x > 0 RETURN NEW.name, pn")
                .unwrap();
        let renames: BTreeMap<String, String> = [
            ("NEW".to_string(), "cNodes".to_string()),
            ("NEWNODES".to_string(), "cList".to_string()),
        ]
        .into_iter()
        .collect();
        let q2 = rename_vars(&q, &renames);
        let text = unparse_query(&q2);
        assert!(text.contains("cNodes.x"), "{text}");
        assert!(text.contains("(pn:cList)"), "{text}");
        assert!(text.contains("cNodes.name"), "{text}");
        assert!(!text.contains("NEW"), "{text}");
    }

    #[test]
    fn backtick_quoting_for_odd_names() {
        let q = parse_query("MATCH (n:`Weird Label`) RETURN n.`odd prop`").unwrap();
        let text = unparse_query(&q);
        assert!(text.contains("`Weird Label`"));
        assert!(text.contains("`odd prop`"));
        round_trip("MATCH (n:`Weird Label`) RETURN n.`odd prop`");
    }
}
