//! Graph pattern matching.
//!
//! Backtracking join over path patterns with Cypher's relationship-
//! uniqueness semantics (a relationship may be traversed at most once per
//! `MATCH` clause).
//!
//! **Transition-variable candidates** (PG-Triggers §6.2): a label position
//! whose name is bound in the current row to a node, a relationship, or a
//! list of them restricts the candidate set to those items instead of being
//! treated as a stored label. This is what makes the paper's patterns
//! `MATCH (pn:NEWNODES)-[:TreatedAt]-(h)` and `MATCH (pn:NEW)-…` work: the
//! trigger engine binds `NEWNODES`/`NEW` in the seed row.

use crate::ast::{BinOp, Expr, NodePattern, PathPattern, RelPattern};
use crate::error::{CypherError, Result};
use crate::expr::{eval, EvalCtx};
use crate::row::Row;
use pg_graph::{Direction, NodeId, RelId, Value};
use std::collections::HashMap;

/// Equality predicates pushed down from a `WHERE` clause into candidate
/// planning: variable → `(property key, value expression)` conjuncts.
type Pushdowns = HashMap<String, Vec<(String, Expr)>>;

/// One in-progress match: the binding row plus relationships already used in
/// this MATCH clause.
#[derive(Debug, Clone)]
struct MatchState {
    row: Row,
    used: Vec<RelId>,
}

/// Match a list of path patterns (as one joint MATCH clause) against the
/// view, starting from `seed`. Returns the extended binding rows; when
/// `limit` is given, stops after that many (EXISTS only needs one).
pub fn match_patterns(
    ctx: &EvalCtx<'_>,
    seed: &Row,
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    limit: Option<usize>,
) -> Result<Vec<Row>> {
    let mut states = vec![MatchState {
        row: seed.clone(),
        used: Vec::new(),
    }];
    let pushed = equality_pushdowns(where_clause);
    for pattern in patterns {
        let mut next = Vec::new();
        for st in &states {
            match_path(ctx, pattern, st, &pushed, &mut next, None)?;
        }
        states = next;
        if states.is_empty() {
            return Ok(Vec::new());
        }
    }
    let mut rows = Vec::new();
    for st in states {
        if let Some(w) = where_clause {
            if !eval(ctx, &st.row, w)?.is_truthy() {
                continue;
            }
        }
        rows.push(st.row);
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
    }
    Ok(rows)
}

/// The variable names a pattern list can bind (used by OPTIONAL MATCH to
/// null-bind on failure).
pub fn pattern_vars(patterns: &[PathPattern]) -> Vec<String> {
    let mut out = Vec::new();
    for p in patterns {
        if let Some(v) = &p.start.var {
            out.push(v.clone());
        }
        for (r, n) in &p.segments {
            if let Some(v) = &r.var {
                out.push(v.clone());
            }
            if let Some(v) = &n.var {
                out.push(v.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn match_path(
    ctx: &EvalCtx<'_>,
    path: &PathPattern,
    st: &MatchState,
    pushed: &Pushdowns,
    out: &mut Vec<MatchState>,
    cap: Option<usize>,
) -> Result<()> {
    let candidates = node_candidates(ctx, &st.row, &path.start, pushed)?;
    for cand in candidates {
        if !node_matches(ctx, &st.row, cand, &path.start)? {
            continue;
        }
        let mut st2 = st.clone();
        if let Some(v) = &path.start.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Node(cand)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Node(cand));
            }
        }
        extend_segments(ctx, path, 0, cand, st2, out, cap)?;
        if let Some(c) = cap {
            if out.len() >= c {
                return Ok(());
            }
        }
    }
    Ok(())
}

fn extend_segments(
    ctx: &EvalCtx<'_>,
    path: &PathPattern,
    seg_idx: usize,
    current: NodeId,
    st: MatchState,
    out: &mut Vec<MatchState>,
    cap: Option<usize>,
) -> Result<()> {
    if seg_idx == path.segments.len() {
        out.push(st);
        return Ok(());
    }
    let (rel_pat, node_pat) = &path.segments[seg_idx];

    if let Some((min, max)) = rel_pat.hops {
        // Variable-length expansion (DFS with per-path rel uniqueness).
        let max = max.unwrap_or(64); // practical bound for unbounded patterns
        let mut stack: Vec<(NodeId, Vec<RelId>)> = vec![(current, Vec::new())];
        // Depth-first enumeration of all paths with length in [min, max].
        #[allow(clippy::too_many_arguments)] // local helper threading the whole match context
        fn dfs(
            ctx: &EvalCtx<'_>,
            st: &MatchState,
            rel_pat: &RelPattern,
            node_pat: &NodePattern,
            path: &PathPattern,
            seg_idx: usize,
            frontier: &mut Vec<(NodeId, Vec<RelId>)>,
            min: u32,
            max: u32,
            out: &mut Vec<MatchState>,
            cap: Option<usize>,
        ) -> Result<()> {
            while let Some((node, rels)) = frontier.pop() {
                let depth = rels.len() as u32;
                if depth >= min && node_matches(ctx, &st.row, node, node_pat)? {
                    // Complete this segment here.
                    let mut st2 = st.clone();
                    st2.used.extend(rels.iter().copied());
                    if let Some(v) = &rel_pat.var {
                        st2.row.set(
                            v.clone(),
                            Value::List(rels.iter().map(|&r| Value::Rel(r)).collect()),
                        );
                    }
                    let mut ok = true;
                    if let Some(v) = &node_pat.var {
                        if let Some(bound) = st2.row.get(v) {
                            ok = bound.eq3(&Value::Node(node)) == Some(true);
                        } else {
                            st2.row.set(v.clone(), Value::Node(node));
                        }
                    }
                    if ok {
                        extend_segments(ctx, path, seg_idx + 1, node, st2, out, cap)?;
                        if let Some(c) = cap {
                            if out.len() >= c {
                                return Ok(());
                            }
                        }
                    }
                }
                if depth < max {
                    for (rid, other) in hop_candidates(ctx, &st.row, node, rel_pat)? {
                        if rels.contains(&rid) || st.used.contains(&rid) {
                            continue;
                        }
                        let mut rels2 = rels.clone();
                        rels2.push(rid);
                        frontier.push((other, rels2));
                    }
                }
            }
            Ok(())
        }
        dfs(
            ctx, &st, rel_pat, node_pat, path, seg_idx, &mut stack, min, max, out, cap,
        )?;
        return Ok(());
    }

    // Single-hop segment.
    for (rid, other) in hop_candidates(ctx, &st.row, current, rel_pat)? {
        if st.used.contains(&rid) {
            continue;
        }
        if !node_matches(ctx, &st.row, other, node_pat)? {
            continue;
        }
        let mut st2 = st.clone();
        st2.used.push(rid);
        if let Some(v) = &rel_pat.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Rel(rid)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Rel(rid));
            }
        }
        if let Some(v) = &node_pat.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Node(other)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Node(other));
            }
        }
        extend_segments(ctx, path, seg_idx + 1, other, st2, out, cap)?;
        if let Some(c) = cap {
            if out.len() >= c {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Enumerate (relationship, other-end) pairs from `node` that satisfy the
/// relationship pattern (direction, types, properties, pre-bound rel var).
fn hop_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    node: NodeId,
    rel_pat: &RelPattern,
) -> Result<Vec<(RelId, NodeId)>> {
    // A pre-bound relationship variable fixes the candidate.
    if let Some(v) = &rel_pat.var {
        if let Some(Value::Rel(rid)) = row.get(v) {
            let rid = *rid;
            if let Some((s, d)) = ctx.view.rel_endpoints(rid) {
                let other = if s == node {
                    Some(d)
                } else if d == node {
                    Some(s)
                } else {
                    None
                };
                let dir_ok = match rel_pat.direction {
                    Direction::Out => s == node,
                    Direction::In => d == node,
                    Direction::Both => true,
                };
                if let (Some(other), true) = (other, dir_ok) {
                    if rel_matches(ctx, row, rid, rel_pat)? {
                        return Ok(vec![(rid, other)]);
                    }
                }
            }
            return Ok(Vec::new());
        }
    }
    let mut out = Vec::new();
    for rid in ctx.view.rels_of(node, rel_pat.direction) {
        let Some((s, d)) = ctx.view.rel_endpoints(rid) else {
            continue;
        };
        let other = match rel_pat.direction {
            Direction::Out => {
                if s != node {
                    continue;
                }
                d
            }
            Direction::In => {
                if d != node {
                    continue;
                }
                s
            }
            Direction::Both => {
                if s == node {
                    d
                } else {
                    s
                }
            }
        };
        if rel_matches(ctx, row, rid, rel_pat)? {
            out.push((rid, other));
        }
    }
    Ok(out)
}

fn rel_matches(ctx: &EvalCtx<'_>, row: &Row, rid: RelId, pat: &RelPattern) -> Result<bool> {
    if !pat.types.is_empty() {
        let t = ctx.view.rel_type(rid);
        if !pat.types.iter().any(|want| t.as_deref() == Some(want)) {
            return Ok(false);
        }
    }
    for (k, e) in &pat.props {
        let want = eval(ctx, row, e)?;
        let have = ctx.view.rel_prop(rid, k).unwrap_or(Value::Null);
        if have.eq3(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Split a `WHERE` clause into its top-level conjuncts and collect the
/// equality predicates of shape `var.key = expr` (either orientation).
/// Restricting a variable's candidates by such a conjunct is always sound:
/// the full `WHERE` is still evaluated on every surviving row, and a row on
/// which the conjunct is false or NULL can never make the conjunction
/// truthy.
fn equality_pushdowns(where_clause: Option<&Expr>) -> Pushdowns {
    fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(BinOp::And, a, b) = e {
            conjuncts(a, out);
            conjuncts(b, out);
        } else {
            out.push(e);
        }
    }
    let mut map: Pushdowns = HashMap::new();
    let Some(w) = where_clause else {
        return map;
    };
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);
    for c in cs {
        if let Expr::Binary(BinOp::Eq, lhs, rhs) = c {
            for (prop_side, value_side) in [(lhs, rhs), (rhs, lhs)] {
                if let Expr::Prop(base, key) = prop_side.as_ref() {
                    if let Expr::Var(v) = base.as_ref() {
                        map.entry(v.clone())
                            .or_default()
                            .push((key.clone(), value_side.as_ref().clone()));
                    }
                }
            }
        }
    }
    map
}

/// Candidate start nodes for a node pattern.
///
/// Access paths, in order of preference:
/// 1. a **pre-bound variable** (single candidate);
/// 2. a **transition-variable label** (`NEW`, `NEWNODES`, …) bound in the
///    row restricts candidates to those items;
/// 3. the cheapest of — a **property-index lookup** (from inline
///    `{key: value}` maps and `WHERE` equality conjuncts pushed down), the
///    **intersection of all label extents** (enumerated from the smallest),
///    or a **full scan** — chosen by estimated cardinality.
fn node_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> Result<Vec<NodeId>> {
    if let Some(v) = &np.var {
        match row.get(v) {
            Some(Value::Node(n)) => return Ok(vec![*n]),
            Some(Value::Null) => return Ok(Vec::new()),
            Some(other) => {
                return Err(CypherError::type_err(format!(
                    "variable '{v}' is bound to {}, expected a node",
                    other.type_name()
                )))
            }
            None => {}
        }
    }
    // Transition-variable labels restrict candidates.
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            return nodes_from_value(l, v);
        }
    }

    // Property-index access paths: inline `{key: value}` properties plus
    // WHERE equality conjuncts on this pattern's variable, tried against
    // every label's index. An evaluation failure (e.g. the value refers to
    // a variable bound later) merely disqualifies the path — the predicate
    // itself is still enforced by `node_matches` / the WHERE clause.
    let mut best_index: Option<Vec<NodeId>> = None;
    let pushed_specs = np
        .var
        .as_ref()
        .and_then(|v| pushed.get(v))
        .map(Vec::as_slice)
        .unwrap_or(&[]);
    for (key, value_expr) in np.props.iter().chain(pushed_specs) {
        let Ok(value) = eval(ctx, row, value_expr) else {
            continue;
        };
        for label in &np.labels {
            if let Some(ids) = ctx.view.nodes_with_prop(label, key, &value) {
                if best_index.as_ref().is_none_or(|b| ids.len() < b.len()) {
                    best_index = Some(ids);
                }
            }
        }
    }

    // Label extents, cheapest first.
    let mut label_cards: Vec<(&String, usize)> = np
        .labels
        .iter()
        .map(|l| (l, ctx.view.label_cardinality(l)))
        .collect();
    label_cards.sort_by_key(|(_, c)| *c);

    match (best_index, label_cards.first().map(|(_, c)| *c)) {
        (Some(ids), Some(lc)) if ids.len() <= lc => Ok(ids),
        (Some(ids), None) => Ok(ids),
        (_, Some(_)) => {
            // Intersect all label extents: enumerate the smallest, filter
            // by membership in the rest (a pattern `(:A:B)` must not scan
            // every `A` when `B` is far more selective).
            let mut ids = ctx.view.nodes_with_label(label_cards[0].0);
            for (l, _) in &label_cards[1..] {
                ids.retain(|id| ctx.view.node_has_label(*id, l));
            }
            Ok(ids)
        }
        (None, None) => Ok(ctx.view.all_node_ids()),
    }
}

fn nodes_from_value(name: &str, v: &Value) -> Result<Vec<NodeId>> {
    match v {
        Value::Node(n) => Ok(vec![*n]),
        Value::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                match i {
                    Value::Node(n) => out.push(*n),
                    Value::Null => {}
                    other => {
                        return Err(CypherError::type_err(format!(
                            "transition variable '{name}' contains {}, expected nodes",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(out)
        }
        Value::Null => Ok(Vec::new()),
        other => Err(CypherError::type_err(format!(
            "label position '{name}' is bound to {}, expected node(s)",
            other.type_name()
        ))),
    }
}

/// Check labels and property predicates of a node pattern against a concrete
/// node. Labels bound in the row act as candidate restrictions (checked via
/// membership), not stored labels.
fn node_matches(ctx: &EvalCtx<'_>, row: &Row, node: NodeId, np: &NodePattern) -> Result<bool> {
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            // transition-variable label: membership test
            let members = nodes_from_value(l, v)?;
            if !members.contains(&node) {
                return Ok(false);
            }
        } else if !ctx.view.node_has_label(node, l) {
            return Ok(false);
        }
    }
    for (k, e) in &np.props {
        let want = eval(ctx, row, e)?;
        let have = ctx.view.node_prop(node, k).unwrap_or(Value::Null);
        if have.eq3(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Clause;
    use crate::parser::parse_query;
    use crate::row::Params;
    use pg_graph::{Graph, PropertyMap};

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Extract patterns + where from a `MATCH … RETURN 1` query.
    fn patterns_of(src: &str) -> (Vec<PathPattern>, Option<Expr>) {
        let q = parse_query(src).unwrap();
        match q.clauses.into_iter().next().unwrap() {
            Clause::Match {
                patterns,
                where_clause,
                ..
            } => (patterns, where_clause),
            _ => panic!("expected MATCH"),
        }
    }

    fn run_match(g: &Graph, src: &str, seed: Row) -> Vec<Row> {
        let (pats, where_) = patterns_of(src);
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 0);
        match_patterns(&ctx, &seed, &pats, where_.as_ref(), None).unwrap()
    }

    /// Small CoV2K-flavoured fixture:
    /// (m:Mutation)-[:Risk]->(e:CriticalEffect), (m)-[:FoundIn]->(s:Sequence)
    fn fixture() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let m = g
            .create_node(["Mutation"], props(&[("name", Value::str("D614G"))]))
            .unwrap();
        let e = g
            .create_node(
                ["CriticalEffect"],
                props(&[("description", Value::str("Enhanced infectivity"))]),
            )
            .unwrap();
        let s = g
            .create_node(["Sequence"], props(&[("accession", Value::str("SEQ1"))]))
            .unwrap();
        g.create_rel(m, e, "Risk", PropertyMap::new()).unwrap();
        g.create_rel(m, s, "FoundIn", PropertyMap::new()).unwrap();
        (g, m, e, s)
    }

    #[test]
    fn label_scan_and_prop_filter() {
        let (g, m, ..) = fixture();
        let rows = run_match(
            &g,
            "MATCH (x:Mutation {name: 'D614G'}) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(m)));
        let rows = run_match(&g, "MATCH (x:Mutation {name: 'nope'}) RETURN 1", Row::new());
        assert!(rows.is_empty());
    }

    #[test]
    fn directed_and_undirected_hops() {
        let (g, m, e, _) = fixture();
        let rows = run_match(&g, "MATCH (a:Mutation)-[:Risk]->(b) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("b"), Some(&Value::Node(e)));
        // wrong direction
        let rows = run_match(&g, "MATCH (a:Mutation)<-[:Risk]-(b) RETURN 1", Row::new());
        assert!(rows.is_empty());
        // undirected from the effect side
        let rows = run_match(
            &g,
            "MATCH (x:CriticalEffect)-[:Risk]-(y) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("y"), Some(&Value::Node(m)));
    }

    #[test]
    fn multi_segment_path() {
        let (g, _, e, s) = fixture();
        let rows = run_match(
            &g,
            "MATCH (c:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(q:Sequence) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("c"), Some(&Value::Node(e)));
        assert_eq!(rows[0].get("q"), Some(&Value::Node(s)));
    }

    #[test]
    fn prebound_node_variable() {
        let (g, m, ..) = fixture();
        let mut seed = Row::new();
        seed.set("a", Value::Node(m));
        let rows = run_match(&g, "MATCH (a)-[:Risk]->(b) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn prebound_rel_variable() {
        // Paper's NewCriticalLineage binds the relationship variable NEW.
        let mut g = Graph::new();
        let s = g.create_node(["Sequence"], PropertyMap::new()).unwrap();
        let l = g
            .create_node(["Lineage"], props(&[("name", Value::str("B.1.1.7"))]))
            .unwrap();
        let r = g.create_rel(s, l, "BelongsTo", PropertyMap::new()).unwrap();
        let mut seed = Row::new();
        seed.set("NEW", Value::Rel(r));
        let rows = run_match(&g, "MATCH (s:Sequence)-[NEW]-(l:Lineage) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("l"), Some(&Value::Node(l)));
    }

    #[test]
    fn transition_variable_label() {
        // (pn:NEWNODES) restricts candidates to the bound list.
        let mut g = Graph::new();
        let a = g.create_node(["P"], PropertyMap::new()).unwrap();
        let b = g.create_node(["P"], PropertyMap::new()).unwrap();
        let _c = g.create_node(["P"], PropertyMap::new()).unwrap();
        let mut seed = Row::new();
        seed.set("NEWNODES", Value::list([Value::Node(a), Value::Node(b)]));
        let rows = run_match(&g, "MATCH (pn:NEWNODES) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 2);
        // combined with a stored label
        let rows = run_match(&g, "MATCH (pn:NEWNODES:P) RETURN 1", seed);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rel_uniqueness_within_match() {
        // a-KNOWS-b only: pattern (x)-[:KNOWS]-(y)-[:KNOWS]-(z) must not
        // reuse the same relationship for both hops.
        let mut g = Graph::new();
        let a = g.create_node(["X"], PropertyMap::new()).unwrap();
        let b = g.create_node(["X"], PropertyMap::new()).unwrap();
        g.create_rel(a, b, "KNOWS", PropertyMap::new()).unwrap();
        let rows = run_match(
            &g,
            "MATCH (x)-[:KNOWS]-(y)-[:KNOWS]-(z) RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
        // but a triangle works
        let c = g.create_node(["X"], PropertyMap::new()).unwrap();
        g.create_rel(b, c, "KNOWS", PropertyMap::new()).unwrap();
        let rows = run_match(
            &g,
            "MATCH (x)-[:KNOWS]-(y)-[:KNOWS]-(z) RETURN 1",
            Row::new(),
        );
        // paths: a-b-c, c-b-a (x/z symmetric)
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn var_length_paths() {
        // chain a->b->c->d
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| {
                g.create_node(["N"], props(&[("i", Value::Int(i))]))
                    .unwrap()
            })
            .collect();
        for w in ids.windows(2) {
            g.create_rel(w[0], w[1], "NEXT", PropertyMap::new())
                .unwrap();
        }
        let mut seed = Row::new();
        seed.set("a", Value::Node(ids[0]));
        let rows = run_match(&g, "MATCH (a)-[:NEXT*1..3]->(b) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 3); // b, c, d
        let rows = run_match(&g, "MATCH (a)-[:NEXT*2]->(b) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("b"), Some(&Value::Node(ids[2])));
        // rel var binds the list of traversed rels
        let rows = run_match(&g, "MATCH (a)-[r:NEXT*3]->(b) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
        match rows[0].get("r") {
            Some(Value::List(rels)) => assert_eq!(rels.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_filter_applies() {
        let (g, ..) = fixture();
        let rows = run_match(
            &g,
            "MATCH (x:Mutation) WHERE x.name STARTS WITH 'D' RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        let rows = run_match(
            &g,
            "MATCH (x:Mutation) WHERE x.name STARTS WITH 'Z' RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn multiple_patterns_join() {
        let (g, m, e, s) = fixture();
        let rows = run_match(
            &g,
            "MATCH (a:Mutation)-[:Risk]-(b:CriticalEffect), (a)-[:FoundIn]-(c:Sequence) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("a"), Some(&Value::Node(m)));
        assert_eq!(rows[0].get("b"), Some(&Value::Node(e)));
        assert_eq!(rows[0].get("c"), Some(&Value::Node(s)));
    }

    #[test]
    fn pattern_vars_collects_names() {
        let (pats, _) = patterns_of("MATCH (a)-[r:T]->(b), (c) RETURN 1");
        assert_eq!(pattern_vars(&pats), vec!["a", "b", "c", "r"]);
    }

    /// Planner-level helper: the candidate set chosen for the first
    /// pattern's start node.
    fn candidates_of(g: &Graph, src: &str, seed: &Row) -> Vec<NodeId> {
        let (pats, where_) = patterns_of(src);
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 0);
        let pushed = equality_pushdowns(where_.as_ref());
        node_candidates(&ctx, seed, &pats[0].start, &pushed).unwrap()
    }

    #[test]
    fn second_label_drives_candidates_when_more_selective() {
        // Regression: `(:A:B)` used to scan every `A` node even when `B`
        // was far more selective.
        let mut g = Graph::new();
        for _ in 0..50 {
            g.create_node(["A"], PropertyMap::new()).unwrap();
        }
        let both1 = g.create_node(["A", "B"], PropertyMap::new()).unwrap();
        let both2 = g.create_node(["B", "A"], PropertyMap::new()).unwrap();
        let cands = candidates_of(&g, "MATCH (x:A:B) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 2, "candidates come from the B extent");
        assert!(cands.contains(&both1) && cands.contains(&both2));
        // order of labels in the pattern is irrelevant
        let cands = candidates_of(&g, "MATCH (x:B:A) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 2);
        // and matching still returns exactly the doubly-labelled nodes
        let rows = run_match(&g, "MATCH (x:A:B) RETURN 1", Row::new());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inline_prop_map_uses_property_index() {
        let mut g = Graph::new();
        let mut wanted = NodeId(0);
        for i in 0..100 {
            let n = g
                .create_node(["M"], props(&[("name", Value::str(format!("m{i}")))]))
                .unwrap();
            if i == 42 {
                wanted = n;
            }
        }
        // without an index: the label extent is the best source
        let cands = candidates_of(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 100);
        g.create_index("M", "name");
        let cands = candidates_of(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", &Row::new());
        assert_eq!(cands, vec![wanted]);
        let rows = run_match(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(wanted)));
    }

    #[test]
    fn where_equality_conjunct_is_pushed_down() {
        let mut g = Graph::new();
        let mut wanted = NodeId(0);
        for i in 0..100 {
            let n = g
                .create_node(["M"], props(&[("k", Value::Int(i))]))
                .unwrap();
            if i == 7 {
                wanted = n;
            }
        }
        g.create_index("M", "k");
        // conjunct inside an AND, written value-first
        let cands = candidates_of(
            &g,
            "MATCH (x:M) WHERE 7 = x.k AND x.k >= 0 RETURN 1",
            &Row::new(),
        );
        assert_eq!(cands, vec![wanted]);
        let rows = run_match(
            &g,
            "MATCH (x:M) WHERE 7 = x.k AND x.k >= 0 RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        // a disjunction must NOT be pushed down
        let cands = candidates_of(
            &g,
            "MATCH (x:M) WHERE x.k = 7 OR x.k = 8 RETURN 1",
            &Row::new(),
        );
        assert_eq!(cands.len(), 100, "OR is not a conjunct");
        let rows = run_match(
            &g,
            "MATCH (x:M) WHERE x.k = 7 OR x.k = 8 RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unevaluable_pushdown_falls_back_without_losing_rows() {
        // `x.k = y.k` references `y`, bound only later in the join; the
        // planner must skip the path, not fail or drop rows.
        let mut g = Graph::new();
        for i in 0..10 {
            g.create_node(["L"], props(&[("k", Value::Int(i))]))
                .unwrap();
            g.create_node(["R"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        g.create_index("L", "k");
        let rows = run_match(
            &g,
            "MATCH (x:L), (y:R) WHERE x.k = y.k RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn index_lookup_respects_numeric_equality() {
        let mut g = Graph::new();
        let n = g
            .create_node(["M"], props(&[("k", Value::Int(1))]))
            .unwrap();
        g.create_index("M", "k");
        // 1.0 = 1 in Cypher; the index must agree
        let rows = run_match(&g, "MATCH (x:M {k: 1.0}) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(n)));
    }

    #[test]
    fn multi_label_pattern_requires_all() {
        let mut g = Graph::new();
        let both = g
            .create_node(["HospitalizedPatient", "IcuPatient"], PropertyMap::new())
            .unwrap();
        let _only = g
            .create_node(["HospitalizedPatient"], PropertyMap::new())
            .unwrap();
        let rows = run_match(
            &g,
            "MATCH (p:HospitalizedPatient:IcuPatient) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("p"), Some(&Value::Node(both)));
    }
}
