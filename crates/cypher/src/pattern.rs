//! Graph pattern matching and the cost-based candidate planner (v2).
//!
//! Backtracking join over path patterns with Cypher's relationship-
//! uniqueness semantics (a relationship may be traversed at most once per
//! `MATCH` clause).
//!
//! **Transition-variable candidates** (PG-Triggers §6.2): a label position
//! whose name is bound in the current row to a node, a relationship, or a
//! list of them restricts the candidate set to those items instead of being
//! treated as a stored label. This is what makes the paper's patterns
//! `MATCH (pn:NEWNODES)-[:TreatedAt]-(h)` and `MATCH (pn:NEW)-…` work: the
//! trigger engine binds `NEWNODES`/`NEW` in the seed row.
//!
//! **Planner v3** (`plan_patterns`): before matching, each `MATCH`'s
//! pattern list is re-planned per seed row —
//!
//! 1. `WHERE` conjuncts of shape `var.key = e`, `var.key </<=/>/>= e` and
//!    `var.key STARTS WITH e` are pushed down into candidate selection,
//!    served by equality, ordered **range**, and **prefix** index scans
//!    ([`pg_graph::GraphView::nodes_in_prop_range`] and friends);
//! 2. each linear path is **anchored at its most selective node position**
//!    (estimated from index/extent cardinalities) by reversing the path or
//!    splitting it at a named interior node, instead of always starting at
//!    the lexical start;
//! 3. whole paths are **joined in ascending cost order**, greedily re-
//!    costing as variables become bound by earlier paths;
//! 4. a path whose cheapest access is a selective **relationship** (a
//!    pre-bound rel variable, a small type extent, or a relationship-
//!    property index hit) seeds its start candidates from the relationship
//!    extent's endpoints rather than from a node scan;
//! 5. relationship range/prefix pushdowns prune **per-hop expansion**: a
//!    hop whose pushed predicate is estimated more selective than the
//!    adjacency list is served from
//!    [`pg_graph::GraphView::rels_in_prop_range`], and every enumerated
//!    relationship is pre-filtered against the evaluated predicates.
//!
//! Planning itself is **count-only** (v3): all cost estimates go through
//! the count probes ([`pg_graph::GraphView::count_nodes_with_prop`],
//! histogram-backed range/prefix estimates,
//! [`pg_graph::GraphView::node_prop_stats`] `total/distinct` for equality
//! conjuncts whose operand is bound by another join path) — no candidate
//! vector is materialized until an access path has been *chosen*.

use crate::ast::{BinOp, Expr, NodePattern, PathPattern, RelPattern};
use crate::error::{CypherError, Result};
use crate::expr::{eval, EvalCtx};
use crate::physical::{build_intervals, composite_probe_args, Intervals};
use crate::row::Row;
use pg_graph::{Direction, NodeId, RelId, Value};
use std::collections::{HashMap, HashSet};
use std::ops::Bound;

/// Predicates pushed down from a `WHERE` clause into candidate planning,
/// per pattern variable. Pushing a conjunct down is always sound: the full
/// `WHERE` is still evaluated on every surviving row, and a row on which a
/// conjunct is false or NULL can never make the conjunction truthy.
#[derive(Debug, Default)]
pub(crate) struct VarPredicates {
    /// `var.key = e` conjuncts (either orientation).
    pub(crate) eqs: Vec<(String, Expr)>,
    /// `var.key <op> e` conjuncts, normalized so the property is on the
    /// left (`e < var.key` arrives as `var.key > e`).
    pub(crate) ranges: Vec<(String, BinOp, Expr)>,
    /// `var.key STARTS WITH e` conjuncts.
    pub(crate) prefixes: Vec<(String, Expr)>,
}

pub(crate) type Pushdowns = HashMap<String, VarPredicates>;

/// One in-progress match: the binding row plus relationships already used in
/// this MATCH clause.
#[derive(Debug, Clone)]
pub(crate) struct MatchState {
    pub(crate) row: Row,
    pub(crate) used: Vec<RelId>,
}

/// Match a list of path patterns (as one joint MATCH clause) against the
/// view, starting from `seed`. Returns the extended binding rows; when
/// `limit` is given, stops after that many (EXISTS only needs one).
pub fn match_patterns(
    ctx: &EvalCtx<'_>,
    seed: &Row,
    patterns: &[PathPattern],
    where_clause: Option<&Expr>,
    limit: Option<usize>,
) -> Result<Vec<Row>> {
    let mut states = vec![MatchState {
        row: seed.clone(),
        used: Vec::new(),
    }];
    let pushed = extract_pushdowns(where_clause);
    let planned = plan_patterns(ctx, seed, patterns, &pushed);
    for pattern in &planned {
        let mut next = Vec::new();
        for st in &states {
            match_path(ctx, pattern, st, &pushed, &mut next, None)?;
        }
        states = next;
        if states.is_empty() {
            return Ok(Vec::new());
        }
    }
    let mut rows = Vec::new();
    for st in states {
        if let Some(w) = where_clause {
            if !eval(ctx, &st.row, w)?.is_truthy() {
                continue;
            }
        }
        rows.push(st.row);
        if let Some(l) = limit {
            if rows.len() >= l {
                break;
            }
        }
    }
    Ok(rows)
}

/// The variable names a pattern list can bind (used by OPTIONAL MATCH to
/// null-bind on failure).
pub fn pattern_vars(patterns: &[PathPattern]) -> Vec<String> {
    let mut out = Vec::new();
    for p in patterns {
        if let Some(v) = &p.start.var {
            out.push(v.clone());
        }
        for (r, n) in &p.segments {
            if let Some(v) = &r.var {
                out.push(v.clone());
            }
            if let Some(v) = &n.var {
                out.push(v.clone());
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Planner v2: join-order planning across a MATCH's pattern elements
// ---------------------------------------------------------------------

/// A conservative "don't know" cardinality for unestimatable positions.
const UNKNOWN_COST: usize = usize::MAX / 4;

/// The best **count-only** index estimate for a node pattern: the same
/// access paths [`index_candidates`] would try, probed through the
/// counting APIs so planning materializes no candidate vectors. Equality
/// conjuncts whose operand cannot be evaluated yet (it references a
/// variable bound by an earlier join path — an intermediate join result)
/// contribute the average-bucket selectivity `total / distinct` from
/// [`pg_graph::GraphView::node_prop_stats`].
fn index_count_estimate(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> Option<usize> {
    let preds = np.var.as_ref().and_then(|v| pushed.get(v));
    let mut best: Option<usize> = None;
    let mut consider = |count: Option<usize>| {
        if let Some(count) = count {
            if best.is_none_or(|b| count < b) {
                best = Some(count);
            }
        }
    };

    let pushed_eqs = preds.map(|p| p.eqs.as_slice()).unwrap_or(&[]);
    let mut eval_eqs: HashMap<&str, Value> = HashMap::new();
    for (key, value_expr) in np.props.iter().chain(pushed_eqs) {
        match eval(ctx, row, value_expr) {
            Ok(value) => {
                for label in &np.labels {
                    consider(ctx.view.count_nodes_with_prop(label, key, &value));
                }
                eval_eqs.entry(key.as_str()).or_insert(value);
            }
            Err(_) => {
                for label in &np.labels {
                    if let Some((total, distinct)) = ctx.view.node_prop_stats(label, key) {
                        if let Some(avg) = total.checked_div(distinct) {
                            consider(Some(avg.max(1)));
                        }
                    }
                }
            }
        }
    }

    let mut intervals: HashMap<String, (Bound<Value>, Bound<Value>)> = HashMap::new();
    let mut prefix_vals: HashMap<&str, String> = HashMap::new();
    if let Some(preds) = preds {
        match build_intervals(ctx, row, &preds.ranges) {
            Intervals::Never => return Some(0),
            Intervals::Bounds(b) => intervals = b,
        }
        for (key, (lo, hi)) in &intervals {
            for label in &np.labels {
                consider(
                    ctx.view
                        .count_nodes_in_prop_range(label, key, lo.as_ref(), hi.as_ref()),
                );
            }
        }

        for (key, expr) in &preds.prefixes {
            let Ok(value) = eval(ctx, row, expr) else {
                continue;
            };
            match &value {
                Value::Str(prefix) => {
                    for label in &np.labels {
                        consider(ctx.view.count_nodes_with_prop_prefix(label, key, prefix));
                    }
                    prefix_vals.entry(key.as_str()).or_insert(prefix.clone());
                }
                _ => return Some(0),
            }
        }
    }

    // Composite probes: the longest equality prefix of each definition
    // plus one trailing range/prefix bound, costed count-only like every
    // other access path.
    for label in &np.labels {
        for def in ctx.view.node_composite_defs(label) {
            if let Some((eq, trailing)) =
                composite_probe_args(&eval_eqs, &intervals, &prefix_vals, &def)
            {
                consider(ctx.view.count_nodes_with_composite(
                    label,
                    &def,
                    &eq,
                    trailing.as_trailing(),
                ));
            }
        }
    }

    best
}

/// Estimated candidate-set size for anchoring a path at a node pattern.
/// Mirrors the access-path choice of [`node_candidates`] using count-only
/// probes and statistics (no candidate vector is materialized during
/// planning); `bound` holds variables that will already be bound when this
/// path runs (seed row plus earlier-joined paths).
fn estimate_node_cost(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
    bound: &HashSet<String>,
) -> usize {
    if let Some(v) = &np.var {
        if row.contains(v) || bound.contains(v) {
            return 0;
        }
    }
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            return match v {
                Value::List(items) => items.len(),
                _ => 1,
            };
        }
        if bound.contains(l) {
            // bound by an earlier path: restricted, size unknown but small
            return 1;
        }
    }
    let index_est = index_count_estimate(ctx, row, np, pushed);
    let label_min = np
        .labels
        .iter()
        .map(|l| ctx.view.label_cardinality(l))
        .min();
    match (index_est, label_min) {
        (Some(i), Some(l)) => i.min(l),
        (Some(i), None) => i,
        (None, Some(l)) => l,
        (None, None) => ctx.view.node_count_estimate().max(1),
    }
}

/// Estimated extent size when a single-hop relationship pattern is used as
/// the access path (type extents, relationship-property index hits, or a
/// pre-bound rel variable). `None` = unusable as a seed (variable-length,
/// untyped and unbound). Count-only (v3): equality, range and prefix
/// pushdowns on the relationship variable are costed through the counting
/// probes; unevaluable equality operands fall back to the `total/distinct`
/// average-bucket selectivity.
fn estimate_rel_cost(
    ctx: &EvalCtx<'_>,
    row: &Row,
    rp: &RelPattern,
    pushed: &Pushdowns,
    bound: &HashSet<String>,
) -> Option<usize> {
    if rp.hops.is_some() {
        return None;
    }
    if let Some(v) = &rp.var {
        if let Some(Value::Rel(_)) = row.get(v) {
            return Some(1);
        }
        if bound.contains(v) {
            return Some(1);
        }
    }
    if rp.types.is_empty() {
        return None;
    }
    let preds = rp.var.as_ref().and_then(|v| pushed.get(v));
    let pushed_eqs = preds.map(|p| p.eqs.as_slice()).unwrap_or(&[]);
    let intervals = match preds {
        Some(p) if !p.ranges.is_empty() => match build_intervals(ctx, row, &p.ranges) {
            Intervals::Never => return Some(0),
            Intervals::Bounds(b) => b,
        },
        _ => HashMap::new(),
    };
    // Evaluate each eq operand exactly once (the per-type loop and the
    // composite probes both consume the results; an Err means the operand
    // references a variable bound later → total/distinct estimate).
    let evaluated: Vec<(&String, Option<Value>)> = rp
        .props
        .iter()
        .chain(pushed_eqs)
        .map(|(key, value_expr)| (key, eval(ctx, row, value_expr).ok()))
        .collect();
    let mut eval_eqs: HashMap<&str, Value> = HashMap::new();
    for (key, value) in &evaluated {
        if let Some(v) = value {
            eval_eqs.entry(key.as_str()).or_insert_with(|| v.clone());
        }
    }
    let mut prefix_vals: HashMap<&str, String> = HashMap::new();
    if let Some(p) = preds {
        for (key, expr) in &p.prefixes {
            if let Ok(Value::Str(prefix)) = eval(ctx, row, expr) {
                prefix_vals.entry(key.as_str()).or_insert(prefix);
            }
        }
    }
    let mut total = 0usize;
    for t in &rp.types {
        let mut best = ctx.view.rel_type_cardinality(t);
        for (key, value) in &evaluated {
            match value {
                Some(value) => {
                    if let Some(c) = ctx.view.count_rels_with_prop(t, key, value) {
                        best = best.min(c);
                    }
                }
                None => {
                    if let Some((tot, distinct)) = ctx.view.rel_prop_stats(t, key) {
                        if let Some(avg) = tot.checked_div(distinct) {
                            best = best.min(avg.max(1));
                        }
                    }
                }
            }
        }
        for (key, (lo, hi)) in &intervals {
            if let Some(c) = ctx
                .view
                .count_rels_in_prop_range(t, key, lo.as_ref(), hi.as_ref())
            {
                best = best.min(c);
            }
        }
        for def in ctx.view.rel_composite_defs(t) {
            if let Some((eq, trailing)) =
                composite_probe_args(&eval_eqs, &intervals, &prefix_vals, &def)
            {
                if let Some(c) =
                    ctx.view
                        .count_rels_with_composite(t, &def, &eq, trailing.as_trailing())
                {
                    best = best.min(c);
                }
            }
        }
        total = total.saturating_add(best);
    }
    Some(total)
}

/// Candidate relationships when a single-hop relationship pattern seeds the
/// path: the pre-bound rel variable, or per type the best of a
/// relationship-property index hit and the type extent.
fn rel_seed_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    rp: &RelPattern,
    pushed: &Pushdowns,
) -> Option<Vec<RelId>> {
    if rp.hops.is_some() {
        return None;
    }
    if let Some(v) = &rp.var {
        if let Some(Value::Rel(r)) = row.get(v) {
            return Some(vec![*r]);
        }
    }
    if rp.types.is_empty() {
        return None;
    }
    let pushed_eqs = rp
        .var
        .as_ref()
        .and_then(|v| pushed.get(v))
        .map(|p| p.eqs.as_slice())
        .unwrap_or(&[]);
    let mut out: Vec<RelId> = Vec::new();
    for t in &rp.types {
        let mut best: Option<Vec<RelId>> = None;
        for (key, value_expr) in rp.props.iter().chain(pushed_eqs) {
            let Ok(value) = eval(ctx, row, value_expr) else {
                continue;
            };
            if let Some(ids) = ctx.view.rels_with_prop(t, key, &value) {
                if best.as_ref().is_none_or(|b| ids.len() < b.len()) {
                    best = Some(ids);
                }
            }
        }
        out.extend(best.unwrap_or_else(|| ctx.view.rels_with_type(t)));
    }
    out.sort();
    out.dedup();
    Some(out)
}

/// A relationship pattern as seen from its other endpoint.
fn reverse_rel(rp: &RelPattern) -> RelPattern {
    let mut out = rp.clone();
    out.direction = rp.direction.reverse();
    out
}

/// The path re-rooted at node position `anchor` (0 = lexical start):
/// the reversed prefix walked away from the anchor, then the suffix. Both
/// returned paths start at the anchor node pattern; the second is empty
/// (`None`) unless the anchor is interior.
fn reroot_path(path: &PathPattern, anchor: usize) -> (PathPattern, Option<PathPattern>) {
    // node position i: 0 = path.start, i>0 = segments[i-1].1
    let node_at = |i: usize| -> &NodePattern {
        if i == 0 {
            &path.start
        } else {
            &path.segments[i - 1].1
        }
    };
    if anchor == 0 {
        return (path.clone(), None);
    }
    // reversed prefix: anchor → anchor-1 → … → 0
    let left = PathPattern {
        start: node_at(anchor).clone(),
        segments: (0..anchor)
            .rev()
            .map(|j| (reverse_rel(&path.segments[j].0), node_at(j).clone()))
            .collect(),
    };
    if anchor == path.segments.len() {
        (left, None)
    } else {
        let right = PathPattern {
            start: node_at(anchor).clone(),
            segments: path.segments[anchor..].to_vec(),
        };
        (left, Some(right))
    }
}

/// Expected output rows **per input row** of one hop, from the degree
/// statistics ([`crate::physical::expand_fanout`], planner v4). Labels
/// bound in the row or by an earlier join path are transition variables,
/// not stored labels, and contribute no statistic; hops with no applicable
/// statistic (variable-length, untyped, unlabeled source) multiply by 1 —
/// the conservative "don't know" fanout.
fn hop_fanout(
    ctx: &EvalCtx<'_>,
    row: &Row,
    src: &NodePattern,
    rp: &RelPattern,
    bound: &HashSet<String>,
) -> f64 {
    if rp.hops.is_some() {
        return 1.0;
    }
    let labels: Vec<String> = src
        .labels
        .iter()
        .filter(|l| row.get(l).is_none() && !bound.contains(l.as_str()))
        .cloned()
        .collect();
    crate::physical::expand_fanout(ctx, &labels, &rp.types, rp.direction).unwrap_or(1.0)
}

/// Expected rows enumerated while walking the whole path from anchor
/// position `anchor` — the **join-output cardinality** term of an anchor's
/// cost (planner v4). Starting from the anchor's access estimate, each hop
/// multiplies the running row count by its expected fanout and the
/// cumulative counts of every hop are summed. The leftward (reversed-
/// prefix) walk runs first and the rightward suffix walk continues from
/// its result, mirroring what an interior anchor actually executes after
/// [`reroot_path`]: the suffix half-path runs once per row of the reversed
/// prefix, so its rows multiply — an additive model would systematically
/// undercount interior splits with a fat left side.
fn walk_cost(
    ctx: &EvalCtx<'_>,
    row: &Row,
    path: &PathPattern,
    anchor: usize,
    access: usize,
    bound: &HashSet<String>,
) -> usize {
    let k = path.segments.len();
    let node_at = |i: usize| -> &NodePattern {
        if i == 0 {
            &path.start
        } else {
            &path.segments[i - 1].1
        }
    };
    let mut total = 0f64;
    let mut rows = access.max(1) as f64;
    for j in (0..anchor).rev() {
        let rp = reverse_rel(&path.segments[j].0);
        rows *= hop_fanout(ctx, row, node_at(j + 1), &rp, bound);
        total += rows;
    }
    for j in anchor..k {
        rows *= hop_fanout(ctx, row, node_at(j), &path.segments[j].0, bound);
        total += rows;
    }
    if total.is_finite() && total < UNKNOWN_COST as f64 {
        total as usize
    } else {
        UNKNOWN_COST
    }
}

/// The cheapest anchor position of a path and its estimated cost. A
/// position's **access** cost is the best of its node access paths and
/// (for single-hop segments adjacent to it) the relationship extent that
/// could seed it; its total cost adds the expected rows of walking the
/// whole path from there ([`walk_cost`] — join-output cardinality from
/// degree statistics). Interior anchors require a named node (the two
/// half-paths join on the variable); unnamed interior positions are
/// skipped.
fn best_anchor(
    ctx: &EvalCtx<'_>,
    row: &Row,
    path: &PathPattern,
    pushed: &Pushdowns,
    bound: &HashSet<String>,
) -> (usize, usize) {
    let k = path.segments.len();
    let node_at = |i: usize| -> &NodePattern {
        if i == 0 {
            &path.start
        } else {
            &path.segments[i - 1].1
        }
    };
    let mut best = (0usize, UNKNOWN_COST);
    for i in 0..=k {
        if i != 0 && i != k && node_at(i).var.is_none() {
            continue; // interior split needs the anchor variable
        }
        let mut access = estimate_node_cost(ctx, row, node_at(i), pushed, bound);
        // a selective adjacent relationship can seed this anchor
        for seg in [i.checked_sub(1), (i < k).then_some(i)]
            .into_iter()
            .flatten()
        {
            if let Some(rc) = estimate_rel_cost(ctx, row, &path.segments[seg].0, pushed, bound) {
                access = access.min(rc);
            }
        }
        let cost = access.saturating_add(walk_cost(ctx, row, path, i, access, bound));
        if cost < best.1 {
            best = (i, cost);
        }
    }
    best
}

/// Join-order planning for one `MATCH`'s pattern list: re-root each path at
/// its cheapest anchor and greedily order paths by estimated anchor cost,
/// re-costing as earlier paths bind variables. Pure re-planning — the set
/// of result rows is unchanged (pattern matching is a join and relationship
/// uniqueness is a symmetric constraint over the whole assignment); only
/// the enumeration order (and hence row order) may differ.
pub(crate) fn plan_patterns(
    ctx: &EvalCtx<'_>,
    seed: &Row,
    patterns: &[PathPattern],
    pushed: &Pushdowns,
) -> Vec<PathPattern> {
    if patterns.len() == 1 && patterns[0].segments.is_empty() {
        return patterns.to_vec(); // nothing to plan
    }
    let mut bound: HashSet<String> = seed.names().cloned().collect();
    let mut remaining: Vec<(usize, &PathPattern)> = patterns.iter().enumerate().collect();
    let mut out = Vec::with_capacity(patterns.len());
    while !remaining.is_empty() {
        // pick the cheapest remaining path (stable on ties)
        let mut pick = 0usize;
        let mut pick_anchor = (0usize, UNKNOWN_COST);
        for (slot, (_, p)) in remaining.iter().enumerate() {
            let anchor = best_anchor(ctx, seed, p, pushed, &bound);
            if anchor.1 < pick_anchor.1 {
                pick = slot;
                pick_anchor = anchor;
            }
        }
        let (_, path) = remaining.remove(pick);
        for v in pattern_vars(std::slice::from_ref(path)) {
            bound.insert(v);
        }
        let (first, second) = reroot_path(path, pick_anchor.0);
        out.push(first);
        out.extend(second);
    }
    out
}

/// Candidate start nodes for a path: the node-pattern access paths of
/// [`node_candidates`], improved by seeding from the first segment's
/// relationship extent when that is **estimated** strictly smaller (a
/// pre-bound rel variable, a small type extent, or a relationship-
/// property index hit). Both sides are compared by count-only estimates;
/// only the winning access path is materialized.
pub(crate) fn start_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    path: &PathPattern,
    pushed: &Pushdowns,
) -> Result<Vec<NodeId>> {
    let Some((rel_pat, _)) = path.segments.first() else {
        return node_candidates(ctx, row, &path.start, pushed);
    };
    let node_est = estimate_node_cost(ctx, row, &path.start, pushed, &HashSet::new());
    if node_est <= 1 {
        return node_candidates(ctx, row, &path.start, pushed);
    }
    let est = estimate_rel_cost(ctx, row, rel_pat, pushed, &HashSet::new());
    if est.is_none_or(|e| e >= node_est) {
        return node_candidates(ctx, row, &path.start, pushed);
    }
    let Some(rels) = rel_seed_candidates(ctx, row, rel_pat, pushed) else {
        return node_candidates(ctx, row, &path.start, pushed);
    };
    if rels.len() >= node_est {
        return node_candidates(ctx, row, &path.start, pushed);
    }
    let mut out: Vec<NodeId> = Vec::with_capacity(rels.len());
    for rid in rels {
        let Some((s, d)) = ctx.view.rel_endpoints(rid) else {
            continue;
        };
        match rel_pat.direction {
            Direction::Out => out.push(s),
            Direction::In => out.push(d),
            Direction::Both => {
                out.push(s);
                out.push(d);
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn match_path(
    ctx: &EvalCtx<'_>,
    path: &PathPattern,
    st: &MatchState,
    pushed: &Pushdowns,
    out: &mut Vec<MatchState>,
    cap: Option<usize>,
) -> Result<()> {
    let candidates = start_candidates(ctx, &st.row, path, pushed)?;
    for cand in candidates {
        if !node_matches(ctx, &st.row, cand, &path.start)? {
            continue;
        }
        let mut st2 = st.clone();
        if let Some(v) = &path.start.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Node(cand)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Node(cand));
            }
        }
        extend_segments(ctx, path, 0, cand, st2, pushed, out, cap)?;
        if let Some(c) = cap {
            if out.len() >= c {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)] // threads the whole match context
fn extend_segments(
    ctx: &EvalCtx<'_>,
    path: &PathPattern,
    seg_idx: usize,
    current: NodeId,
    st: MatchState,
    pushed: &Pushdowns,
    out: &mut Vec<MatchState>,
    cap: Option<usize>,
) -> Result<()> {
    if seg_idx == path.segments.len() {
        out.push(st);
        return Ok(());
    }
    let (rel_pat, node_pat) = &path.segments[seg_idx];

    if let Some((min, max)) = rel_pat.hops {
        // Variable-length expansion (DFS with per-path rel uniqueness).
        let max = max.unwrap_or(64); // practical bound for unbounded patterns
        let mut stack: Vec<(NodeId, Vec<RelId>)> = vec![(current, Vec::new())];
        // Depth-first enumeration of all paths with length in [min, max].
        #[allow(clippy::too_many_arguments)] // local helper threading the whole match context
        fn dfs(
            ctx: &EvalCtx<'_>,
            st: &MatchState,
            rel_pat: &RelPattern,
            node_pat: &NodePattern,
            path: &PathPattern,
            seg_idx: usize,
            frontier: &mut Vec<(NodeId, Vec<RelId>)>,
            min: u32,
            max: u32,
            pushed: &Pushdowns,
            out: &mut Vec<MatchState>,
            cap: Option<usize>,
        ) -> Result<()> {
            while let Some((node, rels)) = frontier.pop() {
                let depth = rels.len() as u32;
                if depth >= min && node_matches(ctx, &st.row, node, node_pat)? {
                    // Complete this segment here.
                    let mut st2 = st.clone();
                    st2.used.extend(rels.iter().copied());
                    if let Some(v) = &rel_pat.var {
                        st2.row.set(
                            v.clone(),
                            Value::List(rels.iter().map(|&r| Value::Rel(r)).collect()),
                        );
                    }
                    let mut ok = true;
                    if let Some(v) = &node_pat.var {
                        if let Some(bound) = st2.row.get(v) {
                            ok = bound.eq3(&Value::Node(node)) == Some(true);
                        } else {
                            st2.row.set(v.clone(), Value::Node(node));
                        }
                    }
                    if ok {
                        extend_segments(ctx, path, seg_idx + 1, node, st2, pushed, out, cap)?;
                        if let Some(c) = cap {
                            if out.len() >= c {
                                return Ok(());
                            }
                        }
                    }
                }
                if depth < max {
                    for (rid, other) in hop_candidates(ctx, &st.row, node, rel_pat, pushed)? {
                        if rels.contains(&rid) || st.used.contains(&rid) {
                            continue;
                        }
                        let mut rels2 = rels.clone();
                        rels2.push(rid);
                        frontier.push((other, rels2));
                    }
                }
            }
            Ok(())
        }
        dfs(
            ctx, &st, rel_pat, node_pat, path, seg_idx, &mut stack, min, max, pushed, out, cap,
        )?;
        return Ok(());
    }

    // Single-hop segment.
    for (rid, other) in hop_candidates(ctx, &st.row, current, rel_pat, pushed)? {
        if st.used.contains(&rid) {
            continue;
        }
        if !node_matches(ctx, &st.row, other, node_pat)? {
            continue;
        }
        let mut st2 = st.clone();
        st2.used.push(rid);
        if let Some(v) = &rel_pat.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Rel(rid)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Rel(rid));
            }
        }
        if let Some(v) = &node_pat.var {
            if let Some(bound) = st2.row.get(v) {
                if bound.eq3(&Value::Node(other)) != Some(true) {
                    continue;
                }
            } else {
                st2.row.set(v.clone(), Value::Node(other));
            }
        }
        extend_segments(ctx, path, seg_idx + 1, other, st2, pushed, out, cap)?;
        if let Some(c) = cap {
            if out.len() >= c {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// The pushed-down predicates of a relationship variable, evaluated
/// against the current row. Conjuncts whose operand cannot be evaluated
/// yet are skipped (the `WHERE` clause still enforces them); a NULL/NaN
/// or non-string operand that can never make its conjunct truthy sets
/// `never` — no relationship can survive the `WHERE`.
struct RelPredEval {
    never: bool,
    eqs: Vec<(String, Value)>,
    intervals: HashMap<String, (Bound<Value>, Bound<Value>)>,
    prefixes: Vec<(String, String)>,
}

/// Evaluate a single-hop relationship pattern's pushed predicates. `None`
/// when the pattern is variable-length (the variable binds a list, the
/// predicates do not apply per-relationship) or carries no pushdowns.
fn eval_rel_pushdowns(
    ctx: &EvalCtx<'_>,
    row: &Row,
    rel_pat: &RelPattern,
    pushed: &Pushdowns,
) -> Option<RelPredEval> {
    if rel_pat.hops.is_some() {
        return None;
    }
    let preds = rel_pat.var.as_ref().and_then(|v| pushed.get(v))?;
    let mut out = RelPredEval {
        never: false,
        eqs: Vec::new(),
        intervals: HashMap::new(),
        prefixes: Vec::new(),
    };
    for (key, expr) in &preds.eqs {
        let Ok(value) = eval(ctx, row, expr) else {
            continue;
        };
        if value.is_null() {
            out.never = true; // `r.k = NULL` is never truthy
            return Some(out);
        }
        out.eqs.push((key.clone(), value));
    }
    match build_intervals(ctx, row, &preds.ranges) {
        Intervals::Never => {
            out.never = true;
            return Some(out);
        }
        Intervals::Bounds(b) => out.intervals = b,
    }
    for (key, expr) in &preds.prefixes {
        let Ok(value) = eval(ctx, row, expr) else {
            continue;
        };
        match value {
            Value::Str(prefix) => out.prefixes.push((key.clone(), prefix)),
            _ => {
                out.never = true; // non-string operand never matches
                return Some(out);
            }
        }
    }
    if out.eqs.is_empty() && out.intervals.is_empty() && out.prefixes.is_empty() {
        return None;
    }
    Some(out)
}

/// Whether a concrete relationship satisfies the evaluated pushdowns
/// (direct predicate evaluation — used to prune expansion early; the full
/// `WHERE` is still evaluated on surviving rows).
fn rel_satisfies(ctx: &EvalCtx<'_>, rid: RelId, pd: &RelPredEval) -> bool {
    use std::cmp::Ordering;
    for (key, want) in &pd.eqs {
        let have = ctx.view.rel_prop(rid, key).unwrap_or(Value::Null);
        if have.eq3(want) != Some(true) {
            return false;
        }
    }
    for (key, (lo, hi)) in &pd.intervals {
        let have = ctx.view.rel_prop(rid, key).unwrap_or(Value::Null);
        let lo_ok = match lo {
            Bound::Unbounded => true,
            Bound::Included(l) => {
                matches!(have.cmp3(l), Some(Ordering::Greater | Ordering::Equal))
            }
            Bound::Excluded(l) => matches!(have.cmp3(l), Some(Ordering::Greater)),
        };
        let hi_ok = match hi {
            Bound::Unbounded => true,
            Bound::Included(h) => matches!(have.cmp3(h), Some(Ordering::Less | Ordering::Equal)),
            Bound::Excluded(h) => matches!(have.cmp3(h), Some(Ordering::Less)),
        };
        if !lo_ok || !hi_ok {
            return false;
        }
    }
    for (key, prefix) in &pd.prefixes {
        let have = ctx.view.rel_prop(rid, key).unwrap_or(Value::Null);
        if !matches!(&have, Value::Str(s) if s.starts_with(prefix)) {
            return false;
        }
    }
    true
}

/// Enumerate (relationship, other-end) pairs from `node` that satisfy the
/// relationship pattern (direction, types, properties, pre-bound rel var).
///
/// Pushed-down range/prefix/equality predicates on the relationship
/// variable prune the expansion here (planner v3): when a pushed range is
/// **estimated** (count probe) more selective than the adjacency list and
/// the relationship-property index can serve it, the hop enumerates
/// [`pg_graph::GraphView::rels_in_prop_range`] instead of the adjacency
/// list; either way every candidate is pre-filtered against the evaluated
/// predicates rather than post-filtered by the final `WHERE`.
pub(crate) fn hop_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    node: NodeId,
    rel_pat: &RelPattern,
    pushed: &Pushdowns,
) -> Result<Vec<(RelId, NodeId)>> {
    // A pre-bound relationship variable fixes the candidate.
    if let Some(v) = &rel_pat.var {
        if let Some(Value::Rel(rid)) = row.get(v) {
            let rid = *rid;
            if let Some((s, d)) = ctx.view.rel_endpoints(rid) {
                let other = if s == node {
                    Some(d)
                } else if d == node {
                    Some(s)
                } else {
                    None
                };
                let dir_ok = match rel_pat.direction {
                    Direction::Out => s == node,
                    Direction::In => d == node,
                    Direction::Both => true,
                };
                if let (Some(other), true) = (other, dir_ok) {
                    if rel_matches(ctx, row, rid, rel_pat)? {
                        return Ok(vec![(rid, other)]);
                    }
                }
            }
            return Ok(Vec::new());
        }
    }
    let pd = eval_rel_pushdowns(ctx, row, rel_pat, pushed);
    if pd.as_ref().is_some_and(|p| p.never) {
        return Ok(Vec::new());
    }
    let mut cands = ctx.view.rels_of(node, rel_pat.direction);
    // Serve the hop from the relationship-property index when a pushed
    // range is estimated more selective than the node's adjacency; the
    // endpoint checks below restore the incidence constraint.
    if let Some(pd) = &pd {
        if rel_pat.types.len() == 1 {
            let t = &rel_pat.types[0];
            for (key, (lo, hi)) in &pd.intervals {
                let est = ctx
                    .view
                    .count_rels_in_prop_range(t, key, lo.as_ref(), hi.as_ref());
                if est.is_some_and(|e| e < cands.len()) {
                    if let Some(ids) = ctx
                        .view
                        .rels_in_prop_range(t, key, lo.as_ref(), hi.as_ref())
                    {
                        if ids.len() < cands.len() {
                            cands = ids;
                        }
                    }
                }
            }
            // A composite relationship index can serve the *conjunction*
            // of pushed predicates in one walk; take it when its count
            // estimate beats both the adjacency and the single-key serve.
            // (No definitions — the overwhelmingly common case — costs
            // nothing on this per-hop path.)
            let defs = ctx.view.rel_composite_defs(t);
            if !defs.is_empty() {
                let eval_eqs: HashMap<&str, Value> = pd
                    .eqs
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                let prefix_vals: HashMap<&str, String> = pd
                    .prefixes
                    .iter()
                    .map(|(k, p)| (k.as_str(), p.clone()))
                    .collect();
                for def in defs {
                    if let Some((eq, trailing)) =
                        composite_probe_args(&eval_eqs, &pd.intervals, &prefix_vals, &def)
                    {
                        let est = ctx.view.count_rels_with_composite(
                            t,
                            &def,
                            &eq,
                            trailing.as_trailing(),
                        );
                        if est.is_some_and(|e| e < cands.len()) {
                            if let Some(ids) =
                                ctx.view
                                    .rels_with_composite(t, &def, &eq, trailing.as_trailing())
                            {
                                if ids.len() < cands.len() {
                                    cands = ids;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    for rid in cands {
        let Some((s, d)) = ctx.view.rel_endpoints(rid) else {
            continue;
        };
        let other = match rel_pat.direction {
            Direction::Out => {
                if s != node {
                    continue;
                }
                d
            }
            Direction::In => {
                if d != node {
                    continue;
                }
                s
            }
            Direction::Both => {
                if s == node {
                    d
                } else if d == node {
                    s
                } else {
                    continue;
                }
            }
        };
        if let Some(pd) = &pd {
            if !rel_satisfies(ctx, rid, pd) {
                continue;
            }
        }
        if rel_matches(ctx, row, rid, rel_pat)? {
            out.push((rid, other));
        }
    }
    Ok(out)
}

fn rel_matches(ctx: &EvalCtx<'_>, row: &Row, rid: RelId, pat: &RelPattern) -> Result<bool> {
    if !pat.types.is_empty() {
        let t = ctx.view.rel_type(rid);
        if !pat.types.iter().any(|want| t.as_deref() == Some(want)) {
            return Ok(false);
        }
    }
    for (k, e) in &pat.props {
        let want = eval(ctx, row, e)?;
        let have = ctx.view.rel_prop(rid, k).unwrap_or(Value::Null);
        if have.eq3(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Split a `WHERE` clause into its top-level conjuncts and collect, per
/// variable, the equality, ordering, and prefix predicates of shape
/// `var.key <op> expr` (either orientation for `=` and the comparisons).
/// Crate-visible: the executor's top-k fusion re-uses the equality
/// conjuncts to pin composite ordered walks.
pub(crate) fn extract_pushdowns(where_clause: Option<&Expr>) -> Pushdowns {
    fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(BinOp::And, a, b) = e {
            conjuncts(a, out);
            conjuncts(b, out);
        } else {
            out.push(e);
        }
    }
    /// `a < b ⇔ b > a`: the op as seen with the operands swapped.
    fn flip(op: BinOp) -> BinOp {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    }
    fn var_prop(e: &Expr) -> Option<(&String, &String)> {
        if let Expr::Prop(base, key) = e {
            if let Expr::Var(v) = base.as_ref() {
                return Some((v, key));
            }
        }
        None
    }
    let mut map: Pushdowns = HashMap::new();
    let Some(w) = where_clause else {
        return map;
    };
    let mut cs = Vec::new();
    conjuncts(w, &mut cs);
    for c in cs {
        let Expr::Binary(op, lhs, rhs) = c else {
            continue;
        };
        match op {
            BinOp::Eq => {
                for (prop_side, value_side) in [(lhs, rhs), (rhs, lhs)] {
                    if let Some((v, key)) = var_prop(prop_side) {
                        map.entry(v.clone())
                            .or_default()
                            .eqs
                            .push((key.clone(), value_side.as_ref().clone()));
                    }
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if let Some((v, key)) = var_prop(lhs) {
                    map.entry(v.clone()).or_default().ranges.push((
                        key.clone(),
                        *op,
                        rhs.as_ref().clone(),
                    ));
                } else if let Some((v, key)) = var_prop(rhs) {
                    map.entry(v.clone()).or_default().ranges.push((
                        key.clone(),
                        flip(*op),
                        lhs.as_ref().clone(),
                    ));
                }
            }
            BinOp::StartsWith => {
                if let Some((v, key)) = var_prop(lhs) {
                    map.entry(v.clone())
                        .or_default()
                        .prefixes
                        .push((key.clone(), rhs.as_ref().clone()));
                }
            }
            _ => {}
        }
    }
    map
}

/// The best index-backed candidate set for a node pattern: the physical
/// layer chooses the access path **count-only**
/// ([`crate::physical::choose_index_access`]) and only the winner is
/// materialized ([`crate::physical::materialize_index_access`]) — choosing
/// an access path never allocates the vectors of the losers.
///
/// Returns `Some(ids)` when some index answered (possibly proving the
/// candidate set empty: a pushed conjunct with a NULL/untyped operand can
/// never be truthy), `None` when no index path applies.
fn index_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> Option<Vec<NodeId>> {
    let (access, _est) = crate::physical::choose_index_access(ctx, row, np, pushed)?;
    crate::physical::materialize_index_access(ctx, &access)
}

/// Candidate start nodes for a node pattern.
///
/// Access paths, in order of preference:
/// 1. a **pre-bound variable** (single candidate);
/// 2. a **transition-variable label** (`NEW`, `NEWNODES`, …) bound in the
///    row restricts candidates to those items;
/// 3. the cheapest of — a **property-index lookup** (equality from inline
///    `{key: value}` maps and `WHERE` conjuncts, ordered range scans for
///    `<`/`<=`/`>`/`>=`, prefix scans for `STARTS WITH`), the
///    **intersection of all label extents** (enumerated from the
///    smallest), or a **full scan** — chosen by estimated cardinality.
fn node_candidates(
    ctx: &EvalCtx<'_>,
    row: &Row,
    np: &NodePattern,
    pushed: &Pushdowns,
) -> Result<Vec<NodeId>> {
    if let Some(v) = &np.var {
        match row.get(v) {
            Some(Value::Node(n)) => return Ok(vec![*n]),
            Some(Value::Null) => return Ok(Vec::new()),
            Some(other) => {
                return Err(CypherError::type_err(format!(
                    "variable '{v}' is bound to {}, expected a node",
                    other.type_name()
                )))
            }
            None => {}
        }
    }
    // Transition-variable labels restrict candidates.
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            return nodes_from_value(l, v);
        }
    }

    let best_index = index_candidates(ctx, row, np, pushed);

    // Label extents, cheapest first.
    let mut label_cards: Vec<(&String, usize)> = np
        .labels
        .iter()
        .map(|l| (l, ctx.view.label_cardinality(l)))
        .collect();
    label_cards.sort_by_key(|(_, c)| *c);

    match (best_index, label_cards.first().map(|(_, c)| *c)) {
        (Some(ids), Some(lc)) if ids.len() <= lc => Ok(ids),
        (Some(ids), None) => Ok(ids),
        (_, Some(_)) => {
            // Intersect all label extents: enumerate the smallest, filter
            // by membership in the rest (a pattern `(:A:B)` must not scan
            // every `A` when `B` is far more selective).
            let mut ids = ctx.view.nodes_with_label(label_cards[0].0);
            for (l, _) in &label_cards[1..] {
                ids.retain(|id| ctx.view.node_has_label(*id, l));
            }
            Ok(ids)
        }
        (None, None) => Ok(ctx.view.all_node_ids()),
    }
}

fn nodes_from_value(name: &str, v: &Value) -> Result<Vec<NodeId>> {
    match v {
        Value::Node(n) => Ok(vec![*n]),
        Value::List(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                match i {
                    Value::Node(n) => out.push(*n),
                    Value::Null => {}
                    other => {
                        return Err(CypherError::type_err(format!(
                            "transition variable '{name}' contains {}, expected nodes",
                            other.type_name()
                        )))
                    }
                }
            }
            Ok(out)
        }
        Value::Null => Ok(Vec::new()),
        other => Err(CypherError::type_err(format!(
            "label position '{name}' is bound to {}, expected node(s)",
            other.type_name()
        ))),
    }
}

/// Check labels and property predicates of a node pattern against a concrete
/// node. Labels bound in the row act as candidate restrictions (checked via
/// membership), not stored labels.
pub(crate) fn node_matches(
    ctx: &EvalCtx<'_>,
    row: &Row,
    node: NodeId,
    np: &NodePattern,
) -> Result<bool> {
    for l in &np.labels {
        if let Some(v) = row.get(l) {
            // transition-variable label: membership test
            let members = nodes_from_value(l, v)?;
            if !members.contains(&node) {
                return Ok(false);
            }
        } else if !ctx.view.node_has_label(node, l) {
            return Ok(false);
        }
    }
    for (k, e) in &np.props {
        let want = eval(ctx, row, e)?;
        let have = ctx.view.node_prop(node, k).unwrap_or(Value::Null);
        if have.eq3(&want) != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Clause;
    use crate::parser::parse_query;
    use crate::row::Params;
    use pg_graph::{Graph, PropertyMap};

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Extract patterns + where from a `MATCH … RETURN 1` query.
    fn patterns_of(src: &str) -> (Vec<PathPattern>, Option<Expr>) {
        let q = parse_query(src).unwrap();
        match q.clauses.into_iter().next().unwrap() {
            Clause::Match {
                patterns,
                where_clause,
                ..
            } => (patterns, where_clause),
            _ => panic!("expected MATCH"),
        }
    }

    fn run_match(g: &Graph, src: &str, seed: Row) -> Vec<Row> {
        let (pats, where_) = patterns_of(src);
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 0);
        match_patterns(&ctx, &seed, &pats, where_.as_ref(), None).unwrap()
    }

    /// Small CoV2K-flavoured fixture:
    /// (m:Mutation)-[:Risk]->(e:CriticalEffect), (m)-[:FoundIn]->(s:Sequence)
    fn fixture() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let m = g
            .create_node(["Mutation"], props(&[("name", Value::str("D614G"))]))
            .unwrap();
        let e = g
            .create_node(
                ["CriticalEffect"],
                props(&[("description", Value::str("Enhanced infectivity"))]),
            )
            .unwrap();
        let s = g
            .create_node(["Sequence"], props(&[("accession", Value::str("SEQ1"))]))
            .unwrap();
        g.create_rel(m, e, "Risk", PropertyMap::new()).unwrap();
        g.create_rel(m, s, "FoundIn", PropertyMap::new()).unwrap();
        (g, m, e, s)
    }

    #[test]
    fn label_scan_and_prop_filter() {
        let (g, m, ..) = fixture();
        let rows = run_match(
            &g,
            "MATCH (x:Mutation {name: 'D614G'}) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(m)));
        let rows = run_match(&g, "MATCH (x:Mutation {name: 'nope'}) RETURN 1", Row::new());
        assert!(rows.is_empty());
    }

    #[test]
    fn directed_and_undirected_hops() {
        let (g, m, e, _) = fixture();
        let rows = run_match(&g, "MATCH (a:Mutation)-[:Risk]->(b) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("b"), Some(&Value::Node(e)));
        // wrong direction
        let rows = run_match(&g, "MATCH (a:Mutation)<-[:Risk]-(b) RETURN 1", Row::new());
        assert!(rows.is_empty());
        // undirected from the effect side
        let rows = run_match(
            &g,
            "MATCH (x:CriticalEffect)-[:Risk]-(y) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("y"), Some(&Value::Node(m)));
    }

    #[test]
    fn multi_segment_path() {
        let (g, _, e, s) = fixture();
        let rows = run_match(
            &g,
            "MATCH (c:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(q:Sequence) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("c"), Some(&Value::Node(e)));
        assert_eq!(rows[0].get("q"), Some(&Value::Node(s)));
    }

    #[test]
    fn prebound_node_variable() {
        let (g, m, ..) = fixture();
        let mut seed = Row::new();
        seed.set("a", Value::Node(m));
        let rows = run_match(&g, "MATCH (a)-[:Risk]->(b) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn prebound_rel_variable() {
        // Paper's NewCriticalLineage binds the relationship variable NEW.
        let mut g = Graph::new();
        let s = g.create_node(["Sequence"], PropertyMap::new()).unwrap();
        let l = g
            .create_node(["Lineage"], props(&[("name", Value::str("B.1.1.7"))]))
            .unwrap();
        let r = g.create_rel(s, l, "BelongsTo", PropertyMap::new()).unwrap();
        let mut seed = Row::new();
        seed.set("NEW", Value::Rel(r));
        let rows = run_match(&g, "MATCH (s:Sequence)-[NEW]-(l:Lineage) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("l"), Some(&Value::Node(l)));
    }

    #[test]
    fn transition_variable_label() {
        // (pn:NEWNODES) restricts candidates to the bound list.
        let mut g = Graph::new();
        let a = g.create_node(["P"], PropertyMap::new()).unwrap();
        let b = g.create_node(["P"], PropertyMap::new()).unwrap();
        let _c = g.create_node(["P"], PropertyMap::new()).unwrap();
        let mut seed = Row::new();
        seed.set("NEWNODES", Value::list([Value::Node(a), Value::Node(b)]));
        let rows = run_match(&g, "MATCH (pn:NEWNODES) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 2);
        // combined with a stored label
        let rows = run_match(&g, "MATCH (pn:NEWNODES:P) RETURN 1", seed);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rel_uniqueness_within_match() {
        // a-KNOWS-b only: pattern (x)-[:KNOWS]-(y)-[:KNOWS]-(z) must not
        // reuse the same relationship for both hops.
        let mut g = Graph::new();
        let a = g.create_node(["X"], PropertyMap::new()).unwrap();
        let b = g.create_node(["X"], PropertyMap::new()).unwrap();
        g.create_rel(a, b, "KNOWS", PropertyMap::new()).unwrap();
        let rows = run_match(
            &g,
            "MATCH (x)-[:KNOWS]-(y)-[:KNOWS]-(z) RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
        // but a triangle works
        let c = g.create_node(["X"], PropertyMap::new()).unwrap();
        g.create_rel(b, c, "KNOWS", PropertyMap::new()).unwrap();
        let rows = run_match(
            &g,
            "MATCH (x)-[:KNOWS]-(y)-[:KNOWS]-(z) RETURN 1",
            Row::new(),
        );
        // paths: a-b-c, c-b-a (x/z symmetric)
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn var_length_paths() {
        // chain a->b->c->d
        let mut g = Graph::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| {
                g.create_node(["N"], props(&[("i", Value::Int(i))]))
                    .unwrap()
            })
            .collect();
        for w in ids.windows(2) {
            g.create_rel(w[0], w[1], "NEXT", PropertyMap::new())
                .unwrap();
        }
        let mut seed = Row::new();
        seed.set("a", Value::Node(ids[0]));
        let rows = run_match(&g, "MATCH (a)-[:NEXT*1..3]->(b) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 3); // b, c, d
        let rows = run_match(&g, "MATCH (a)-[:NEXT*2]->(b) RETURN 1", seed.clone());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("b"), Some(&Value::Node(ids[2])));
        // rel var binds the list of traversed rels
        let rows = run_match(&g, "MATCH (a)-[r:NEXT*3]->(b) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
        match rows[0].get("r") {
            Some(Value::List(rels)) => assert_eq!(rels.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn where_filter_applies() {
        let (g, ..) = fixture();
        let rows = run_match(
            &g,
            "MATCH (x:Mutation) WHERE x.name STARTS WITH 'D' RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        let rows = run_match(
            &g,
            "MATCH (x:Mutation) WHERE x.name STARTS WITH 'Z' RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn multiple_patterns_join() {
        let (g, m, e, s) = fixture();
        let rows = run_match(
            &g,
            "MATCH (a:Mutation)-[:Risk]-(b:CriticalEffect), (a)-[:FoundIn]-(c:Sequence) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("a"), Some(&Value::Node(m)));
        assert_eq!(rows[0].get("b"), Some(&Value::Node(e)));
        assert_eq!(rows[0].get("c"), Some(&Value::Node(s)));
    }

    #[test]
    fn pattern_vars_collects_names() {
        let (pats, _) = patterns_of("MATCH (a)-[r:T]->(b), (c) RETURN 1");
        assert_eq!(pattern_vars(&pats), vec!["a", "b", "c", "r"]);
    }

    /// Planner-level helper: the candidate set chosen for the first
    /// pattern's start node.
    fn candidates_of(g: &Graph, src: &str, seed: &Row) -> Vec<NodeId> {
        let (pats, where_) = patterns_of(src);
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        node_candidates(&ctx, seed, &pats[0].start, &pushed).unwrap()
    }

    #[test]
    fn second_label_drives_candidates_when_more_selective() {
        // Regression: `(:A:B)` used to scan every `A` node even when `B`
        // was far more selective.
        let mut g = Graph::new();
        for _ in 0..50 {
            g.create_node(["A"], PropertyMap::new()).unwrap();
        }
        let both1 = g.create_node(["A", "B"], PropertyMap::new()).unwrap();
        let both2 = g.create_node(["B", "A"], PropertyMap::new()).unwrap();
        let cands = candidates_of(&g, "MATCH (x:A:B) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 2, "candidates come from the B extent");
        assert!(cands.contains(&both1) && cands.contains(&both2));
        // order of labels in the pattern is irrelevant
        let cands = candidates_of(&g, "MATCH (x:B:A) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 2);
        // and matching still returns exactly the doubly-labelled nodes
        let rows = run_match(&g, "MATCH (x:A:B) RETURN 1", Row::new());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn inline_prop_map_uses_property_index() {
        let mut g = Graph::new();
        let mut wanted = NodeId(0);
        for i in 0..100 {
            let n = g
                .create_node(["M"], props(&[("name", Value::str(format!("m{i}")))]))
                .unwrap();
            if i == 42 {
                wanted = n;
            }
        }
        // without an index: the label extent is the best source
        let cands = candidates_of(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 100);
        g.create_index("M", "name");
        let cands = candidates_of(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", &Row::new());
        assert_eq!(cands, vec![wanted]);
        let rows = run_match(&g, "MATCH (x:M {name: 'm42'}) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(wanted)));
    }

    #[test]
    fn where_equality_conjunct_is_pushed_down() {
        let mut g = Graph::new();
        let mut wanted = NodeId(0);
        for i in 0..100 {
            let n = g
                .create_node(["M"], props(&[("k", Value::Int(i))]))
                .unwrap();
            if i == 7 {
                wanted = n;
            }
        }
        g.create_index("M", "k");
        // conjunct inside an AND, written value-first
        let cands = candidates_of(
            &g,
            "MATCH (x:M) WHERE 7 = x.k AND x.k >= 0 RETURN 1",
            &Row::new(),
        );
        assert_eq!(cands, vec![wanted]);
        let rows = run_match(
            &g,
            "MATCH (x:M) WHERE 7 = x.k AND x.k >= 0 RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        // a disjunction must NOT be pushed down
        let cands = candidates_of(
            &g,
            "MATCH (x:M) WHERE x.k = 7 OR x.k = 8 RETURN 1",
            &Row::new(),
        );
        assert_eq!(cands.len(), 100, "OR is not a conjunct");
        let rows = run_match(
            &g,
            "MATCH (x:M) WHERE x.k = 7 OR x.k = 8 RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn unevaluable_pushdown_falls_back_without_losing_rows() {
        // `x.k = y.k` references `y`, bound only later in the join; the
        // planner must skip the path, not fail or drop rows.
        let mut g = Graph::new();
        for i in 0..10 {
            g.create_node(["L"], props(&[("k", Value::Int(i))]))
                .unwrap();
            g.create_node(["R"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        g.create_index("L", "k");
        let rows = run_match(
            &g,
            "MATCH (x:L), (y:R) WHERE x.k = y.k RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn index_lookup_respects_numeric_equality() {
        let mut g = Graph::new();
        let n = g
            .create_node(["M"], props(&[("k", Value::Int(1))]))
            .unwrap();
        g.create_index("M", "k");
        // 1.0 = 1 in Cypher; the index must agree
        let rows = run_match(&g, "MATCH (x:M {k: 1.0}) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(n)));
    }

    /// Planner-level helper: the planned (re-rooted, re-ordered) pattern
    /// list for a query's first MATCH.
    fn planned_of(g: &Graph, src: &str, seed: &Row) -> Vec<PathPattern> {
        let (pats, where_) = patterns_of(src);
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        plan_patterns(&ctx, seed, &pats, &pushed)
    }

    #[test]
    fn range_pushdown_uses_index() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.create_node(["M"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        // without an index the extent is the best source
        let cands = candidates_of(&g, "MATCH (x:M) WHERE x.k >= 95 RETURN 1", &Row::new());
        assert_eq!(cands.len(), 100);
        g.create_index("M", "k");
        let cands = candidates_of(&g, "MATCH (x:M) WHERE x.k >= 95 RETURN 1", &Row::new());
        assert_eq!(cands.len(), 5);
        // the other three operators, both orientations
        for (q, n) in [
            ("MATCH (x:M) WHERE x.k > 95 RETURN 1", 4),
            ("MATCH (x:M) WHERE x.k < 5 RETURN 1", 5),
            ("MATCH (x:M) WHERE x.k <= 5 RETURN 1", 6),
            ("MATCH (x:M) WHERE 95 <= x.k RETURN 1", 5),
            ("MATCH (x:M) WHERE 5 > x.k RETURN 1", 5),
        ] {
            assert_eq!(candidates_of(&g, q, &Row::new()).len(), n, "{q}");
            assert_eq!(run_match(&g, q, Row::new()).len(), n, "{q}");
        }
        // cross-type numeric range
        let rows = run_match(&g, "MATCH (x:M) WHERE x.k >= 97.5 RETURN 1", Row::new());
        assert_eq!(rows.len(), 2);
        assert_eq!(
            candidates_of(&g, "MATCH (x:M) WHERE x.k >= 97.5 RETURN 1", &Row::new()).len(),
            2
        );
    }

    #[test]
    fn conjunction_derives_closed_interval() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.create_node(["M"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        g.create_index("M", "k");
        let q = "MATCH (x:M) WHERE x.k >= 10 AND x.k < 20 RETURN 1";
        assert_eq!(candidates_of(&g, q, &Row::new()).len(), 10);
        assert_eq!(run_match(&g, q, Row::new()).len(), 10);
        // redundant conjuncts tighten, not widen
        let q = "MATCH (x:M) WHERE x.k >= 10 AND x.k >= 15 AND x.k < 20 AND x.k < 30 RETURN 1";
        assert_eq!(candidates_of(&g, q, &Row::new()).len(), 5);
        assert_eq!(run_match(&g, q, Row::new()).len(), 5);
        // Gt beats Ge at the same bound
        let q = "MATCH (x:M) WHERE x.k >= 10 AND x.k > 10 AND x.k < 13 RETURN 1";
        assert_eq!(candidates_of(&g, q, &Row::new()).len(), 2);
        assert_eq!(run_match(&g, q, Row::new()).len(), 2);
    }

    #[test]
    fn starts_with_pushdown_uses_prefix_scan() {
        let mut g = Graph::new();
        for i in 0..100 {
            g.create_node(["M"], props(&[("name", Value::str(format!("m{i}")))]))
                .unwrap();
        }
        g.create_index("M", "name");
        let q = "MATCH (x:M) WHERE x.name STARTS WITH 'm1' RETURN 1";
        // m1, m10..m19
        assert_eq!(candidates_of(&g, q, &Row::new()).len(), 11);
        assert_eq!(run_match(&g, q, Row::new()).len(), 11);
        // non-string operand can never match
        let q = "MATCH (x:M) WHERE x.name STARTS WITH 5 RETURN 1";
        assert_eq!(candidates_of(&g, q, &Row::new()).len(), 0);
        assert!(run_match(&g, q, Row::new()).is_empty());
    }

    #[test]
    fn lossy_numerics_fall_back_to_scan_without_losing_rows() {
        let bound = 1i64 << 53;
        let mut g = Graph::new();
        for i in 0..20 {
            g.create_node(["M"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        // a stored out-of-range numeric satisfies `k > 5` but cannot live
        // in the index — the planner must scan, and the row must survive
        let big = g
            .create_node(["M"], props(&[("k", Value::Int(bound + 1))]))
            .unwrap();
        g.create_index("M", "k");
        let q = "MATCH (x:M) WHERE x.k > 5 RETURN 1";
        let cands = candidates_of(&g, q, &Row::new());
        assert_eq!(cands.len(), 21, "range refused, fell back to the extent");
        let rows = run_match(&g, q, Row::new());
        assert_eq!(rows.len(), 15); // 6..19 plus the huge value
        assert!(rows.iter().any(|r| r.get("x") == Some(&Value::Node(big))));
        // equality lookups still index-served next to the lossy value
        let cands = candidates_of(&g, "MATCH (x:M {k: 3}) RETURN 1", &Row::new());
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn join_order_puts_selective_pattern_first() {
        let mut g = Graph::new();
        for _ in 0..50 {
            g.create_node(["Big"], PropertyMap::new()).unwrap();
        }
        g.create_node(["Tiny"], PropertyMap::new()).unwrap();
        let planned = planned_of(&g, "MATCH (a:Big), (b:Tiny) RETURN 1", &Row::new());
        assert_eq!(planned[0].start.labels, vec!["Tiny".to_string()]);
        assert_eq!(planned[1].start.labels, vec!["Big".to_string()]);
        // joint result unchanged
        let rows = run_match(&g, "MATCH (a:Big), (b:Tiny) RETURN 1", Row::new());
        assert_eq!(rows.len(), 50);
    }

    #[test]
    fn path_reversal_anchors_selective_end() {
        let mut g = Graph::new();
        let t = g.create_node(["Tiny"], PropertyMap::new()).unwrap();
        for _ in 0..50 {
            let b = g.create_node(["Big"], PropertyMap::new()).unwrap();
            g.create_rel(b, t, "R", PropertyMap::new()).unwrap();
        }
        let planned = planned_of(&g, "MATCH (a:Big)-[:R]->(b:Tiny) RETURN 1", &Row::new());
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].start.labels, vec!["Tiny".to_string()]);
        assert_eq!(planned[0].segments[0].0.direction, Direction::In);
        // matching is unchanged (all 50 paths)
        let rows = run_match(&g, "MATCH (a:Big)-[:R]->(b:Tiny) RETURN 1", Row::new());
        assert_eq!(rows.len(), 50);
        for r in &rows {
            assert_eq!(r.get("b"), Some(&Value::Node(t)));
        }
    }

    #[test]
    fn interior_anchor_splits_named_position() {
        // 20 Mids, one of which (`id = 7`) is index-reachable in 1 probe;
        // 30 Bigs / 30 Big2s with one R / S edge each spread over the
        // Mids. Both end anchors cost an extent scan of 30 plus the walk;
        // the interior anchor costs 1 plus a low-fanout walk in both
        // directions (avg degree 30/20 per hop) — the join-output model
        // makes the split the clear winner.
        let mut g = Graph::new();
        let mids: Vec<NodeId> = (0..20)
            .map(|i| {
                g.create_node(["Mid"], props(&[("id", Value::Int(i))]))
                    .unwrap()
            })
            .collect();
        g.create_index("Mid", "id");
        for i in 0..30usize {
            let a = g.create_node(["Big"], PropertyMap::new()).unwrap();
            let c = g.create_node(["Big2"], PropertyMap::new()).unwrap();
            g.create_rel(a, mids[i % 20], "R", PropertyMap::new())
                .unwrap();
            g.create_rel(mids[i % 20], c, "S", PropertyMap::new())
                .unwrap();
        }
        let q = "MATCH (a:Big)-[:R]->(m:Mid {id: 7})-[:S]->(c:Big2) RETURN 1";
        let planned = planned_of(&g, q, &Row::new());
        assert_eq!(planned.len(), 2, "split at the interior anchor");
        assert_eq!(planned[0].start.labels, vec!["Mid".to_string()]);
        assert_eq!(planned[1].start.labels, vec!["Mid".to_string()]);
        let rows = run_match(&g, q, Row::new());
        // Mid 7 has ⌈(30-7)/20⌉ = 2 R-edges in and 2 S-edges out
        assert_eq!(rows.len(), 2 * 2);
    }

    #[test]
    fn prebound_rel_var_seeds_start_endpoints() {
        // The paper's NewCriticalLineage shape: the bound rel variable
        // must seed the Sequence side instead of scanning the extent.
        let mut g = Graph::new();
        let mut last = (NodeId(0), RelId(0), NodeId(0));
        for i in 0..100 {
            let s = g.create_node(["Sequence"], PropertyMap::new()).unwrap();
            let l = g
                .create_node(["Lineage"], props(&[("i", Value::Int(i))]))
                .unwrap();
            let r = g.create_rel(s, l, "BelongsTo", PropertyMap::new()).unwrap();
            last = (s, r, l);
        }
        let mut seed = Row::new();
        seed.set("NEW", Value::Rel(last.1));
        let (pats, where_) = patterns_of("MATCH (s:Sequence)-[NEW]-(l:Lineage) RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        let cands = start_candidates(&ctx, &seed, &pats[0], &pushed).unwrap();
        assert_eq!(cands.len(), 2, "only the bound rel's endpoints");
        assert!(cands.contains(&last.0) && cands.contains(&last.2));
        let rows = run_match(&g, "MATCH (s:Sequence)-[NEW]-(l:Lineage) RETURN 1", seed);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("l"), Some(&Value::Node(last.2)));
    }

    #[test]
    fn selective_rel_type_extent_seeds_start() {
        let mut g = Graph::new();
        let mut endpoints = Vec::new();
        for i in 0..60 {
            let a = g.create_node(["A"], PropertyMap::new()).unwrap();
            let b = g.create_node(["B"], PropertyMap::new()).unwrap();
            if i < 2 {
                g.create_rel(a, b, "Rare", PropertyMap::new()).unwrap();
                endpoints.push(a);
            }
        }
        let (pats, _) = patterns_of("MATCH (x:A)-[:Rare]->(y:B) RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let cands = start_candidates(&ctx, &Row::new(), &pats[0], &Pushdowns::new()).unwrap();
        assert_eq!(cands, endpoints, "seeded from the Rare extent");
        let rows = run_match(&g, "MATCH (x:A)-[:Rare]->(y:B) RETURN 1", Row::new());
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn rel_prop_index_seeds_start() {
        let mut g = Graph::new();
        let mut wanted = NodeId(0);
        for i in 0..80 {
            let a = g.create_node(["A"], PropertyMap::new()).unwrap();
            let b = g.create_node(["B"], PropertyMap::new()).unwrap();
            g.create_rel(a, b, "R", props(&[("w", Value::Int(i))]))
                .unwrap();
            if i == 42 {
                wanted = a;
            }
        }
        g.create_rel_index("R", "w");
        let (pats, _) = patterns_of("MATCH (x:A)-[r:R {w: 42}]->(y:B) RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let cands = start_candidates(&ctx, &Row::new(), &pats[0], &Pushdowns::new()).unwrap();
        assert_eq!(cands, vec![wanted], "seeded from the rel-prop index");
        let rows = run_match(&g, "MATCH (x:A)-[r:R {w: 42}]->(y:B) RETURN 1", Row::new());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("x"), Some(&Value::Node(wanted)));
    }

    #[test]
    fn planning_materializes_no_candidate_vectors() {
        // Planner v3 invariant: plan_patterns over indexed predicates uses
        // count-only probes — zero materializing index lookups until an
        // access path is chosen by node_candidates.
        let mut g = Graph::new();
        for i in 0..200 {
            let a = g
                .create_node(["M"], props(&[("k", Value::Int(i % 5))]))
                .unwrap();
            let b = g.create_node(["Tiny"], PropertyMap::new()).unwrap();
            if i < 2 {
                g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
            }
        }
        g.create_index("M", "k");
        let (pats, where_) =
            patterns_of("MATCH (x:M)-[:R]->(t:Tiny), (y:M) WHERE x.k = 3 AND y.k > 1 RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        g.reset_index_probes();
        let planned = plan_patterns(&ctx, &Row::new(), &pats, &pushed);
        let probes = g.index_probes();
        assert_eq!(
            probes.materializing, 0,
            "planning must not materialize candidate vectors"
        );
        assert!(probes.counting > 0, "planning must use count-only probes");
        assert_eq!(planned.len(), pats.len());
        // …and the query still returns the right rows through execution
        let rows = run_match(
            &g,
            "MATCH (x:M)-[:R]->(t:Tiny), (y:M) WHERE x.k = 3 AND y.k > 1 RETURN 1",
            Row::new(),
        );
        // x ∈ {k=3 nodes with an R edge}, y ∈ {k ∈ {2,3,4}} → 0 or more
        let expect_y = 3 * 40; // 40 nodes per residue class
        let expect_x = [0usize, 1].iter().filter(|i| (**i as i64) % 5 == 3).count();
        assert_eq!(rows.len(), expect_x * expect_y);
    }

    #[test]
    fn unevaluable_eq_uses_distinct_selectivity() {
        // `x.k = y.j` with y bound later: the planner can still estimate
        // x's eq pushdown from total/distinct statistics instead of giving
        // up on the index path.
        let mut g = Graph::new();
        for i in 0..100 {
            g.create_node(["L"], props(&[("k", Value::Int(i % 2))]))
                .unwrap();
        }
        g.create_index("L", "k");
        let (pats, where_) = patterns_of("MATCH (x:L) WHERE x.k = y.j RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        let cost = estimate_node_cost(&ctx, &Row::new(), &pats[0].start, &pushed, &HashSet::new());
        // 100 entries over 2 distinct values → average bucket 50
        assert_eq!(cost, 50);
    }

    #[test]
    fn rel_range_pushdown_prunes_hop_expansion() {
        // A hub with 200 outgoing rels, 3 of which satisfy `r.w >= 197`:
        // with a rel-prop index the hop is served from the index (est 3 <
        // degree 200), without it the evaluated predicate still prunes.
        let mut g = Graph::new();
        let hub = g.create_node(["Hub"], PropertyMap::new()).unwrap();
        for i in 0..200 {
            let leaf = g.create_node(["Leaf"], PropertyMap::new()).unwrap();
            g.create_rel(hub, leaf, "R", props(&[("w", Value::Int(i))]))
                .unwrap();
        }
        let q = "MATCH (h:Hub)-[r:R]->(x:Leaf) WHERE r.w >= 197 RETURN 1";
        let rows = run_match(&g, q, Row::new());
        assert_eq!(rows.len(), 3);
        g.create_rel_index("R", "w");
        g.reset_index_probes();
        let rows = run_match(&g, q, Row::new());
        assert_eq!(rows.len(), 3);
        let probes = g.index_probes();
        assert!(
            probes.materializing >= 1,
            "hop should have been served from the rel-prop index"
        );
        // conjunct that can never be truthy → hop pruned to nothing
        let rows = run_match(
            &g,
            "MATCH (h:Hub)-[r:R]->(x:Leaf) WHERE r.w >= NULL RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
    }

    #[test]
    fn rel_prefix_and_eq_pushdowns_prune_directly() {
        let mut g = Graph::new();
        let hub = g.create_node(["Hub"], PropertyMap::new()).unwrap();
        for i in 0..50 {
            let leaf = g.create_node(["Leaf"], PropertyMap::new()).unwrap();
            g.create_rel(
                hub,
                leaf,
                "R",
                props(&[("tag", Value::str(format!("t{i:02}")))]),
            )
            .unwrap();
        }
        let rows = run_match(
            &g,
            "MATCH (h:Hub)-[r:R]->(x) WHERE r.tag STARTS WITH 't1' RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 10);
        let rows = run_match(
            &g,
            "MATCH (h:Hub)-[r:R]->(x) WHERE r.tag = 't07' RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        // non-string prefix operand → definitively empty
        let rows = run_match(
            &g,
            "MATCH (h:Hub)-[r:R]->(x) WHERE r.tag STARTS WITH 7 RETURN 1",
            Row::new(),
        );
        assert!(rows.is_empty());
    }

    fn cols(cs: &[&str]) -> Vec<String> {
        cs.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn composite_index_serves_conjunction_in_one_probe() {
        // 500 nodes over 5 independent statuses × 100 severities: the
        // (status, severity) conjunction has 1 match; the single-key
        // indexes alone materialize 100 (status) or 5 (severity).
        let mut g = Graph::new();
        for i in 0..500i64 {
            g.create_node(
                ["P"],
                props(&[
                    ("status", Value::str(format!("s{}", i / 100))),
                    ("severity", Value::Int(i % 100)),
                ]),
            )
            .unwrap();
        }
        g.create_index("P", "status");
        g.create_index("P", "severity");
        g.create_composite_index("P", &cols(&["status", "severity"]));
        let q = "MATCH (p:P) WHERE p.status = 's3' AND p.severity = 8 RETURN 1";
        g.reset_index_probes();
        let rows = run_match(&g, q, Row::new());
        assert_eq!(rows.len(), 1); // i = 308
        let probes = g.index_probes();
        assert_eq!(
            probes.materializing, 1,
            "exactly the winning (composite) access path materializes"
        );
        // trailing range form of the §6 conjunction
        let rows = run_match(
            &g,
            "MATCH (p:P {status: 's3'}) WHERE p.severity >= 98 RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 2); // i ∈ {398, 399}
    }

    #[test]
    fn composite_estimate_is_count_only() {
        let mut g = Graph::new();
        for i in 0..200i64 {
            g.create_node(
                ["P"],
                props(&[("a", Value::Int(i % 4)), ("b", Value::Int(i % 10))]),
            )
            .unwrap();
        }
        g.create_composite_index("P", &cols(&["a", "b"]));
        let (pats, where_) = patterns_of("MATCH (p:P) WHERE p.a = 1 AND p.b = 3 RETURN 1");
        let params = Params::new();
        let ctx = EvalCtx::new(&g, &params, 0);
        let pushed = extract_pushdowns(where_.as_ref());
        g.reset_index_probes();
        let cost = estimate_node_cost(&ctx, &Row::new(), &pats[0].start, &pushed, &HashSet::new());
        // (a, b) ≡ (1, 3) ⇔ i ≡ 13 (mod 20) → 10 nodes
        assert_eq!(cost, 10);
        let probes = g.index_probes();
        assert_eq!(probes.materializing, 0, "estimation must stay count-only");
        assert!(probes.counting > 0);
    }

    #[test]
    fn rel_composite_pushdown_prunes_hop_expansion() {
        // A hub with 300 outgoing rels over (kind, w); the conjunction
        // matches 2 — with a composite rel index the hop is served from
        // one composite probe rather than the adjacency list.
        let mut g = Graph::new();
        let hub = g.create_node(["Hub"], PropertyMap::new()).unwrap();
        for i in 0..300i64 {
            let leaf = g.create_node(["Leaf"], PropertyMap::new()).unwrap();
            g.create_rel(
                hub,
                leaf,
                "R",
                props(&[
                    ("kind", Value::str(if i % 3 == 0 { "x" } else { "y" })),
                    ("w", Value::Int(i % 50)),
                ]),
            )
            .unwrap();
        }
        let q = "MATCH (h:Hub)-[r:R]->(t) WHERE r.kind = 'x' AND r.w >= 48 RETURN 1";
        let rows = run_match(&g, q, Row::new());
        let expected = rows.len();
        assert!(expected > 0);
        g.create_rel_composite_index("R", &cols(&["kind", "w"]));
        g.reset_index_probes();
        let rows = run_match(&g, q, Row::new());
        assert_eq!(rows.len(), expected);
        assert!(
            g.index_probes().materializing >= 1,
            "hop should have been served from the composite rel index"
        );
    }

    #[test]
    fn multi_label_pattern_requires_all() {
        let mut g = Graph::new();
        let both = g
            .create_node(["HospitalizedPatient", "IcuPatient"], PropertyMap::new())
            .unwrap();
        let _only = g
            .create_node(["HospitalizedPatient"], PropertyMap::new())
            .unwrap();
        let rows = run_match(
            &g,
            "MATCH (p:HospitalizedPatient:IcuPatient) RETURN 1",
            Row::new(),
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("p"), Some(&Value::Node(both)));
    }
}
