//! # pg-cypher — a Cypher-subset query engine over `pg-graph`
//!
//! Implements the query-language substrate that the PG-Triggers paper
//! assumes: every construct used by the paper's trigger conditions and
//! statements (§6.2, §6.3) plus the standard core of openCypher:
//!
//! * `MATCH` / `OPTIONAL MATCH` with multi-pattern joins, relationship
//!   uniqueness, variable-length paths, and `WHERE`;
//! * `CREATE`, `MERGE` (with `ON CREATE` / `ON MATCH`), `DELETE` /
//!   `DETACH DELETE`, `SET` (properties, labels, `=`, `+=`), `REMOVE`;
//! * `WITH` / `RETURN` with aggregation (`count`, `sum`, `avg`, `min`,
//!   `max`, `collect`), `DISTINCT`, `ORDER BY`, `SKIP`, `LIMIT`, and
//!   post-`WITH` `WHERE`;
//! * `UNWIND`, `FOREACH` (both `|` and the paper's `BEGIN … END` style),
//!   `CASE`, `EXISTS { … }` / `EXISTS (pattern)`, list comprehensions,
//!   parameters, and a library of scalar functions;
//! * the `ABORT` extension clause used by integrity-maintenance triggers.
//!
//! Two execution targets exist: a mutable [`pg_graph::Graph`] (full power)
//! and any read-only [`pg_graph::GraphView`] — the PG-Trigger engine uses
//! the latter to evaluate `BEFORE` conditions against pre-state views.
//!
//! **Transition variables.** A pattern label position whose name is bound in
//! the seed row (e.g. `MATCH (pn:NEWNODES)`) restricts candidates to the
//! bound node(s) instead of a stored label — exactly the behaviour the
//! paper's example triggers rely on.

pub mod ast;
pub mod batch;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod pattern;
pub mod physical;
pub mod plan;
pub mod row;
pub mod token;
pub mod unparse;

pub use ast::{Clause, Expr, Query};
pub use error::{CypherError, Result};
pub use exec::{Executor, MatchMode, Target};
pub use explain::{explain_query, explain_query_with};
pub use parser::{parse_expression, parse_query, parse_query_lenient, strip_explain};
pub use physical::{
    plan_parallelism, ParallelDecline, ParallelPlan, MORSEL_SIZE, PARALLEL_ROW_THRESHOLD,
};
pub use plan::{lower_query, lower_query_with, LogicalOp, LogicalPlan, TopKSpec};
pub use row::{Params, QueryOutput, Row};
pub use unparse::{rename_vars, unparse_clause, unparse_expr, unparse_query};

use pg_graph::{Graph, GraphView};

/// Parse and run a query against a mutable graph.
pub fn run_query(
    graph: &mut Graph,
    src: &str,
    params: &Params,
    now_ms: i64,
) -> Result<QueryOutput> {
    let q = parse_query(src)?;
    run_ast(graph, &q, Vec::new(), params, now_ms)
}

/// Run a pre-parsed query against a mutable graph, from seed rows.
pub fn run_ast(
    graph: &mut Graph,
    query: &Query,
    seeds: Vec<Row>,
    params: &Params,
    now_ms: i64,
) -> Result<QueryOutput> {
    Executor::new(Target::Write(graph), params, now_ms).run(query, seeds)
}

/// Run a pre-parsed query against a read-only view (updating clauses fail).
pub fn run_read_only(
    view: &dyn GraphView,
    query: &Query,
    seeds: Vec<Row>,
    params: &Params,
    now_ms: i64,
) -> Result<QueryOutput> {
    Executor::new(Target::Read(view), params, now_ms).run(query, seeds)
}
