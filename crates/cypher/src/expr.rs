//! Expression evaluation (read-only; mutations live in `exec`).

use crate::ast::{BinOp, Expr, UnaryOp};
use crate::error::{CypherError, Result};
use crate::functions;
use crate::pattern;
use crate::row::{Params, Row};
use pg_graph::{GraphView, Value};

/// Evaluation context: a read view plus parameters and the statement clock.
pub struct EvalCtx<'a> {
    pub view: &'a dyn GraphView,
    pub params: &'a Params,
    pub now_ms: i64,
}

impl<'a> EvalCtx<'a> {
    pub fn new(view: &'a dyn GraphView, params: &'a Params, now_ms: i64) -> Self {
        EvalCtx {
            view,
            params,
            now_ms,
        }
    }
}

/// Evaluate an expression against a binding row.
pub fn eval(ctx: &EvalCtx<'_>, row: &Row, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(p) => Ok(ctx.params.get(p).cloned().unwrap_or(Value::Null)),
        Expr::Var(name) => row
            .get(name)
            .cloned()
            .ok_or_else(|| CypherError::UnboundVariable(name.clone())),
        Expr::Prop(base, key) => {
            let b = eval(ctx, row, base)?;
            prop_of(ctx, &b, key)
        }
        Expr::HasLabel(base, labels) => {
            let b = eval(ctx, row, base)?;
            match b {
                Value::Node(n) => Ok(Value::Bool(
                    labels.iter().all(|l| ctx.view.node_has_label(n, l)),
                )),
                Value::Rel(r) => {
                    let t = ctx.view.rel_type(r);
                    Ok(Value::Bool(labels.iter().all(|l| t.as_deref() == Some(l))))
                }
                Value::Null => Ok(Value::Null),
                other => Err(CypherError::type_err(format!(
                    "label predicate on {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Unary(op, inner) => {
            let v = eval(ctx, row, inner)?;
            match op {
                UnaryOp::Not => Ok(not3(truth3(&v)?)),
                UnaryOp::Neg => v.neg().ok_or_else(|| {
                    CypherError::Arithmetic(format!("cannot negate {}", v.type_name()))
                }),
            }
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(ctx, row, *op, lhs, rhs),
        Expr::Func {
            name,
            args,
            distinct: _,
        } => {
            if functions::is_aggregate(name) {
                return Err(CypherError::type_err(format!(
                    "aggregate function {name}() not allowed in this context"
                )));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(ctx, row, a)?);
            }
            functions::eval_scalar(name, &vals, ctx.view, ctx.now_ms)
        }
        Expr::CountStar => Err(CypherError::type_err(
            "count(*) not allowed outside WITH/RETURN",
        )),
        Expr::ListLit(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(eval(ctx, row, i)?);
            }
            Ok(Value::List(out))
        }
        Expr::MapLit(entries) => {
            let mut m = std::collections::BTreeMap::new();
            for (k, v) in entries {
                m.insert(k.clone(), eval(ctx, row, v)?);
            }
            Ok(Value::Map(m))
        }
        Expr::Index(base, idx) => {
            let b = eval(ctx, row, base)?;
            let i = eval(ctx, row, idx)?;
            match (&b, &i) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::List(items), Value::Int(n)) => {
                    let len = items.len() as i64;
                    let k = if *n < 0 { len + n } else { *n };
                    if k < 0 || k >= len {
                        Ok(Value::Null)
                    } else {
                        Ok(items[k as usize].clone())
                    }
                }
                (Value::Map(m), Value::Str(k)) => Ok(m.get(k).cloned().unwrap_or(Value::Null)),
                (b, i) => Err(CypherError::type_err(format!(
                    "cannot index {} with {}",
                    b.type_name(),
                    i.type_name()
                ))),
            }
        }
        Expr::Slice(base, from, to) => {
            let b = eval(ctx, row, base)?;
            match b {
                Value::Null => Ok(Value::Null),
                Value::List(items) => {
                    let len = items.len() as i64;
                    let norm = |v: Option<&Expr>, default: i64| -> Result<i64> {
                        match v {
                            None => Ok(default),
                            Some(e) => {
                                let val = eval(ctx, row, e)?;
                                let n = val.as_i64().ok_or_else(|| {
                                    CypherError::type_err("slice bound must be an integer")
                                })?;
                                Ok(if n < 0 { len + n } else { n })
                            }
                        }
                    };
                    let f = norm(from.as_deref(), 0)?.clamp(0, len);
                    let t = norm(to.as_deref(), len)?.clamp(0, len);
                    if f >= t {
                        Ok(Value::List(Vec::new()))
                    } else {
                        Ok(Value::List(items[f as usize..t as usize].to_vec()))
                    }
                }
                other => Err(CypherError::type_err(format!(
                    "cannot slice {}",
                    other.type_name()
                ))),
            }
        }
        Expr::Case {
            operand,
            whens,
            else_,
        } => {
            match operand {
                Some(op) => {
                    let v = eval(ctx, row, op)?;
                    for (w, t) in whens {
                        let wv = eval(ctx, row, w)?;
                        if v.eq3(&wv) == Some(true) {
                            return eval(ctx, row, t);
                        }
                    }
                }
                None => {
                    for (w, t) in whens {
                        let wv = eval(ctx, row, w)?;
                        if wv.is_truthy() {
                            return eval(ctx, row, t);
                        }
                    }
                }
            }
            match else_ {
                Some(e) => eval(ctx, row, e),
                None => Ok(Value::Null),
            }
        }
        Expr::ExistsSubquery(patterns, where_) => {
            let matches = pattern::match_patterns(ctx, row, patterns, where_.as_deref(), Some(1))?;
            Ok(Value::Bool(!matches.is_empty()))
        }
        Expr::IsNull(inner, negated) => {
            let v = eval(ctx, row, inner)?;
            let isnull = v.is_null();
            Ok(Value::Bool(if *negated { !isnull } else { isnull }))
        }
        Expr::ListComp {
            var,
            list,
            filter,
            map,
        } => {
            let lv = eval(ctx, row, list)?;
            let items = match lv {
                Value::Null => return Ok(Value::Null),
                Value::List(items) => items,
                other => {
                    return Err(CypherError::type_err(format!(
                        "list comprehension over {}",
                        other.type_name()
                    )))
                }
            };
            let mut out = Vec::new();
            for item in items {
                let mut inner_row = row.clone();
                inner_row.set(var.clone(), item.clone());
                if let Some(f) = filter {
                    if !eval(ctx, &inner_row, f)?.is_truthy() {
                        continue;
                    }
                }
                match map {
                    Some(m) => out.push(eval(ctx, &inner_row, m)?),
                    None => out.push(item),
                }
            }
            Ok(Value::List(out))
        }
    }
}

/// Property lookup on nodes, relationships, and maps (`OLD` transition
/// values are maps; paper §4.2 "Transition Variables").
pub fn prop_of(ctx: &EvalCtx<'_>, base: &Value, key: &str) -> Result<Value> {
    match base {
        Value::Node(n) => Ok(ctx.view.node_prop(*n, key).unwrap_or(Value::Null)),
        Value::Rel(r) => Ok(ctx.view.rel_prop(*r, key).unwrap_or(Value::Null)),
        Value::Map(m) => Ok(m.get(key).cloned().unwrap_or(Value::Null)),
        Value::Null => Ok(Value::Null),
        other => Err(CypherError::type_err(format!(
            "property access on {}",
            other.type_name()
        ))),
    }
}

/// Three-valued truth of a value: `Some(bool)` or `None` for NULL.
fn truth3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(CypherError::type_err(format!(
            "expected a boolean, got {}",
            other.type_name()
        ))),
    }
}

fn bool3(b: Option<bool>) -> Value {
    match b {
        Some(x) => Value::Bool(x),
        None => Value::Null,
    }
}

fn not3(b: Option<bool>) -> Value {
    bool3(b.map(|x| !x))
}

fn eval_binary(ctx: &EvalCtx<'_>, row: &Row, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Value> {
    // Short-circuit logic operators first.
    match op {
        BinOp::And => {
            let l = truth3(&eval(ctx, row, lhs)?)?;
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = truth3(&eval(ctx, row, rhs)?)?;
            return Ok(match (l, r) {
                (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        BinOp::Or => {
            let l = truth3(&eval(ctx, row, lhs)?)?;
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = truth3(&eval(ctx, row, rhs)?)?;
            return Ok(match (l, r) {
                (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        BinOp::Xor => {
            let l = truth3(&eval(ctx, row, lhs)?)?;
            let r = truth3(&eval(ctx, row, rhs)?)?;
            return Ok(match (l, r) {
                (Some(a), Some(b)) => Value::Bool(a != b),
                _ => Value::Null,
            });
        }
        _ => {}
    }

    let l = eval(ctx, row, lhs)?;
    let r = eval(ctx, row, rhs)?;
    match op {
        BinOp::Add => l.add(&r).ok_or_else(|| arith("+", &l, &r)),
        BinOp::Sub => l.sub(&r).ok_or_else(|| arith("-", &l, &r)),
        BinOp::Mul => l.mul(&r).ok_or_else(|| arith("*", &l, &r)),
        BinOp::Div => l.div(&r).ok_or_else(|| {
            if matches!((&l, &r), (Value::Int(_), Value::Int(0))) {
                CypherError::Arithmetic("division by zero".into())
            } else {
                arith("/", &l, &r)
            }
        }),
        BinOp::Mod => l.modulo(&r).ok_or_else(|| {
            if matches!((&l, &r), (Value::Int(_), Value::Int(0))) {
                CypherError::Arithmetic("modulo by zero".into())
            } else {
                arith("%", &l, &r)
            }
        }),
        BinOp::Pow => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => Ok(Value::Float(a.powf(b))),
            _ if l.is_null() || r.is_null() => Ok(Value::Null),
            _ => Err(arith("^", &l, &r)),
        },
        BinOp::Eq => Ok(bool3(l.eq3(&r))),
        BinOp::Neq => Ok(not3(l.eq3(&r))),
        BinOp::Lt => Ok(bool3(l.cmp3(&r).map(|o| o == std::cmp::Ordering::Less))),
        BinOp::Le => Ok(bool3(l.cmp3(&r).map(|o| o != std::cmp::Ordering::Greater))),
        BinOp::Gt => Ok(bool3(l.cmp3(&r).map(|o| o == std::cmp::Ordering::Greater))),
        BinOp::Ge => Ok(bool3(l.cmp3(&r).map(|o| o != std::cmp::Ordering::Less))),
        BinOp::In => {
            if l.is_null() {
                return Ok(Value::Null);
            }
            match &r {
                Value::Null => Ok(Value::Null),
                Value::List(items) => {
                    let mut saw_null = false;
                    for item in items {
                        match l.eq3(item) {
                            Some(true) => return Ok(Value::Bool(true)),
                            Some(false) => {}
                            None => saw_null = true,
                        }
                    }
                    Ok(if saw_null {
                        Value::Null
                    } else {
                        Value::Bool(false)
                    })
                }
                other => Err(CypherError::type_err(format!(
                    "IN expects a list, got {}",
                    other.type_name()
                ))),
            }
        }
        BinOp::StartsWith | BinOp::EndsWith | BinOp::Contains => match (&l, &r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Str(a), Value::Str(b)) => Ok(Value::Bool(match op {
                BinOp::StartsWith => a.starts_with(b.as_str()),
                BinOp::EndsWith => a.ends_with(b.as_str()),
                BinOp::Contains => a.contains(b.as_str()),
                _ => unreachable!(),
            })),
            // CONTAINS also works on lists (membership), mirroring IN.
            (Value::List(items), x) if op == BinOp::Contains => {
                Ok(Value::Bool(items.iter().any(|i| x.eq3(i) == Some(true))))
            }
            _ => Err(CypherError::type_err(format!(
                "string operator on {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        BinOp::And | BinOp::Or | BinOp::Xor => unreachable!("handled above"),
    }
}

fn arith(op: &str, l: &Value, r: &Value) -> CypherError {
    CypherError::Arithmetic(format!(
        "cannot apply '{op}' to {} and {}",
        l.type_name(),
        r.type_name()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;
    use pg_graph::{Graph, PropertyMap};

    fn eval_str(src: &str, row: &Row, g: &Graph) -> Result<Value> {
        let e = parse_expression(src).unwrap();
        let params = Params::new();
        let ctx = EvalCtx::new(g, &params, 1_000);
        eval(&ctx, row, &e)
    }

    #[test]
    fn arithmetic_and_precedence() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(eval_str("1 + 2 * 3", &r, &g).unwrap(), Value::Int(7));
        assert_eq!(eval_str("(1 + 2) * 3", &r, &g).unwrap(), Value::Int(9));
        assert_eq!(eval_str("2 ^ 3 ^ 2", &r, &g).unwrap(), Value::Float(512.0));
        assert_eq!(eval_str("-2 + 5", &r, &g).unwrap(), Value::Int(3));
        assert_eq!(eval_str("7 % 3", &r, &g).unwrap(), Value::Int(1));
    }

    #[test]
    fn division_by_zero_errors() {
        let g = Graph::new();
        let r = Row::new();
        assert!(matches!(
            eval_str("1 / 0", &r, &g),
            Err(CypherError::Arithmetic(_))
        ));
        // float division by zero is IEEE
        assert_eq!(
            eval_str("1.0 / 0.0", &r, &g).unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn three_valued_logic() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(
            eval_str("null AND false", &r, &g).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(eval_str("null AND true", &r, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("null OR true", &r, &g).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("null OR false", &r, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("NOT null", &r, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("null = null", &r, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("null IS NULL", &r, &g).unwrap(), Value::Bool(true));
        assert_eq!(
            eval_str("1 IS NOT NULL", &r, &g).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("true XOR false", &r, &g).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_str("true XOR null", &r, &g).unwrap(), Value::Null);
    }

    #[test]
    fn in_operator() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(eval_str("2 IN [1, 2]", &r, &g).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("3 IN [1, 2]", &r, &g).unwrap(), Value::Bool(false));
        assert_eq!(eval_str("3 IN [1, null]", &r, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("null IN [1]", &r, &g).unwrap(), Value::Null);
    }

    #[test]
    fn string_predicates() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(
            eval_str("'Spike:D614G' STARTS WITH 'Spike'", &r, &g).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("'abc' ENDS WITH 'bc'", &r, &g).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("'abc' CONTAINS 'z'", &r, &g).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn property_access_on_node_map_null() {
        let mut g = Graph::new();
        let props: PropertyMap = [("name".to_string(), Value::str("Alpha"))]
            .into_iter()
            .collect();
        let n = g.create_node(["Lineage"], props).unwrap();
        let mut row = Row::new();
        row.set("l", Value::Node(n));
        row.set("m", Value::map([("k".to_string(), Value::Int(3))]));
        row.set("x", Value::Null);
        assert_eq!(eval_str("l.name", &row, &g).unwrap(), Value::str("Alpha"));
        assert_eq!(eval_str("l.missing", &row, &g).unwrap(), Value::Null);
        assert_eq!(eval_str("m.k", &row, &g).unwrap(), Value::Int(3));
        assert_eq!(eval_str("x.anything", &row, &g).unwrap(), Value::Null);
        assert!(eval_str("1 .k", &row, &g).is_err());
    }

    #[test]
    fn label_predicate() {
        let mut g = Graph::new();
        let n = g.create_node(["A", "B"], PropertyMap::new()).unwrap();
        let mut row = Row::new();
        row.set("n", Value::Node(n));
        assert_eq!(eval_str("n:A", &row, &g).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("n:A:B", &row, &g).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("n:A:C", &row, &g).unwrap(), Value::Bool(false));
    }

    #[test]
    fn index_and_slice() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(eval_str("[1,2,3][0]", &r, &g).unwrap(), Value::Int(1));
        assert_eq!(eval_str("[1,2,3][-1]", &r, &g).unwrap(), Value::Int(3));
        assert_eq!(eval_str("[1,2,3][9]", &r, &g).unwrap(), Value::Null);
        assert_eq!(
            eval_str("[1,2,3,4][1..3]", &r, &g).unwrap(),
            Value::list([Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval_str("[1,2,3,4][..2]", &r, &g).unwrap(),
            Value::list([Value::Int(1), Value::Int(2)])
        );
        assert_eq!(eval_str("{a: 1}['a']", &r, &g).unwrap(), Value::Int(1));
    }

    #[test]
    fn case_expressions() {
        let g = Graph::new();
        let mut r = Row::new();
        r.set("x", Value::Int(2));
        assert_eq!(
            eval_str("CASE WHEN x > 1 THEN 'big' ELSE 'small' END", &r, &g).unwrap(),
            Value::str("big")
        );
        assert_eq!(
            eval_str("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", &r, &g).unwrap(),
            Value::str("two")
        );
        assert_eq!(
            eval_str("CASE x WHEN 9 THEN 'nine' END", &r, &g).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn list_comprehension() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(
            eval_str("[x IN [1,2,3] WHERE x > 1 | x * 10]", &r, &g).unwrap(),
            Value::list([Value::Int(20), Value::Int(30)])
        );
        assert_eq!(
            eval_str("[x IN [1,2,3] WHERE x > 10]", &r, &g).unwrap(),
            Value::list([])
        );
    }

    #[test]
    fn unbound_variable_error() {
        let g = Graph::new();
        let r = Row::new();
        assert_eq!(
            eval_str("ghost", &r, &g),
            Err(CypherError::UnboundVariable("ghost".into()))
        );
    }

    #[test]
    fn params_resolve() {
        let g = Graph::new();
        let e = parse_expression("$threshold + 1").unwrap();
        let mut params = Params::new();
        params.insert("threshold".to_string(), Value::Int(49));
        let ctx = EvalCtx::new(&g, &params, 0);
        assert_eq!(eval(&ctx, &Row::new(), &e).unwrap(), Value::Int(50));
    }

    #[test]
    fn aggregate_rejected_outside_projection() {
        let g = Graph::new();
        let r = Row::new();
        assert!(matches!(
            eval_str("count(1)", &r, &g),
            Err(CypherError::Type(_))
        ));
        assert!(matches!(
            eval_str("count(*)", &r, &g),
            Err(CypherError::Type(_))
        ));
    }
}
