//! End-to-end query execution tests for the Cypher subset.

use pg_cypher::{parse_query, run_ast, run_query, run_read_only, CypherError, Params, Row};
use pg_graph::{Graph, GraphView, Value};

fn g() -> Graph {
    Graph::new()
}

fn run(graph: &mut Graph, src: &str) -> pg_cypher::QueryOutput {
    run_query(graph, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

#[test]
fn create_and_match_roundtrip() {
    let mut graph = g();
    run(&mut graph, "CREATE (:Person {name: 'Ada', age: 36})");
    run(&mut graph, "CREATE (:Person {name: 'Bob', age: 20})");
    let out = run(
        &mut graph,
        "MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS name",
    );
    assert_eq!(out.columns, vec!["name"]);
    assert_eq!(out.rows, vec![vec![Value::str("Ada")]]);
}

#[test]
fn create_path_binds_and_connects() {
    let mut graph = g();
    let out = run(
        &mut graph,
        "CREATE (a:A {x: 1})-[r:REL {w: 2}]->(b:B) RETURN a.x AS ax, r.w AS rw",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    assert_eq!(graph.node_count(), 2);
    assert_eq!(graph.rel_count(), 1);
    let out = run(&mut graph, "MATCH (:A)-[:REL]->(b:B) RETURN count(*) AS n");
    assert_eq!(out.single(), Some(&Value::Int(1)));
}

#[test]
fn match_then_create_per_row() {
    let mut graph = g();
    run(&mut graph, "CREATE (:P {i: 1}) CREATE (:P {i: 2})");
    run(
        &mut graph,
        "MATCH (p:P) CREATE (p)-[:HAS]->(:Child {of: p.i})",
    );
    let out = run(&mut graph, "MATCH (:P)-[:HAS]->(c) RETURN count(c) AS n");
    assert_eq!(out.single(), Some(&Value::Int(2)));
}

#[test]
fn aggregation_with_grouping() {
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (:E {dept: 'a', pay: 10}), (:E {dept: 'a', pay: 30}), (:E {dept: 'b', pay: 5})",
    );
    let out = run(
        &mut graph,
        "MATCH (e:E) RETURN e.dept AS dept, sum(e.pay) AS total, count(*) AS n ORDER BY dept",
    );
    assert_eq!(
        out.rows,
        vec![
            vec![Value::str("a"), Value::Int(40), Value::Int(2)],
            vec![Value::str("b"), Value::Int(5), Value::Int(1)],
        ]
    );
}

#[test]
fn count_on_empty_is_zero() {
    let mut graph = g();
    let out = run(&mut graph, "MATCH (n:Nothing) RETURN count(*) AS n");
    assert_eq!(out.single(), Some(&Value::Int(0)));
}

#[test]
fn aggregate_in_arithmetic_expression() {
    // The paper's IcuPatientIncrease uses NewIcuPat / TotalIcuPat > 0.1.
    let mut graph = g();
    run(&mut graph, "CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})");
    let out = run(
        &mut graph,
        "MATCH (n:N) WITH count(n) AS total MATCH (m:N) WHERE m.v > 1 WITH count(m) AS big, total RETURN big * 1.0 / total > 0.5 AS frac",
    );
    assert_eq!(out.single(), Some(&Value::Bool(true)));
}

#[test]
fn with_where_filters_groups() {
    let mut graph = g();
    run(&mut graph, "CREATE (:P), (:P), (:P)");
    let out = run(
        &mut graph,
        "MATCH (p:P) WITH count(p) AS n WHERE n > 50 RETURN n",
    );
    assert!(out.rows.is_empty());
    let out = run(
        &mut graph,
        "MATCH (p:P) WITH count(p) AS n WHERE n > 2 RETURN n",
    );
    assert_eq!(out.single(), Some(&Value::Int(3)));
}

#[test]
fn set_and_remove_props_and_labels() {
    let mut graph = g();
    run(&mut graph, "CREATE (:T {a: 1})");
    run(&mut graph, "MATCH (t:T) SET t.a = 2, t.b = 'x', t:Extra");
    let out = run(&mut graph, "MATCH (t:Extra) RETURN t.a AS a, t.b AS b");
    assert_eq!(out.rows, vec![vec![Value::Int(2), Value::str("x")]]);
    run(&mut graph, "MATCH (t:T) REMOVE t.b, t:Extra");
    let out = run(&mut graph, "MATCH (t:T) RETURN t.b AS b");
    assert_eq!(out.rows, vec![vec![Value::Null]]);
    assert!(graph.nodes_with_label("Extra").is_empty());
}

#[test]
fn set_plus_eq_merges_map() {
    let mut graph = g();
    run(&mut graph, "CREATE (:T {a: 1, keep: true})");
    run(&mut graph, "MATCH (t:T) SET t += {a: 9, extra: 'y'}");
    let out = run(
        &mut graph,
        "MATCH (t:T) RETURN t.a AS a, t.keep AS k, t.extra AS e",
    );
    assert_eq!(
        out.rows,
        vec![vec![Value::Int(9), Value::Bool(true), Value::str("y")]]
    );
    // replace-all
    run(&mut graph, "MATCH (t:T) SET t = {only: 1}");
    let out = run(&mut graph, "MATCH (t:T) RETURN t.a AS a, t.only AS o");
    assert_eq!(out.rows, vec![vec![Value::Null, Value::Int(1)]]);
}

#[test]
fn setting_null_removes_property() {
    let mut graph = g();
    run(&mut graph, "CREATE (:T {a: 1})");
    run(&mut graph, "MATCH (t:T) SET t.a = null");
    let out = run(&mut graph, "MATCH (t:T) RETURN t.a AS a");
    assert_eq!(out.rows, vec![vec![Value::Null]]);
}

#[test]
fn delete_and_detach_delete() {
    let mut graph = g();
    run(&mut graph, "CREATE (a:A)-[:R]->(b:B)");
    // plain DELETE on a connected node fails
    let err = run_query(&mut graph, "MATCH (a:A) DELETE a", &Params::new(), 0).unwrap_err();
    assert!(matches!(err, CypherError::Store(_)));
    run(&mut graph, "MATCH (a:A) DETACH DELETE a");
    assert_eq!(graph.node_count(), 1);
    assert_eq!(graph.rel_count(), 0);
}

#[test]
fn delete_relationship_only() {
    let mut graph = g();
    run(&mut graph, "CREATE (a:A)-[:R]->(b:B)");
    run(&mut graph, "MATCH (:A)-[r:R]->(:B) DELETE r");
    assert_eq!(graph.rel_count(), 0);
    assert_eq!(graph.node_count(), 2);
}

#[test]
fn merge_creates_then_matches() {
    let mut graph = g();
    run(
        &mut graph,
        "MERGE (n:Acc {k: 1}) ON CREATE SET n.created = true ON MATCH SET n.matched = true",
    );
    assert_eq!(graph.node_count(), 1);
    run(
        &mut graph,
        "MERGE (n:Acc {k: 1}) ON CREATE SET n.created2 = true ON MATCH SET n.matched = true",
    );
    assert_eq!(graph.node_count(), 1);
    let out = run(
        &mut graph,
        "MATCH (n:Acc) RETURN n.created AS c, n.matched AS m, n.created2 AS c2",
    );
    assert_eq!(
        out.rows,
        vec![vec![Value::Bool(true), Value::Bool(true), Value::Null]]
    );
}

#[test]
fn unwind_and_collect() {
    let mut graph = g();
    let out = run(&mut graph, "UNWIND [3, 1, 2] AS x RETURN collect(x) AS xs");
    assert_eq!(
        out.single(),
        Some(&Value::list([Value::Int(3), Value::Int(1), Value::Int(2)]))
    );
    let out = run(
        &mut graph,
        "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 RETURN count(*) AS n",
    );
    assert_eq!(out.single(), Some(&Value::Int(2)));
    // UNWIND null produces no rows
    let out = run(&mut graph, "UNWIND null AS x RETURN x");
    assert!(out.rows.is_empty());
}

#[test]
fn foreach_updates_per_element() {
    let mut graph = g();
    run(
        &mut graph,
        "FOREACH (i IN range(1, 3) | CREATE (:Item {i: i}))",
    );
    let out = run(&mut graph, "MATCH (x:Item) RETURN count(*) AS n");
    assert_eq!(out.single(), Some(&Value::Int(3)));
}

#[test]
fn order_by_skip_limit_distinct() {
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (:V {x: 3}), (:V {x: 1}), (:V {x: 2}), (:V {x: 1})",
    );
    let out = run(
        &mut graph,
        "MATCH (v:V) RETURN DISTINCT v.x AS x ORDER BY x DESC",
    );
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(3)],
            vec![Value::Int(2)],
            vec![Value::Int(1)]
        ]
    );
    let out = run(
        &mut graph,
        "MATCH (v:V) RETURN DISTINCT v.x AS x ORDER BY x SKIP 1 LIMIT 1",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn order_by_with_limit_one_like_paper() {
    // MoveToNearHospital: WITH ct ORDER BY ct.distance LIMIT 1
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (h:Hospital {name: 'Sacco'}) \
         CREATE (h)-[:ConnectedTo {distance: 50}]->(:Hospital {name: 'Far'}) \
         CREATE (h)-[:ConnectedTo {distance: 10}]->(:Hospital {name: 'Near'})",
    );
    let out = run(
        &mut graph,
        "MATCH (:Hospital {name: 'Sacco'})-[ct:ConnectedTo]-(hc:Hospital) \
         WITH ct, hc ORDER BY ct.distance LIMIT 1 RETURN hc.name AS name",
    );
    assert_eq!(out.rows, vec![vec![Value::str("Near")]]);
}

#[test]
fn optional_match_binds_null() {
    let mut graph = g();
    run(&mut graph, "CREATE (:L {n: 1})");
    let out = run(
        &mut graph,
        "MATCH (l:L) OPTIONAL MATCH (l)-[:NOPE]->(m) RETURN l.n AS n, m AS m",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Null]]);
}

#[test]
fn exists_subquery_in_where() {
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (m:Mutation {name: 'D614G'})-[:Risk]->(:CriticalEffect) CREATE (:Mutation {name: 'benign'})",
    );
    let out = run(
        &mut graph,
        "MATCH (m:Mutation) WHERE EXISTS { MATCH (m)-[:Risk]-(:CriticalEffect) } RETURN m.name AS n",
    );
    assert_eq!(out.rows, vec![vec![Value::str("D614G")]]);
}

#[test]
fn params_flow_through() {
    let mut graph = g();
    run(&mut graph, "CREATE (:K {v: 10}), (:K {v: 20})");
    let mut params = Params::new();
    params.insert("min".into(), Value::Int(15));
    let out = run_query(
        &mut graph,
        "MATCH (k:K) WHERE k.v > $min RETURN k.v AS v",
        &params,
        0,
    )
    .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(20)]]);
}

#[test]
fn datetime_uses_clock() {
    let mut graph = g();
    let out = run_query(
        &mut graph,
        "RETURN datetime() AS t",
        &Params::new(),
        123_456,
    )
    .unwrap();
    assert_eq!(out.single(), Some(&Value::DateTime(123_456)));
}

#[test]
fn read_only_target_rejects_writes() {
    let mut graph = g();
    run(&mut graph, "CREATE (:R)");
    let q = parse_query("CREATE (:Nope)").unwrap();
    let err = run_read_only(&graph, &q, Vec::new(), &Params::new(), 0).unwrap_err();
    assert!(matches!(err, CypherError::ReadOnly(_)));
    // reads are fine
    let q = parse_query("MATCH (r:R) RETURN count(*) AS n").unwrap();
    let out = run_read_only(&graph, &q, Vec::new(), &Params::new(), 0).unwrap();
    assert_eq!(out.single(), Some(&Value::Int(1)));
}

#[test]
fn seeded_execution_binds_transition_vars() {
    // Simulates the trigger engine: NEW bound to a node, statement uses it.
    let mut graph = g();
    run(&mut graph, "CREATE (:Mutation {name: 'E484K'})");
    let n = graph.nodes_with_label("Mutation")[0];
    let q =
        parse_query("CREATE (:Alert {desc: 'New critical mutation', mutation: NEW.name})").unwrap();
    let mut seed = Row::new();
    seed.set("NEW", Value::Node(n));
    run_ast(&mut graph, &q, vec![seed], &Params::new(), 0).unwrap();
    let out = run(&mut graph, "MATCH (a:Alert) RETURN a.mutation AS m");
    assert_eq!(out.rows, vec![vec![Value::str("E484K")]]);
}

#[test]
fn abort_clause_raises_only_with_rows() {
    let mut graph = g();
    run(&mut graph, "CREATE (:H {beds: -1})");
    let err = run_query(
        &mut graph,
        "MATCH (h:H) WHERE h.beds < 0 ABORT 'negative beds'",
        &Params::new(),
        0,
    )
    .unwrap_err();
    assert_eq!(err, CypherError::Aborted("negative beds".into()));
    // no matching rows → no abort
    run(
        &mut graph,
        "MATCH (h:H) WHERE h.beds > 0 ABORT 'unreachable'",
    );
}

#[test]
fn case_in_projection_like_memgraph_translation() {
    let mut graph = g();
    run(&mut graph, "CREATE (:P {age: 10}), (:P {age: 30})");
    let out = run(
        &mut graph,
        "MATCH (p:P) WITH CASE WHEN p.age > 18 THEN p END AS flag, p AS p \
         WHERE flag IS NOT NULL RETURN p.age AS age",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(30)]]);
}

#[test]
fn with_star_keeps_bindings() {
    let mut graph = g();
    run(&mut graph, "CREATE (:S {a: 1})");
    let out = run(
        &mut graph,
        "MATCH (s:S) WITH *, s.a + 1 AS b RETURN s.a AS a, b",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
}

#[test]
fn labels_and_id_functions() {
    let mut graph = g();
    run(&mut graph, "CREATE (:X:Y {p: 1})");
    let out = run(
        &mut graph,
        "MATCH (n:X) RETURN labels(n) AS ls, id(n) >= 0 AS has_id",
    );
    assert_eq!(
        out.rows,
        vec![vec![
            Value::list([Value::str("X"), Value::str("Y")]),
            Value::Bool(true)
        ]]
    );
}

#[test]
fn multiple_statements_build_covid_like_graph() {
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (m:Mutation {name: 'Spike:D614G', protein: 'Spike'}) \
         CREATE (e:CriticalEffect {description: 'Enhanced infectivity'}) \
         CREATE (m)-[:Risk]->(e)",
    );
    run(
        &mut graph,
        "CREATE (s:Sequence {accession: 'S1'}) \
         CREATE (l:Lineage {name: 'B.1.1.7', whoDesignation: 'Alpha'}) \
         CREATE (s)-[:BelongsTo]->(l)",
    );
    run(
        &mut graph,
        "MATCH (m:Mutation {name: 'Spike:D614G'}), (s:Sequence {accession: 'S1'}) \
         CREATE (m)-[:FoundIn]->(s)",
    );
    // the NewCriticalLineage condition pattern
    let out = run(
        &mut graph,
        "MATCH (s:Sequence)-[:BelongsTo]-(l:Lineage) \
         WHERE EXISTS { MATCH (:CriticalEffect)-[:Risk]-(:Mutation)-[:FoundIn]-(s) } \
         RETURN l.name AS lineage",
    );
    assert_eq!(out.rows, vec![vec![Value::str("B.1.1.7")]]);
}

#[test]
fn type_errors_are_reported() {
    let mut graph = g();
    run(&mut graph, "CREATE (:T {a: 1})");
    assert!(run_query(&mut graph, "MATCH (t:T) SET t.a = t", &Params::new(), 0).is_err()); // node not storable
    assert!(run_query(&mut graph, "RETURN 1 + 'x' - 2", &Params::new(), 0).is_err()); // "1x" - 2
    assert!(run_query(&mut graph, "RETURN true + 1", &Params::new(), 0).is_err());
}

#[test]
fn var_length_reachability() {
    let mut graph = g();
    run(
        &mut graph,
        "CREATE (:Hop {i: 0})-[:N]->(:Hop {i: 1}) \
         WITH 1 AS _ MATCH (a:Hop {i: 1}) CREATE (a)-[:N]->(:Hop {i: 2})",
    );
    let out = run(
        &mut graph,
        "MATCH (a:Hop {i: 0})-[:N*]->(b) RETURN count(b) AS n",
    );
    assert_eq!(out.single(), Some(&Value::Int(2)));
}

#[test]
fn merge_relationship_pattern() {
    let mut graph = g();
    run(&mut graph, "CREATE (:A {k: 1}) CREATE (:B {k: 2})");
    run(&mut graph, "MATCH (a:A), (b:B) MERGE (a)-[:LINK]->(b)");
    assert_eq!(graph.rel_count(), 1);
    // merging again is a no-op
    run(&mut graph, "MATCH (a:A), (b:B) MERGE (a)-[:LINK]->(b)");
    assert_eq!(graph.rel_count(), 1);
}
