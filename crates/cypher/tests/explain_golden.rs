//! `EXPLAIN` golden-snapshot tests over a fixed catalog.
//!
//! The graph below is deterministic (fixed node/edge counts, fixed
//! indexes), so the rendered physical plans — access paths, degree-
//! statistics fanouts, join-output estimates, actual row counts — are
//! stable strings. Any planner change that shifts an access-path choice
//! or an estimate shows up here as a readable diff.

use pg_cypher::{explain_query, Params};
use pg_graph::{Graph, PropertyMap, Value};

fn props(entries: &[(&str, Value)]) -> PropertyMap {
    entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// 8 Person (indexed on `age`; composite on `[team, score]`), 4 City,
/// 16 LIVES_IN edges Person→City (each person twice).
fn fixture() -> Graph {
    let mut g = Graph::new();
    let mut people = Vec::new();
    let mut cities = Vec::new();
    for i in 0..8i64 {
        people.push(
            g.create_node(
                ["Person"],
                props(&[
                    ("age", Value::Int(20 + i)),
                    (
                        "team",
                        Value::Str(if i < 4 { "red" } else { "blue" }.into()),
                    ),
                    ("score", Value::Int(100 - i)),
                ]),
            )
            .unwrap(),
        );
    }
    for i in 0..4i64 {
        cities.push(
            g.create_node(["City"], props(&[("pop", Value::Int(1000 * (i + 1)))]))
                .unwrap(),
        );
    }
    for (i, &p) in people.iter().enumerate() {
        g.create_rel(p, cities[i % 4], "LIVES_IN", PropertyMap::new())
            .unwrap();
        g.create_rel(p, cities[(i + 1) % 4], "LIVES_IN", PropertyMap::new())
            .unwrap();
    }
    g.create_index("Person", "age");
    g.create_composite_index("Person", &["team".into(), "score".into()]);
    g
}

fn explain(src: &str) -> String {
    let g = fixture();
    explain_query(&g, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

#[test]
fn index_eq_seed() {
    assert_eq!(
        explain("MATCH (p:Person) WHERE p.age = 23 RETURN p"),
        "Plan\n\
         \x20 Seed (p) access=IndexEq(Person.age) est=1 rows\n\
         \x20 Filter (p.age = 23)\n\
         \x20 Project [p]\n\
         estimated match rows: 1\n\
         actual rows: 1\n"
    );
}

#[test]
fn expand_uses_degree_fanout() {
    // The cost model re-roots at City (4 nodes < 8 Persons) and expands
    // the reversed edge: fanout 16 edges / 4 cities = 4.00.
    assert_eq!(
        explain("MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN p, c"),
        "Plan\n\
         \x20 Seed (c) access=LabelScan(City) est=4 rows\n\
         \x20 Expand <-[:LIVES_IN]-(p:Person) fanout=4.00 est=16 rows\n\
         \x20 Project [p, c]\n\
         estimated match rows: 16\n\
         actual rows: 16\n"
    );
}

#[test]
fn fused_topk_plan() {
    assert_eq!(
        explain(
            "MATCH (p:Person {team: 'red'}) WITH p ORDER BY p.score LIMIT 3 \
             RETURN p.score AS s"
        ),
        "Plan\n\
         \x20 Seed (p) access=CompositeProbe(Person[team,score]) est=4 rows\n\
         \x20 Project [p]\n\
         \x20 TopK p.score asc keep=3\n\
         \x20 Project [s]\n\
         estimated match rows: 4\n\
         actual rows: 3\n"
    );
}

#[test]
fn updating_query_not_executed() {
    assert_eq!(
        explain("CREATE (t:Thing {k: 1})"),
        "Plan\n\
         \x20 Update <Create>\n\
         actual rows: not executed (updating query)\n"
    );
}

#[test]
fn aggregate_and_sort() {
    assert_eq!(
        explain(
            "MATCH (p:Person)-[:LIVES_IN]->(c:City) \
             RETURN c, count(p) AS n ORDER BY n DESC"
        ),
        "Plan\n\
         \x20 Seed (c) access=LabelScan(City) est=4 rows\n\
         \x20 Expand <-[:LIVES_IN]-(p:Person) fanout=4.00 est=16 rows\n\
         \x20 Aggregate [c, n]\n\
         \x20 Sort keys=1 desc\n\
         estimated match rows: 16\n\
         actual rows: 4\n"
    );
}
