//! `EXPLAIN` golden-snapshot tests over a fixed catalog.
//!
//! The graph below is deterministic (fixed node/edge counts, fixed
//! indexes), so the rendered physical plans — access paths, degree-
//! statistics fanouts, join-output estimates, actual row counts — are
//! stable strings. Any planner change that shifts an access-path choice
//! or an estimate shows up here as a readable diff.

use pg_cypher::{explain_query_with, Params};
use pg_graph::{Graph, PropertyMap, Value};

fn props(entries: &[(&str, Value)]) -> PropertyMap {
    entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// 8 Person (indexed on `age`; composite on `[team, score]`), 4 City,
/// 16 LIVES_IN edges Person→City (each person twice).
fn fixture() -> Graph {
    let mut g = Graph::new();
    let mut people = Vec::new();
    let mut cities = Vec::new();
    for i in 0..8i64 {
        people.push(
            g.create_node(
                ["Person"],
                props(&[
                    ("age", Value::Int(20 + i)),
                    (
                        "team",
                        Value::Str(if i < 4 { "red" } else { "blue" }.into()),
                    ),
                    ("score", Value::Int(100 - i)),
                ]),
            )
            .unwrap(),
        );
    }
    for i in 0..4i64 {
        cities.push(
            g.create_node(["City"], props(&[("pop", Value::Int(1000 * (i + 1)))]))
                .unwrap(),
        );
    }
    for (i, &p) in people.iter().enumerate() {
        g.create_rel(p, cities[i % 4], "LIVES_IN", PropertyMap::new())
            .unwrap();
        g.create_rel(p, cities[(i + 1) % 4], "LIVES_IN", PropertyMap::new())
            .unwrap();
    }
    g.create_index("Person", "age");
    g.create_composite_index("Person", &["team".into(), "score".into()]);
    g
}

/// Explain with a pinned thread ceiling of 4 so the rendered
/// `Parallel` / `Serial` decision lines do not depend on the machine
/// running the test (or on `PG_THREADS`).
fn explain(src: &str) -> String {
    let g = fixture();
    explain_query_with(&g, src, &Params::new(), 0, 4).unwrap_or_else(|e| panic!("{src}: {e}"))
}

#[test]
fn index_eq_seed() {
    assert_eq!(
        explain("MATCH (p:Person) WHERE p.age = 23 RETURN p"),
        "Plan\n\
         \x20 Seed (p) access=IndexEq(Person.age) est=1 rows\n\
         \x20 Filter (p.age = 23)\n\
         \x20 Serial (singleton-seed)\n\
         \x20 Project [p]\n\
         estimated match rows: 1\n\
         actual rows: 1\n"
    );
}

#[test]
fn expand_uses_degree_fanout() {
    // The cost model re-roots at City (4 nodes < 8 Persons) and expands
    // the reversed edge: fanout 16 edges / 4 cities = 4.00.
    assert_eq!(
        explain("MATCH (p:Person)-[:LIVES_IN]->(c:City) RETURN p, c"),
        "Plan\n\
         \x20 Seed (c) access=LabelScan(City) est=4 rows\n\
         \x20 Expand <-[:LIVES_IN]-(p:Person) fanout=4.00 est=16 rows\n\
         \x20 Serial (singleton-seed)\n\
         \x20 Project [p, c]\n\
         estimated match rows: 16\n\
         actual rows: 16\n"
    );
}

#[test]
fn fused_topk_plan() {
    assert_eq!(
        explain(
            "MATCH (p:Person {team: 'red'}) WITH p ORDER BY p.score LIMIT 3 \
             RETURN p.score AS s"
        ),
        "Plan\n\
         \x20 Seed (p) access=CompositeProbe(Person[team,score]) est=4 rows\n\
         \x20 Project [p]\n\
         \x20 TopK p.score asc keep=3\n\
         \x20 Project [s]\n\
         estimated match rows: 4\n\
         actual rows: 3\n"
    );
}

#[test]
fn updating_query_not_executed() {
    assert_eq!(
        explain("CREATE (t:Thing {k: 1})"),
        "Plan\n\
         \x20 Update <Create>\n\
         actual rows: not executed (updating query)\n"
    );
}

#[test]
fn second_match_declines_below_threshold() {
    // The second MATCH sees the first one's estimated 16 seed rows, so
    // it is not a singleton group — but 16 × fanout is nowhere near the
    // 4096-row threshold, so the planner declines with the cheaper rule.
    let out = explain(
        "MATCH (p:Person)-[:LIVES_IN]->(c:City) \
         MATCH (c)<-[:LIVES_IN]-(q:Person) RETURN count(q) AS n",
    );
    println!("{out}");
    assert!(
        out.contains("  Serial (below-threshold)\n"),
        "expected below-threshold decline, got:\n{out}"
    );
}

/// A fixture big enough to clear the 4096-row threshold: 128 User
/// nodes, each following exactly 8 others (1024 FOLLOWS edges). The
/// second MATCH's estimated join output is 1024 × 8 = 8192 rows.
#[test]
fn parallel_decision_renders_degree_and_morsels() {
    let mut g = Graph::new();
    let users: Vec<_> = (0..128i64)
        .map(|i| {
            g.create_node(["User"], props(&[("id", Value::Int(i))]))
                .unwrap()
        })
        .collect();
    for (i, &u) in users.iter().enumerate() {
        for j in 1..=8 {
            g.create_rel(u, users[(i + j * 13) % 128], "FOLLOWS", PropertyMap::new())
                .unwrap();
        }
    }
    let out = explain_query_with(
        &g,
        "MATCH (a:User)-[:FOLLOWS]->(b:User) \
         MATCH (b)-[:FOLLOWS]->(c:User) RETURN count(c) AS n",
        &Params::new(),
        0,
        4,
    )
    .unwrap();
    // degree = est / threshold = 8192 / 4096 = 2 (the cost-width clamp
    // engages before the 4-thread ceiling); morsels = 1024 seeds / 64.
    assert_eq!(
        out,
        "Plan\n\
         \x20 Seed (a) access=LabelScan(User) est=128 rows\n\
         \x20 Expand -[:FOLLOWS]->(b:User) fanout=8.00 est=1024 rows\n\
         \x20 Serial (singleton-seed)\n\
         \x20 Seed (b) access=BoundVar(b) est=1 rows\n\
         \x20 Expand -[:FOLLOWS]->(c:User) fanout=8.00 est=8 rows\n\
         \x20 Parallel degree=2 morsels=16 est=8192 rows\n\
         \x20 Aggregate [n]\n\
         estimated match rows: 8192\n\
         actual rows: 1\n"
    );
}

#[test]
fn aggregate_and_sort() {
    assert_eq!(
        explain(
            "MATCH (p:Person)-[:LIVES_IN]->(c:City) \
             RETURN c, count(p) AS n ORDER BY n DESC"
        ),
        "Plan\n\
         \x20 Seed (c) access=LabelScan(City) est=4 rows\n\
         \x20 Expand <-[:LIVES_IN]-(p:Person) fanout=4.00 est=16 rows\n\
         \x20 Serial (singleton-seed)\n\
         \x20 Aggregate [c, n]\n\
         \x20 Sort keys=1 desc\n\
         estimated match rows: 16\n\
         actual rows: 4\n"
    );
}
