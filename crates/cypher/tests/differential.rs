//! Differential query fuzzing: indexed and unindexed twins must never
//! disagree.
//!
//! In the certain-answer spirit of consistent query answering, every plan
//! the growing access-path space can choose — single-key equality/range/
//! prefix lookups, relationship indexes, composite (multi-key) indexes,
//! ordered top-k walks, pinned composite walks — must produce exactly the
//! row multiset the brute-force unindexed semantics produces. This
//! proptest drives a mirrored pair of graphs through random mutation
//! scripts (including `rollback` / `rollback_to` mid-script) while a
//! random **index DDL script** creates and drops single-key, relationship
//! and composite indexes on the indexed twin only, and checks a randomly
//! generated panel of `MATCH`/`WHERE`/`ORDER BY`/`LIMIT` queries after
//! **every** step: zero divergences allowed.
//!
//! Top-k queries project exactly their order keys, so sorted-row-multiset
//! equality is the right oracle even at tie cut-offs (tied rows carry
//! identical key tuples).
//!
//! `PG_FUZZ_CASES` (read in CI's nightly job) raises the proptest case
//! count for long soak runs; the default stays fast enough for every PR.

use pg_cypher::{run_query, Params};
use pg_graph::{Graph, GraphView, StatementMark, Value};
use proptest::prelude::*;

const STRINGS: [&str; 5] = ["al", "alpha", "bet", "beta", "gamma"];
const TAGS: [&str; 2] = ["t0", "t1"];

fn props(entries: Vec<(&str, Value)>) -> pg_graph::PropertyMap {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

fn cols(cs: &[&str]) -> Vec<String> {
    cs.iter().map(|c| c.to_string()).collect()
}

#[derive(Debug, Clone)]
enum Step {
    CreateNode {
        label: u8,
        k: i64,
        m: Option<i64>,
        s: Option<u8>,
    },
    CreateRel {
        a: usize,
        b: usize,
        w: i64,
        tag: u8,
    },
    DetachDelete {
        pick: usize,
    },
    SetProp {
        pick: usize,
        which: u8,
        val: i64,
    },
    RemoveProp {
        pick: usize,
        which: u8,
    },
    SetRelW {
        pick: usize,
        val: i64,
    },
    /// Create-or-drop one of the eight index definitions — on the
    /// **indexed twin only**.
    ToggleIndex {
        which: u8,
    },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // the vendored proptest shim has no `option`/`bool` modules; small
    // integer ranges stand in (0 = absent / false)
    let create_node =
        (0u8..2, -5i64..5, -6i64..5, 0u8..6).prop_map(|(label, k, m, s)| Step::CreateNode {
            label,
            k,
            m: (m > -6).then_some(m),
            s: s.checked_sub(1),
        });
    let set_prop = (0usize..16, 0u8..3, -5i64..5).prop_map(|(pick, which, val)| Step::SetProp {
        pick,
        which,
        val,
    });
    let toggle = (0u8..8).prop_map(|which| Step::ToggleIndex { which });
    prop_oneof![
        create_node.clone(),
        create_node,
        (0usize..16, 0usize..16, -5i64..5, 0u8..2).prop_map(|(a, b, w, tag)| Step::CreateRel {
            a,
            b,
            w,
            tag
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        set_prop.clone(),
        set_prop,
        (0usize..16, 0u8..3).prop_map(|(pick, which)| Step::RemoveProp { pick, which }),
        (0usize..16, -5i64..5).prop_map(|(pick, val)| Step::SetRelW { pick, val }),
        toggle.clone(),
        toggle,
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

/// One randomly generated panel query. Top-k templates return exactly
/// their order keys (see module docs).
fn query_strategy() -> impl Strategy<Value = String> {
    let label = |l: u8| if l == 0 { "A" } else { "B" };
    prop_oneof![
        (0u8..2, -5i64..5).prop_map(move |(l, v)| format!(
            "MATCH (x:{}) WHERE x.k = {v} RETURN x.k AS a, x.m AS b",
            label(l)
        )),
        (0u8..2, -5i64..5, -5i64..5).prop_map(move |(l, v, w)| format!(
            "MATCH (x:{}) WHERE x.k = {v} AND x.m >= {w} RETURN x.k AS a, x.m AS b",
            label(l)
        )),
        (0u8..2, -5i64..5, 0i64..6).prop_map(move |(l, lo, span)| format!(
            "MATCH (x:{}) WHERE x.k >= {lo} AND x.k < {} RETURN x.k AS a",
            label(l),
            lo + span
        )),
        (0u8..2, -5i64..5, 0usize..3).prop_map(move |(l, v, p)| format!(
            "MATCH (x:{}) WHERE x.k = {v} AND x.s STARTS WITH '{}' RETURN x.k AS a, x.s AS b",
            label(l),
            &STRINGS[p][..2]
        )),
        (0u8..2, 1usize..5, 0u8..2).prop_map(move |(l, lim, desc)| {
            let d = if desc == 1 { " DESC" } else { "" };
            format!(
                "MATCH (x:{}) WITH x ORDER BY x.k{d}, x.m{d} LIMIT {lim} \
                 RETURN x.k AS a, x.m AS b",
                label(l)
            )
        }),
        (0u8..2, -5i64..5, 1usize..4).prop_map(move |(l, v, lim)| format!(
            "MATCH (x:{} {{k: {v}}}) WITH x ORDER BY x.m LIMIT {lim} RETURN x.m AS a",
            label(l)
        )),
        (0u8..2, 1usize..4, 0usize..3).prop_map(move |(l, lim, skip)| format!(
            "MATCH (x:{}) WITH x ORDER BY x.s SKIP {skip} LIMIT {lim} RETURN x.s AS a",
            label(l)
        )),
        (0u8..2, -5i64..5).prop_map(move |(t, v)| format!(
            "MATCH (p)-[r:R]->(q) WHERE r.tag = '{}' AND r.w >= {v} RETURN r.w AS a",
            TAGS[t as usize % 2]
        )),
        (1usize..4, 0u8..2).prop_map(|(lim, desc)| {
            let d = if desc == 1 { " DESC" } else { "" };
            format!("MATCH (p)-[r:R]->(q) WITH r ORDER BY r.w{d} LIMIT {lim} RETURN r.w AS a")
        }),
        (-5i64..5, -5i64..5).prop_map(|(v, w)| format!(
            "MATCH (x:A)-[r:R]->(y) WHERE x.k = {v} AND r.w < {w} RETURN x.k AS a, r.w AS b"
        )),
    ]
}

/// Mirrored script driver (mutations hit both twins, DDL only the
/// indexed one).
#[derive(Default)]
struct Twin {
    plain: Graph,
    indexed: Graph,
    marks_plain: Vec<StatementMark>,
    marks_indexed: Vec<StatementMark>,
}

impl Twin {
    fn each(&mut self, f: impl Fn(&mut Graph)) {
        f(&mut self.plain);
        f(&mut self.indexed);
    }

    fn toggle_index(&mut self, which: u8) {
        let g = &mut self.indexed;
        match which % 8 {
            0 => {
                if !g.create_index("A", "k") {
                    g.drop_index("A", "k");
                }
            }
            1 => {
                if !g.create_index("B", "k") {
                    g.drop_index("B", "k");
                }
            }
            2 => {
                if !g.create_index("A", "s") {
                    g.drop_index("A", "s");
                }
            }
            3 => {
                if !g.create_rel_index("R", "w") {
                    g.drop_rel_index("R", "w");
                }
            }
            4 => {
                let c = cols(&["k", "m"]);
                if !g.create_composite_index("A", &c) {
                    g.drop_composite_index("A", &c);
                }
            }
            5 => {
                let c = cols(&["k", "s"]);
                if !g.create_composite_index("A", &c) {
                    g.drop_composite_index("A", &c);
                }
            }
            6 => {
                let c = cols(&["k", "m"]);
                if !g.create_composite_index("B", &c) {
                    g.drop_composite_index("B", &c);
                }
            }
            _ => {
                let c = cols(&["tag", "w"]);
                if !g.create_rel_composite_index("R", &c) {
                    g.drop_rel_composite_index("R", &c);
                }
            }
        }
    }

    fn apply(&mut self, step: &Step) {
        // both twins always hold identical extents, so picks agree
        let nodes = self.plain.all_node_ids();
        let rels = self.plain.all_rel_ids();
        match step {
            Step::CreateNode { label, k, m, s } => {
                let label = if *label == 0 { "A" } else { "B" };
                let (k, m, s) = (*k, *m, *s);
                self.each(|g| {
                    let mut entries = vec![("k", Value::Int(k))];
                    if let Some(m) = m {
                        entries.push(("m", Value::Int(m)));
                    }
                    if let Some(s) = s {
                        entries.push(("s", Value::str(STRINGS[s as usize % STRINGS.len()])));
                    }
                    g.create_node([label], props(entries)).unwrap();
                });
            }
            Step::CreateRel { a, b, w, tag } => {
                if !nodes.is_empty() {
                    let (a, b) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                    let (w, tag) = (*w, TAGS[*tag as usize % TAGS.len()]);
                    self.each(|g| {
                        g.create_rel(
                            a,
                            b,
                            "R",
                            props(vec![("w", Value::Int(w)), ("tag", Value::str(tag))]),
                        )
                        .unwrap();
                    });
                }
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    self.each(|g| g.detach_delete_node(id).unwrap());
                }
            }
            Step::SetProp { pick, which, val } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    let val = *val;
                    let (key, value) = match which % 3 {
                        0 => ("k", Value::Int(val)),
                        1 => ("m", Value::Int(val)),
                        _ => (
                            "s",
                            Value::str(STRINGS[val.unsigned_abs() as usize % STRINGS.len()]),
                        ),
                    };
                    self.each(|g| g.set_node_prop(id, key, value.clone()).unwrap());
                }
            }
            Step::RemoveProp { pick, which } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    let key = ["k", "m", "s"][*which as usize % 3];
                    self.each(|g| {
                        g.remove_node_prop(id, key).unwrap();
                    });
                }
            }
            Step::SetRelW { pick, val } => {
                if !rels.is_empty() {
                    let id = rels[pick % rels.len()];
                    let val = *val;
                    self.each(|g| g.set_rel_prop(id, "w", Value::Int(val)).unwrap());
                }
            }
            Step::ToggleIndex { which } => self.toggle_index(*which),
            Step::Begin => {
                if !self.plain.in_tx() {
                    self.each(|g| g.begin().unwrap());
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                }
            }
            Step::Mark => {
                if self.plain.in_tx() {
                    self.marks_plain.push(self.plain.mark());
                    self.marks_indexed.push(self.indexed.mark());
                }
            }
            Step::RollbackTo => {
                if self.plain.in_tx() {
                    if let (Some(mp), Some(mi)) = (self.marks_plain.pop(), self.marks_indexed.pop())
                    {
                        self.plain.rollback_to(mp).unwrap();
                        self.indexed.rollback_to(mi).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if self.plain.in_tx() {
                    self.each(|g| g.rollback().unwrap());
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                }
            }
            Step::Commit => {
                if self.plain.in_tx() {
                    self.each(|g| {
                        g.commit().unwrap();
                    });
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                }
            }
        }
    }
}

/// Sorted row multiset of a query result.
fn rows_of(g: &mut Graph, q: &str) -> Vec<Vec<Value>> {
    let out = run_query(g, q, &Params::new(), 0).unwrap_or_else(|e| panic!("{q}: {e}"));
    let mut rows = out.rows;
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.cmp_order(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

fn check_panel(t: &mut Twin, panel: &[String], step: usize) {
    for q in panel {
        let plain = rows_of(&mut t.plain, q);
        let indexed = rows_of(&mut t.indexed, q);
        assert_eq!(
            plain,
            indexed,
            "indexed/unindexed divergence after step {step} for {q}\n\
             node indexes: {:?}\ncomposite: {:?}\nrel: {:?}\nrel composite: {:?}",
            t.indexed.indexes(),
            t.indexed.composite_indexes(),
            t.indexed.rel_indexes(),
            t.indexed.rel_composite_indexes(),
        );
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PG_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases() })]

    #[test]
    fn every_plan_agrees_with_brute_force(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        panel in proptest::collection::vec(query_strategy(), 3..7),
    ) {
        let mut t = Twin::default();
        for (i, step) in steps.iter().enumerate() {
            t.apply(step);
            check_panel(&mut t, &panel, i);
        }
        if t.plain.in_tx() {
            t.apply(&Step::Commit);
        }
        check_panel(&mut t, &panel, steps.len());
    }
}
