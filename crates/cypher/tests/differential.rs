//! Differential query fuzzing: indexed and unindexed twins must never
//! disagree.
//!
//! In the certain-answer spirit of consistent query answering, every plan
//! the growing access-path space can choose — single-key equality/range/
//! prefix lookups, relationship indexes, composite (multi-key) indexes,
//! ordered top-k walks, pinned composite walks — must produce exactly the
//! row multiset the brute-force unindexed semantics produces. This
//! proptest drives a mirrored pair of graphs through random mutation
//! scripts (including `rollback` / `rollback_to` mid-script) while a
//! random **index DDL script** creates and drops single-key, relationship
//! and composite indexes on the indexed twin only, and checks a randomly
//! generated panel of `MATCH`/`WHERE`/`ORDER BY`/`LIMIT` queries after
//! **every** step: zero divergences allowed.
//!
//! A second, concurrent mode runs the same random scripts on a **live
//! writer** while reader threads pin snapshots as fast as they can and
//! evaluate the query panel against each pinned epoch. The writer records
//! which statement prefix each published epoch corresponds to; after the
//! threads join, every (epoch, panel-results) observation is checked
//! against a fresh serial replay of that prefix on an isolated graph.
//! Zero divergences allowed — this is the snapshot-isolation analogue of
//! the twin oracle.
//!
//! A third mode is the **executor twin**: the same mutation scripts and
//! query panels (extended with multi-`MATCH` pipelines that feed many
//! seed rows into a second pattern — the shape the batched executor
//! groups) run once under [`MatchMode::Batched`] and once under
//! [`MatchMode::Reference`], and the outputs must be **row-for-row
//! identical including order** — the batched stage-wise (BFS) leaf order
//! is specified to equal the reference DFS leaf order.
//!
//! A fourth mode is the **parallel executor twin**: morsel-driven
//! execution is forced on (estimated-rows threshold 0) and the same
//! panels run at worker-thread ceilings 1, 2 and 8 — every run must
//! reproduce the reference rows in reference order, so results are
//! thread-count invariant by construction.
//!
//! Top-k queries project exactly their order keys, so sorted-row-multiset
//! equality is the right oracle even at tie cut-offs (tied rows carry
//! identical key tuples).
//!
//! `PG_FUZZ_CASES` (read in CI's nightly and concurrency jobs) raises the
//! proptest case count for long soak runs; the default stays fast enough
//! for every PR.

use pg_cypher::{parse_query, run_query, run_read_only, Executor, MatchMode, Params, Target};
use pg_graph::{Graph, GraphView, StatementMark, Value};
use proptest::prelude::*;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

const STRINGS: [&str; 5] = ["al", "alpha", "bet", "beta", "gamma"];
const TAGS: [&str; 2] = ["t0", "t1"];

fn props(entries: Vec<(&str, Value)>) -> pg_graph::PropertyMap {
    entries
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

fn cols(cs: &[&str]) -> Vec<String> {
    cs.iter().map(|c| c.to_string()).collect()
}

#[derive(Debug, Clone)]
enum Step {
    CreateNode {
        label: u8,
        k: i64,
        m: Option<i64>,
        s: Option<u8>,
    },
    CreateRel {
        a: usize,
        b: usize,
        w: i64,
        tag: u8,
    },
    DetachDelete {
        pick: usize,
    },
    SetProp {
        pick: usize,
        which: u8,
        val: i64,
    },
    RemoveProp {
        pick: usize,
        which: u8,
    },
    SetRelW {
        pick: usize,
        val: i64,
    },
    /// Create-or-drop one of the eight index definitions — on the
    /// **indexed twin only** (the concurrent driver always applies it).
    ToggleIndex {
        which: u8,
    },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    // the vendored proptest shim has no `option`/`bool` modules; small
    // integer ranges stand in (0 = absent / false)
    let create_node =
        (0u8..2, -5i64..5, -6i64..5, 0u8..6).prop_map(|(label, k, m, s)| Step::CreateNode {
            label,
            k,
            m: (m > -6).then_some(m),
            s: s.checked_sub(1),
        });
    let set_prop = (0usize..16, 0u8..3, -5i64..5).prop_map(|(pick, which, val)| Step::SetProp {
        pick,
        which,
        val,
    });
    let toggle = (0u8..8).prop_map(|which| Step::ToggleIndex { which });
    prop_oneof![
        create_node.clone(),
        create_node,
        (0usize..16, 0usize..16, -5i64..5, 0u8..2).prop_map(|(a, b, w, tag)| Step::CreateRel {
            a,
            b,
            w,
            tag
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        set_prop.clone(),
        set_prop,
        (0usize..16, 0u8..3).prop_map(|(pick, which)| Step::RemoveProp { pick, which }),
        (0usize..16, -5i64..5).prop_map(|(pick, val)| Step::SetRelW { pick, val }),
        toggle.clone(),
        toggle,
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

/// One randomly generated panel query. Top-k templates return exactly
/// their order keys (see module docs).
fn query_strategy() -> impl Strategy<Value = String> {
    let label = |l: u8| if l == 0 { "A" } else { "B" };
    prop_oneof![
        (0u8..2, -5i64..5).prop_map(move |(l, v)| format!(
            "MATCH (x:{}) WHERE x.k = {v} RETURN x.k AS a, x.m AS b",
            label(l)
        )),
        (0u8..2, -5i64..5, -5i64..5).prop_map(move |(l, v, w)| format!(
            "MATCH (x:{}) WHERE x.k = {v} AND x.m >= {w} RETURN x.k AS a, x.m AS b",
            label(l)
        )),
        (0u8..2, -5i64..5, 0i64..6).prop_map(move |(l, lo, span)| format!(
            "MATCH (x:{}) WHERE x.k >= {lo} AND x.k < {} RETURN x.k AS a",
            label(l),
            lo + span
        )),
        (0u8..2, -5i64..5, 0usize..3).prop_map(move |(l, v, p)| format!(
            "MATCH (x:{}) WHERE x.k = {v} AND x.s STARTS WITH '{}' RETURN x.k AS a, x.s AS b",
            label(l),
            &STRINGS[p][..2]
        )),
        (0u8..2, 1usize..5, 0u8..2).prop_map(move |(l, lim, desc)| {
            let d = if desc == 1 { " DESC" } else { "" };
            format!(
                "MATCH (x:{}) WITH x ORDER BY x.k{d}, x.m{d} LIMIT {lim} \
                 RETURN x.k AS a, x.m AS b",
                label(l)
            )
        }),
        (0u8..2, -5i64..5, 1usize..4).prop_map(move |(l, v, lim)| format!(
            "MATCH (x:{} {{k: {v}}}) WITH x ORDER BY x.m LIMIT {lim} RETURN x.m AS a",
            label(l)
        )),
        (0u8..2, 1usize..4, 0usize..3).prop_map(move |(l, lim, skip)| format!(
            "MATCH (x:{}) WITH x ORDER BY x.s SKIP {skip} LIMIT {lim} RETURN x.s AS a",
            label(l)
        )),
        (0u8..2, -5i64..5).prop_map(move |(t, v)| format!(
            "MATCH (p)-[r:R]->(q) WHERE r.tag = '{}' AND r.w >= {v} RETURN r.w AS a",
            TAGS[t as usize % 2]
        )),
        (1usize..4, 0u8..2).prop_map(|(lim, desc)| {
            let d = if desc == 1 { " DESC" } else { "" };
            format!("MATCH (p)-[r:R]->(q) WITH r ORDER BY r.w{d} LIMIT {lim} RETURN r.w AS a")
        }),
        (-5i64..5, -5i64..5).prop_map(|(v, w)| format!(
            "MATCH (x:A)-[r:R]->(y) WHERE x.k = {v} AND r.w < {w} RETURN x.k AS a, r.w AS b"
        )),
    ]
}

/// Panel queries whose later `MATCH` clauses receive many seed rows —
/// the shape [`MatchMode::Batched`] groups into stage-wise execution,
/// including pushed operands over live variables (sharing must disable
/// itself), transition variables, `OPTIONAL MATCH` per-seed null
/// binding, and relationship-uniqueness across clauses.
fn multi_seed_query_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (-5i64..5).prop_map(|v| format!(
            "MATCH (x:A) MATCH (y:B) WHERE y.k = x.k AND y.m >= {v} \
             RETURN x.k AS a, y.m AS b"
        )),
        Just("MATCH (x:A) MATCH (x)-[r:R]->(y) RETURN x.k AS a, r.w AS b".to_string()),
        (-5i64..5).prop_map(|v| format!(
            "MATCH (x:A) MATCH (y:B) WHERE x.k < y.k AND y.k >= {v} \
             RETURN x.k AS a, y.k AS b"
        )),
        Just(
            "MATCH (p)-[r:R]->(q) MATCH (q)-[r2:R]->(z) \
             RETURN r.w AS a, r2.w AS b"
                .to_string()
        ),
        (-5i64..5)
            .prop_map(|v| format!("MATCH (x:B) MATCH (y:B {{k: {v}}}) RETURN x.k AS a, y.k AS b")),
        Just(
            "MATCH (x:A) OPTIONAL MATCH (x)-[r:R]->(y:B) \
             RETURN x.k AS a, r.w AS b"
                .to_string()
        ),
        Just(
            "MATCH (x:A) MATCH (y:B {s: 'beta'}) MATCH (z:A) \
             RETURN x.k AS a, y.k AS b, z.k AS c"
                .to_string()
        ),
    ]
}

/// Single-graph script driver. Step application is fully deterministic
/// given the step sequence (picks resolve against the current node/rel
/// extent, which evolves identically on every replay), so two drivers fed
/// the same steps always hold identical graphs — the property both the
/// twin oracle and the concurrent serial-replay oracle rely on.
#[derive(Default)]
struct Script {
    g: Graph,
    marks: Vec<StatementMark>,
}

impl Script {
    fn toggle_index(&mut self, which: u8) {
        let g = &mut self.g;
        match which % 8 {
            0 => {
                if !g.create_index("A", "k") {
                    g.drop_index("A", "k");
                }
            }
            1 => {
                if !g.create_index("B", "k") {
                    g.drop_index("B", "k");
                }
            }
            2 => {
                if !g.create_index("A", "s") {
                    g.drop_index("A", "s");
                }
            }
            3 => {
                if !g.create_rel_index("R", "w") {
                    g.drop_rel_index("R", "w");
                }
            }
            4 => {
                let c = cols(&["k", "m"]);
                if !g.create_composite_index("A", &c) {
                    g.drop_composite_index("A", &c);
                }
            }
            5 => {
                let c = cols(&["k", "s"]);
                if !g.create_composite_index("A", &c) {
                    g.drop_composite_index("A", &c);
                }
            }
            6 => {
                let c = cols(&["k", "m"]);
                if !g.create_composite_index("B", &c) {
                    g.drop_composite_index("B", &c);
                }
            }
            _ => {
                let c = cols(&["tag", "w"]);
                if !g.create_rel_composite_index("R", &c) {
                    g.drop_rel_composite_index("R", &c);
                }
            }
        }
    }

    fn apply(&mut self, step: &Step) {
        let nodes = self.g.all_node_ids();
        let rels = self.g.all_rel_ids();
        let g = &mut self.g;
        match step {
            Step::CreateNode { label, k, m, s } => {
                let label = if *label == 0 { "A" } else { "B" };
                let mut entries = vec![("k", Value::Int(*k))];
                if let Some(m) = m {
                    entries.push(("m", Value::Int(*m)));
                }
                if let Some(s) = s {
                    entries.push(("s", Value::str(STRINGS[*s as usize % STRINGS.len()])));
                }
                g.create_node([label], props(entries)).unwrap();
            }
            Step::CreateRel { a, b, w, tag } => {
                if !nodes.is_empty() {
                    let (a, b) = (nodes[a % nodes.len()], nodes[b % nodes.len()]);
                    let tag = TAGS[*tag as usize % TAGS.len()];
                    g.create_rel(
                        a,
                        b,
                        "R",
                        props(vec![("w", Value::Int(*w)), ("tag", Value::str(tag))]),
                    )
                    .unwrap();
                }
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
                }
            }
            Step::SetProp { pick, which, val } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    let (key, value) = match which % 3 {
                        0 => ("k", Value::Int(*val)),
                        1 => ("m", Value::Int(*val)),
                        _ => (
                            "s",
                            Value::str(STRINGS[val.unsigned_abs() as usize % STRINGS.len()]),
                        ),
                    };
                    g.set_node_prop(id, key, value).unwrap();
                }
            }
            Step::RemoveProp { pick, which } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    let key = ["k", "m", "s"][*which as usize % 3];
                    g.remove_node_prop(id, key).unwrap();
                }
            }
            Step::SetRelW { pick, val } => {
                if !rels.is_empty() {
                    let id = rels[pick % rels.len()];
                    g.set_rel_prop(id, "w", Value::Int(*val)).unwrap();
                }
            }
            Step::ToggleIndex { which } => self.toggle_index(*which),
            Step::Begin => {
                if !g.in_tx() {
                    g.begin().unwrap();
                    self.marks.clear();
                }
            }
            Step::Mark => {
                if g.in_tx() {
                    self.marks.push(g.mark());
                }
            }
            Step::RollbackTo => {
                if g.in_tx() {
                    if let Some(m) = self.marks.pop() {
                        g.rollback_to(m).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if g.in_tx() {
                    g.rollback().unwrap();
                    self.marks.clear();
                }
            }
            Step::Commit => {
                if g.in_tx() {
                    g.commit().unwrap();
                    self.marks.clear();
                }
            }
        }
    }
}

/// Mirrored script driver (mutations hit both twins, DDL only the
/// indexed one).
#[derive(Default)]
struct Twin {
    plain: Script,
    indexed: Script,
}

impl Twin {
    fn apply(&mut self, step: &Step) {
        if let Step::ToggleIndex { .. } = step {
            self.indexed.apply(step);
        } else {
            self.plain.apply(step);
            self.indexed.apply(step);
        }
    }
}

fn sort_rows(rows: &mut [Vec<Value>]) {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.cmp_order(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Sorted row multiset of a query result against the live writer graph.
fn rows_of(g: &mut Graph, q: &str) -> Vec<Vec<Value>> {
    let out = run_query(g, q, &Params::new(), 0).unwrap_or_else(|e| panic!("{q}: {e}"));
    let mut rows = out.rows;
    sort_rows(&mut rows);
    rows
}

/// Sorted row multiset of a query result against any [`GraphView`]
/// (snapshots included) through the read-only executor.
fn rows_of_view(view: &dyn GraphView, q: &str) -> Vec<Vec<Value>> {
    let query = parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    let out = run_read_only(view, &query, Vec::new(), &Params::new(), 0)
        .unwrap_or_else(|e| panic!("{q}: {e}"));
    let mut rows = out.rows;
    sort_rows(&mut rows);
    rows
}

/// Run `q` read-only under an explicit [`MatchMode`], preserving row
/// order (the executor twin demands order equality, not just multisets).
fn rows_under_mode(view: &dyn GraphView, q: &str, mode: MatchMode) -> Vec<Vec<Value>> {
    let query = parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    let params = Params::new();
    Executor::new(Target::Read(view), &params, 0)
        .with_match_mode(mode)
        .run(&query, Vec::new())
        .unwrap_or_else(|e| panic!("{q}: {e}"))
        .rows
}

/// Run `q` read-only through the batched executor with morselization
/// forced on (threshold 0) and a fixed worker-thread ceiling, preserving
/// row order.
fn rows_parallel(view: &dyn GraphView, q: &str, threads: usize) -> Vec<Vec<Value>> {
    let query = parse_query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
    let params = Params::new();
    Executor::new(Target::Read(view), &params, 0)
        .with_match_mode(MatchMode::Batched)
        .with_thread_limit(threads)
        .with_parallel_threshold(0.0)
        .run(&query, Vec::new())
        .unwrap_or_else(|e| panic!("{q}: {e}"))
        .rows
}

/// Parallel executor twin: morselized execution at every thread count
/// must reproduce the reference DFS rows **in order** — the same oracle
/// the serial batched executor answers to, plus thread-count invariance.
fn check_parallel_twin(g: &Graph, panel: &[String], step: usize) {
    for q in panel {
        let reference = rows_under_mode(g, q, MatchMode::Reference);
        for threads in [1usize, 2, 8] {
            let parallel = rows_parallel(g, q, threads);
            assert_eq!(
                parallel, reference,
                "morselized ({threads} threads) / reference divergence \
                 after step {step} for {q}"
            );
        }
    }
}

fn check_exec_twin(g: &Graph, panel: &[String], step: usize) {
    for q in panel {
        let batched = rows_under_mode(g, q, MatchMode::Batched);
        let reference = rows_under_mode(g, q, MatchMode::Reference);
        assert_eq!(
            batched,
            reference,
            "batched/reference executor divergence after step {step} for {q}\n\
             node indexes: {:?}\ncomposite: {:?}\nrel: {:?}\nrel composite: {:?}",
            g.indexes(),
            g.composite_indexes(),
            g.rel_indexes(),
            g.rel_composite_indexes(),
        );
    }
}

fn check_panel(t: &mut Twin, panel: &[String], step: usize) {
    for q in panel {
        let plain = rows_of(&mut t.plain.g, q);
        let indexed = rows_of(&mut t.indexed.g, q);
        assert_eq!(
            plain,
            indexed,
            "indexed/unindexed divergence after step {step} for {q}\n\
             node indexes: {:?}\ncomposite: {:?}\nrel: {:?}\nrel composite: {:?}",
            t.indexed.g.indexes(),
            t.indexed.g.composite_indexes(),
            t.indexed.g.rel_indexes(),
            t.indexed.g.rel_composite_indexes(),
        );
    }
}

/// Panel results for every epoch one reader thread managed to pin.
type Observations = HashMap<u64, Vec<Vec<Vec<Value>>>>;

/// Concurrent differential oracle: run `steps` on a live writer while
/// `readers` threads pin snapshots and evaluate `panel` against each
/// distinct epoch they observe. The writer publishes after every step
/// that ends outside a transaction and records the epoch → statement
/// prefix mapping; afterwards each observation must equal a serial replay
/// of that prefix on a fresh, isolated graph.
fn concurrent_case(steps: &[Step], panel: &[String], readers: usize) {
    let mut writer = Script::default();
    let handle = writer.g.reader_handle();

    // epoch → number of leading steps whose full effect that epoch
    // publishes. Distinct prefixes sharing an epoch are value-identical
    // (no publication bump means no visible change), so first-wins.
    let mut prefixes: HashMap<u64, usize> = HashMap::new();
    prefixes.insert(handle.epoch(), 0);

    let done = AtomicBool::new(false);
    let observations: Vec<Observations> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..readers)
            .map(|_| {
                let h = handle.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut seen = Observations::new();
                    let mut last = 0u64;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = h.snapshot();
                        let epoch = snap.epoch();
                        assert!(epoch >= last, "epochs must be monotonic");
                        last = epoch;
                        if let Entry::Vacant(e) = seen.entry(epoch) {
                            e.insert(panel.iter().map(|q| rows_of_view(&snap, q)).collect());
                        } else {
                            std::thread::yield_now();
                        }
                        if finished {
                            break;
                        }
                    }
                    seen
                })
            })
            .collect();

        for (i, step) in steps.iter().enumerate() {
            writer.apply(step);
            if !writer.g.in_tx() {
                // Publish (the snapshot request flushes any pending
                // out-of-transaction effects) and record the boundary.
                let epoch = writer.g.snapshot().epoch();
                prefixes.entry(epoch).or_insert(i + 1);
            }
            // Give readers a chance to pin intermediate epochs, not just
            // the final one.
            std::thread::yield_now();
        }
        if writer.g.in_tx() {
            writer.apply(&Step::Commit);
            prefixes
                .entry(writer.g.snapshot().epoch())
                .or_insert(steps.len());
        }
        done.store(true, Ordering::Release);

        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    // Serial-replay oracle: rebuild each observed prefix from scratch and
    // demand identical panel rows. The replay cache shares work between
    // readers that pinned the same epoch.
    let mut replayed: HashMap<usize, Vec<Vec<Vec<Value>>>> = HashMap::new();
    for seen in &observations {
        for (epoch, results) in seen {
            let prefix = *prefixes
                .get(epoch)
                .unwrap_or_else(|| panic!("reader pinned unpublished epoch {epoch}"));
            let expected = &*replayed.entry(prefix).or_insert_with(|| {
                let mut replay = Script::default();
                for step in &steps[..prefix] {
                    replay.apply(step);
                }
                if replay.g.in_tx() {
                    // Only the forced tail commit records a prefix that
                    // ends inside a transaction.
                    replay.apply(&Step::Commit);
                }
                let snap = replay.g.snapshot();
                panel.iter().map(|q| rows_of_view(&snap, q)).collect()
            });
            assert_eq!(
                results, expected,
                "snapshot at epoch {epoch} diverged from a serial replay \
                 of its {prefix}-statement prefix"
            );
        }
    }
}

fn fuzz_cases() -> u32 {
    std::env::var("PG_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: fuzz_cases() })]

    #[test]
    fn every_plan_agrees_with_brute_force(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        panel in proptest::collection::vec(query_strategy(), 3..7),
    ) {
        let mut t = Twin::default();
        for (i, step) in steps.iter().enumerate() {
            t.apply(step);
            check_panel(&mut t, &panel, i);
        }
        if t.plain.g.in_tx() {
            t.apply(&Step::Commit);
        }
        check_panel(&mut t, &panel, steps.len());
    }

    #[test]
    fn batched_executor_agrees_with_reference(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        single in proptest::collection::vec(query_strategy(), 1..4),
        multi in proptest::collection::vec(multi_seed_query_strategy(), 2..5),
    ) {
        let mut panel = single;
        panel.extend(multi);
        let mut s = Script::default();
        for (i, step) in steps.iter().enumerate() {
            s.apply(step);
            check_exec_twin(&s.g, &panel, i);
        }
        if s.g.in_tx() {
            s.apply(&Step::Commit);
        }
        check_exec_twin(&s.g, &panel, steps.len());
    }

    #[test]
    fn morselized_executor_agrees_with_reference_at_every_thread_count(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        single in proptest::collection::vec(query_strategy(), 1..4),
        multi in proptest::collection::vec(multi_seed_query_strategy(), 2..5),
    ) {
        let mut panel = single;
        panel.extend(multi);
        let mut s = Script::default();
        for (i, step) in steps.iter().enumerate() {
            s.apply(step);
            check_parallel_twin(&s.g, &panel, i);
        }
        if s.g.in_tx() {
            s.apply(&Step::Commit);
        }
        check_parallel_twin(&s.g, &panel, steps.len());
    }

    #[test]
    fn concurrent_readers_agree_with_serial_replay(
        steps in proptest::collection::vec(step_strategy(), 1..50),
        panel in proptest::collection::vec(query_strategy(), 3..6),
    ) {
        concurrent_case(&steps, &panel, 3);
    }
}
