//! Additional evaluator coverage: interactions between clauses, edge cases
//! of aggregation, OPTIONAL MATCH, MERGE, FOREACH nesting, and functions.

use pg_cypher::{run_query, CypherError, Params};
use pg_graph::{Graph, Value};

fn run(g: &mut Graph, src: &str) -> pg_cypher::QueryOutput {
    run_query(g, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

#[test]
fn multiple_group_keys() {
    let mut g = Graph::new();
    run(
        &mut g,
        "CREATE (:S {a: 1, b: 'x', v: 10}), (:S {a: 1, b: 'x', v: 20}),
                (:S {a: 1, b: 'y', v: 5}), (:S {a: 2, b: 'x', v: 1})",
    );
    let out = run(
        &mut g,
        "MATCH (s:S) RETURN s.a AS a, s.b AS b, sum(s.v) AS total ORDER BY a, b",
    );
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(1), Value::str("x"), Value::Int(30)],
            vec![Value::Int(1), Value::str("y"), Value::Int(5)],
            vec![Value::Int(2), Value::str("x"), Value::Int(1)],
        ]
    );
}

#[test]
fn min_max_avg_over_mixed() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:N {v: 1}), (:N {v: 4}), (:N)");
    let out = run(
        &mut g,
        "MATCH (n:N) RETURN min(n.v) AS lo, max(n.v) AS hi, avg(n.v) AS mean, count(n.v) AS nonnull",
    );
    assert_eq!(
        out.rows,
        vec![vec![
            Value::Int(1),
            Value::Int(4),
            Value::Float(2.5),
            Value::Int(2)
        ]]
    );
}

#[test]
fn optional_match_chain_preserves_rows() {
    let mut g = Graph::new();
    run(
        &mut g,
        "CREATE (:A {i: 1})-[:R]->(:B {i: 1}) CREATE (:A {i: 2})",
    );
    let out = run(
        &mut g,
        "MATCH (a:A) OPTIONAL MATCH (a)-[:R]->(b:B) \
         RETURN a.i AS a, b.i AS b ORDER BY a",
    );
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Null],
        ]
    );
}

#[test]
fn merge_reuses_bound_endpoints() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:U {id: 1}), (:U {id: 2})");
    // merging the same relationship twice in separate statements
    for _ in 0..2 {
        run(
            &mut g,
            "MATCH (a:U {id: 1}), (b:U {id: 2}) MERGE (a)-[:FOLLOWS]->(b)",
        );
    }
    assert_eq!(g.rel_count(), 1);
    // opposite direction is a different pattern → new rel
    run(
        &mut g,
        "MATCH (a:U {id: 1}), (b:U {id: 2}) MERGE (b)-[:FOLLOWS]->(a)",
    );
    assert_eq!(g.rel_count(), 2);
}

#[test]
fn nested_foreach() {
    let mut g = Graph::new();
    run(
        &mut g,
        "FOREACH (i IN range(0, 2) | FOREACH (j IN range(0, 2) | CREATE (:Cell {i: i, j: j})))",
    );
    let out = run(&mut g, "MATCH (c:Cell) RETURN count(*) AS n");
    assert_eq!(out.single(), Some(&Value::Int(9)));
}

#[test]
fn foreach_sees_outer_bindings() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:Hub {name: 'h'})");
    run(
        &mut g,
        "MATCH (h:Hub) FOREACH (i IN range(1, 3) | CREATE (h)-[:SPOKE]->(:Leaf {i: i}))",
    );
    let out = run(
        &mut g,
        "MATCH (:Hub)-[:SPOKE]->(l:Leaf) RETURN count(l) AS n",
    );
    assert_eq!(out.single(), Some(&Value::Int(3)));
}

#[test]
fn exists_with_where_inside() {
    let mut g = Graph::new();
    run(
        &mut g,
        "CREATE (:P {name: 'a'})-[:OWNS]->(:Car {year: 2020})
         CREATE (:P {name: 'b'})-[:OWNS]->(:Car {year: 1999})",
    );
    let out = run(
        &mut g,
        "MATCH (p:P) WHERE EXISTS { MATCH (p)-[:OWNS]->(c:Car) WHERE c.year > 2010 } \
         RETURN p.name AS n",
    );
    assert_eq!(out.rows, vec![vec![Value::str("a")]]);
}

#[test]
fn var_length_with_rel_type_filter() {
    let mut g = Graph::new();
    run(
        &mut g,
        "CREATE (a:V {i: 0})-[:GOOD]->(b:V {i: 1})-[:BAD]->(c:V {i: 2}) \
         WITH 1 AS _ MATCH (b:V {i: 1}) CREATE (b)-[:GOOD]->(:V {i: 3})",
    );
    let out = run(
        &mut g,
        "MATCH (a:V {i: 0})-[:GOOD*1..3]->(x) RETURN collect(x.i) AS xs",
    );
    // only GOOD edges traversed: 1 then 3
    match out.single() {
        Some(Value::List(xs)) => {
            let mut got: Vec<i64> = xs.iter().map(|v| v.as_i64().unwrap()).collect();
            got.sort();
            assert_eq!(got, vec![1, 3]);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unwind_nested_lists_and_maps() {
    let mut g = Graph::new();
    let out = run(
        &mut g,
        "UNWIND [{k: 'a', v: 1}, {k: 'b', v: 2}] AS row RETURN row.k AS k, row.v + 10 AS v",
    );
    assert_eq!(
        out.rows,
        vec![
            vec![Value::str("a"), Value::Int(11)],
            vec![Value::str("b"), Value::Int(12)],
        ]
    );
}

#[test]
fn with_distinct_then_aggregate() {
    let mut g = Graph::new();
    let out = run(
        &mut g,
        "UNWIND [1, 1, 2, 2, 3] AS x WITH DISTINCT x RETURN sum(x) AS s",
    );
    assert_eq!(out.single(), Some(&Value::Int(6)));
}

#[test]
fn delete_inside_foreach() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:T {i: 1}), (:T {i: 2}), (:T {i: 3})");
    run(
        &mut g,
        "MATCH (t:T) WITH collect(t) AS ts FOREACH (x IN ts | DETACH DELETE x)",
    );
    assert_eq!(g.node_count(), 0);
}

#[test]
fn set_case_expression() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:G {score: 85}), (:G {score: 40})");
    run(
        &mut g,
        "MATCH (x:G) SET x.grade = CASE WHEN x.score >= 60 THEN 'pass' ELSE 'fail' END",
    );
    let out = run(&mut g, "MATCH (x:G) RETURN x.grade AS g ORDER BY g");
    assert_eq!(
        out.rows,
        vec![vec![Value::str("fail")], vec![Value::str("pass")]]
    );
}

#[test]
fn parameters_in_patterns_and_props() {
    let mut g = Graph::new();
    let mut params = Params::new();
    params.insert("nm".into(), Value::str("Ada"));
    params.insert("age".into(), Value::Int(36));
    run_query(&mut g, "CREATE (:P {name: $nm, age: $age})", &params, 0).unwrap();
    let out = run_query(
        &mut g,
        "MATCH (p:P {name: $nm}) RETURN p.age AS a",
        &params,
        0,
    )
    .unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(36)]]);
}

#[test]
fn coalesce_head_collect_pipeline() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:I {v: 3}), (:I {v: 1}), (:I)");
    let out = run(
        &mut g,
        "MATCH (i:I) WITH coalesce(i.v, 0) AS v ORDER BY v DESC \
         RETURN head(collect(v)) AS top",
    );
    assert_eq!(out.single(), Some(&Value::Int(3)));
}

#[test]
fn abort_does_not_fire_without_rows() {
    let mut g = Graph::new();
    run(&mut g, "MATCH (n:Missing) ABORT 'never'");
    let err = run_query(
        &mut g,
        "CREATE (:X) WITH 1 AS one ABORT 'now'",
        &Params::new(),
        0,
    )
    .unwrap_err();
    assert_eq!(err, CypherError::Aborted("now".into()));
}

#[test]
fn startnode_endnode_and_type() {
    let mut g = Graph::new();
    run(&mut g, "CREATE (:A {n: 'a'})-[:LIKES]->(:B {n: 'b'})");
    let out = run(
        &mut g,
        "MATCH ()-[r]->() RETURN type(r) AS t, startNode(r).n AS s, endNode(r).n AS e",
    );
    assert_eq!(
        out.rows,
        vec![vec![Value::str("LIKES"), Value::str("a"), Value::str("b")]]
    );
}

#[test]
fn detach_delete_is_idempotent_across_rows() {
    // the same node matched by several rows deletes cleanly once
    let mut g = Graph::new();
    run(&mut g, "CREATE (h:H)-[:R]->(:S), (h2:H)-[:R]->(:S)");
    run(&mut g, "MATCH (h:H)-[:R]->(s:S) DETACH DELETE s, s");
    let out = run(&mut g, "MATCH (s:S) RETURN count(*) AS n");
    assert_eq!(out.single(), Some(&Value::Int(0)));
}

#[test]
fn skip_limit_expressions() {
    let mut g = Graph::new();
    let out = run(
        &mut g,
        "UNWIND range(1, 10) AS x RETURN x SKIP 2 + 1 LIMIT 2 * 2",
    );
    assert_eq!(out.rows.len(), 4);
    assert_eq!(out.rows[0], vec![Value::Int(4)]);
}
