//! Composite-aware `MERGE` key lookups.
//!
//! A `MERGE (n:L {a: …, b: …})` whose merge keys cover a composite
//! index's columns must locate the existing node through one composite
//! probe — not a label scan — and the probe counters make that
//! observable: the fixture's only index is the composite, so any
//! materializing probe is the composite probe.

use pg_cypher::{run_query, Params, QueryOutput};
use pg_graph::{Graph, GraphView, Value};

fn props(entries: &[(&str, Value)]) -> pg_graph::PropertyMap {
    entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn run(g: &mut Graph, src: &str) -> QueryOutput {
    run_query(g, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// 64 User nodes keyed by `(org, uid)`, composite-indexed on exactly
/// those columns. No single-key indexes exist.
fn fixture() -> Graph {
    let mut g = Graph::new();
    for org in ["acme", "globex", "initech", "umbrella"] {
        for uid in 0..16i64 {
            g.create_node(
                ["User"],
                props(&[("org", Value::str(org)), ("uid", Value::Int(uid))]),
            )
            .unwrap();
        }
    }
    g.create_composite_index("User", &["org".to_string(), "uid".to_string()]);
    g
}

#[test]
fn merge_match_probes_composite_index() {
    let mut g = fixture();
    g.reset_index_probes();
    let out = run(
        &mut g,
        "MERGE (u:User {org: 'globex', uid: 7}) RETURN u.org AS o, u.uid AS i",
    );
    assert_eq!(
        out.rows,
        vec![vec![Value::str("globex"), Value::Int(7)]],
        "MERGE must match the existing node"
    );
    assert_eq!(
        g.all_node_ids().len(),
        64,
        "matched MERGE must not create a node"
    );
    let probes = g.index_probes();
    assert!(
        probes.composite >= 1,
        "MERGE must serve its key lookup from the composite index, \
         got probes {probes:?}"
    );
}

#[test]
fn merge_create_still_probes_before_creating() {
    let mut g = fixture();
    g.reset_index_probes();
    run(&mut g, "MERGE (u:User {org: 'hooli', uid: 1})");
    assert_eq!(g.all_node_ids().len(), 65, "unmatched MERGE creates");
    let probes = g.index_probes();
    assert!(
        probes.composite + probes.counting >= 1,
        "the existence check must consult the composite index, \
         got probes {probes:?}"
    );
    // Idempotence: merging the same keys again matches the new node.
    run(&mut g, "MERGE (u:User {org: 'hooli', uid: 1})");
    assert_eq!(g.all_node_ids().len(), 65);
}

#[test]
fn merge_partial_keys_still_correct() {
    // Only a prefix of the composite columns: the index may or may not
    // serve it (sub-width probes are refused when exclusions exist), but
    // MERGE semantics must hold either way.
    let mut g = fixture();
    let out = run(
        &mut g,
        "MERGE (u:User {org: 'acme', uid: 0}) ON MATCH SET u.seen = true \
         RETURN u.seen AS s",
    );
    assert_eq!(out.rows, vec![vec![Value::Bool(true)]]);
    assert_eq!(g.all_node_ids().len(), 64);
}

/// Per-seed MERGE under a pipeline: each incoming row re-evaluates the
/// key expressions, and each lookup goes through the index.
#[test]
fn merge_under_pipeline_probes_per_seed() {
    let mut g = fixture();
    g.reset_index_probes();
    run(
        &mut g,
        "UNWIND [0, 1, 2, 3] AS i MERGE (u:User {org: 'acme', uid: i})",
    );
    assert_eq!(g.all_node_ids().len(), 64, "all four keys already exist");
    let probes = g.index_probes();
    assert!(
        probes.composite >= 4,
        "each seed row's MERGE lookup must probe, got probes {probes:?}"
    );
}
