//! Index-served `ORDER BY … LIMIT` (top-k) execution tests.
//!
//! Every query is run twice — against an indexed graph (fusion eligible)
//! and an identical unindexed graph (the sort path) — and both must agree.
//! Only the *multiset of order keys* is required to match at tie
//! boundaries; these fixtures use unique keys so full row equality holds.

use pg_cypher::{run_query, Params, QueryOutput};
use pg_graph::{Graph, GraphView, NodeId, PropertyMap, Value};

fn props(entries: &[(&str, Value)]) -> PropertyMap {
    entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn run(graph: &mut Graph, src: &str) -> QueryOutput {
    run_query(graph, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

/// `n` Item nodes with unique `k`; indexed twin has `(Item, k)` indexed.
fn twin_graphs(n: i64) -> (Graph, Graph) {
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..n {
            g.create_node(["Item"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
    }
    indexed.create_index("Item", "k");
    (plain, indexed)
}

fn assert_same(plain: &mut Graph, indexed: &mut Graph, q: &str) {
    let a = run(plain, q);
    let b = run(indexed, q);
    assert_eq!(a.columns, b.columns, "{q}");
    assert_eq!(a.rows, b.rows, "{q}");
}

#[test]
fn fused_topk_matches_sort_path() {
    let (mut plain, mut indexed) = twin_graphs(50);
    for q in [
        "MATCH (i:Item) WITH i ORDER BY i.k LIMIT 1 RETURN i.k AS k",
        "MATCH (i:Item) WITH i ORDER BY i.k DESC LIMIT 3 RETURN i.k AS k",
        "MATCH (i:Item) WITH i ORDER BY i.k SKIP 2 LIMIT 3 RETURN i.k AS k",
        "MATCH (i:Item) RETURN i.k AS k ORDER BY k LIMIT 4",
        "MATCH (i:Item) RETURN i.k AS k ORDER BY k DESC LIMIT 4",
        "MATCH (i:Item) WHERE i.k >= 10 WITH i ORDER BY i.k LIMIT 2 RETURN i.k AS k",
        // LIMIT 0 and LIMIT beyond the extent
        "MATCH (i:Item) WITH i ORDER BY i.k LIMIT 0 RETURN i.k AS k",
        "MATCH (i:Item) WITH i ORDER BY i.k SKIP 48 LIMIT 10 RETURN i.k AS k",
    ] {
        assert_same(&mut plain, &mut indexed, q);
    }
}

#[test]
fn fused_topk_walks_index_not_extent() {
    // Observable via probe counters: the indexed run serves the top-1
    // through an ordered walk and must not pay a full materializing scan.
    let (_, mut indexed) = twin_graphs(200);
    indexed.reset_index_probes();
    let out = run(
        &mut indexed,
        "MATCH (i:Item) WITH i ORDER BY i.k LIMIT 1 RETURN i.k AS k",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(0)]]);
    let probes = indexed.index_probes();
    assert!(probes.ordered >= 1, "expected an ordered index walk");
}

#[test]
fn missing_props_sort_last_ascending() {
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..10 {
            g.create_node(["Item"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        // three items without `k` — NULL keys, ordering last
        for _ in 0..3 {
            g.create_node(["Item"], PropertyMap::new()).unwrap();
        }
    }
    indexed.create_index("Item", "k");
    // ascending with a LIMIT reaching into the NULL tail
    assert_same(
        &mut plain,
        &mut indexed,
        "MATCH (i:Item) WITH i ORDER BY i.k SKIP 8 LIMIT 4 RETURN i.k AS k",
    );
    // descending: NULL keys would lead — fusion declines, results agree
    assert_same(
        &mut plain,
        &mut indexed,
        "MATCH (i:Item) WITH i ORDER BY i.k DESC LIMIT 2 RETURN i.k AS k",
    );
}

#[test]
fn rel_route_serves_paper_6_2_3_shape() {
    // MATCH (h)-[ct:ConnectedTo]-(hc:Hospital) WITH ct, hc
    // ORDER BY ct.distance LIMIT 1 — the §6.2.3 relocation shape.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        let h = g
            .create_node(["Hospital"], props(&[("name", Value::str("Sacco"))]))
            .unwrap();
        for i in 0..40 {
            let other = g
                .create_node(
                    ["Hospital"],
                    props(&[("name", Value::str(format!("H{i}")))]),
                )
                .unwrap();
            g.create_rel(
                h,
                other,
                "ConnectedTo",
                props(&[("distance", Value::Int(100 - i))]),
            )
            .unwrap();
        }
    }
    indexed.create_rel_index("ConnectedTo", "distance");
    let q = "MATCH (h:Hospital {name: 'Sacco'})-[ct:ConnectedTo]-(hc:Hospital) \
             WITH ct, hc ORDER BY ct.distance LIMIT 1 \
             RETURN hc.name AS name, ct.distance AS d";
    let a = run(&mut plain, q);
    let b = run(&mut indexed, q);
    assert_eq!(a.rows, b.rows);
    assert_eq!(b.rows, vec![vec![Value::str("H39"), Value::Int(61)]]);
}

#[test]
fn fusion_declines_safely() {
    let (mut plain, mut indexed) = twin_graphs(30);
    // aggregates, DISTINCT, post-WITH WHERE, computed keys, multi-key
    // ORDER BY: fusion declines, results still agree with the sort path
    for q in [
        "MATCH (i:Item) WITH i.k AS k ORDER BY k LIMIT 3 RETURN count(*) AS n",
        "MATCH (i:Item) RETURN count(i) AS n ORDER BY n LIMIT 1",
        "MATCH (i:Item) WITH DISTINCT i.k AS k ORDER BY k LIMIT 2 RETURN k",
        "MATCH (i:Item) WITH i ORDER BY i.k LIMIT 2 WHERE i.k > 0 RETURN i.k AS k",
        "MATCH (i:Item) WITH i ORDER BY i.k + 0 LIMIT 2 RETURN i.k AS k",
        "MATCH (i:Item) WITH i ORDER BY i.k, i.k DESC LIMIT 2 RETURN i.k AS k",
    ] {
        assert_same(&mut plain, &mut indexed, q);
    }
}

#[test]
fn rebound_alias_declines_fusion() {
    // `WITH y AS x ORDER BY x.k`: the projected `x` is the pattern's `y`,
    // so walking the pattern-x index would truncate by the wrong
    // variable's order. Fusion must decline; results agree with the sort
    // path (regression: the indexed twin used to return 'big').
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        let a0 = g
            .create_node(["A"], props(&[("k", Value::Int(0))]))
            .unwrap();
        let b_big = g
            .create_node(
                ["B"],
                props(&[("k", Value::Int(100)), ("name", Value::str("big"))]),
            )
            .unwrap();
        g.create_rel(a0, b_big, "R", PropertyMap::new()).unwrap();
        let a9 = g
            .create_node(["A"], props(&[("k", Value::Int(9))]))
            .unwrap();
        let b_small = g
            .create_node(
                ["B"],
                props(&[("k", Value::Int(1)), ("name", Value::str("small"))]),
            )
            .unwrap();
        g.create_rel(a9, b_small, "R", PropertyMap::new()).unwrap();
    }
    indexed.create_index("A", "k");
    let q = "MATCH (x:A)-[:R]->(y:B) WITH y AS x ORDER BY x.k LIMIT 1 RETURN x.name AS name";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::str("small")]]);
    // identity projection alongside other items still fuses correctly
    let q = "MATCH (x:A)-[:R]->(y:B) WITH x, y ORDER BY x.k LIMIT 1 RETURN y.name AS name";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::str("big")]]);
}

#[test]
fn prebound_var_declines_fusion() {
    // `i` arrives bound from an earlier clause: the MATCH is a
    // re-validation, not a scan — fusion must not rebind it.
    let (mut plain, mut indexed) = twin_graphs(10);
    let q = "MATCH (i:Item {k: 7}) WITH i MATCH (i) WITH i ORDER BY i.k LIMIT 1 \
             RETURN i.k AS k";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Int(7)]]);
}

#[test]
fn lossy_values_decline_ordered_walk() {
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..10 {
            g.create_node(["Item"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        g.create_node(["Item"], props(&[("k", Value::Int((1 << 53) + 1))]))
            .unwrap();
    }
    indexed.create_index("Item", "k");
    // the lossy numeric is absent from the index; the ordered walk refuses
    // and the sort path keeps the row in its right place
    let q = "MATCH (i:Item) WITH i ORDER BY i.k DESC LIMIT 1 RETURN i.k AS k";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Int((1 << 53) + 1)]]);
}

#[test]
fn heap_path_equals_full_sort_with_ties() {
    // No index at all: the bounded heap must reproduce the stable sort's
    // exact output, including tie order (input index tiebreaker).
    let mut g = Graph::new();
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..30 {
        ids.push(
            g.create_node(
                ["T"],
                props(&[("k", Value::Int(i % 3)), ("i", Value::Int(i))]),
            )
            .unwrap(),
        );
    }
    let limited = run(
        &mut g,
        "MATCH (t:T) WITH t ORDER BY t.k LIMIT 7 RETURN t.i AS i",
    );
    let full = run(&mut g, "MATCH (t:T) WITH t ORDER BY t.k RETURN t.i AS i");
    assert_eq!(limited.rows, full.rows[..7].to_vec());
    assert!(g.node_exists(ids[0]));
}

#[test]
fn mixed_type_keys_order_like_cmp_order() {
    // values across type families: the ordered walk must agree with
    // Value::cmp_order (strings < booleans < numbers < dates)
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        g.create_node(["M"], props(&[("v", Value::Int(1))]))
            .unwrap();
        g.create_node(["M"], props(&[("v", Value::str("s"))]))
            .unwrap();
        g.create_node(["M"], props(&[("v", Value::Bool(false))]))
            .unwrap();
        g.create_node(["M"], props(&[("v", Value::Float(0.5))]))
            .unwrap();
        g.create_node(["M"], props(&[("v", Value::Date(3))]))
            .unwrap();
    }
    indexed.create_index("M", "v");
    for q in [
        "MATCH (m:M) WITH m ORDER BY m.v LIMIT 3 RETURN m.v AS v",
        "MATCH (m:M) WITH m ORDER BY m.v DESC LIMIT 3 RETURN m.v AS v",
    ] {
        assert_same(&mut plain, &mut indexed, q);
    }
}
