//! Property-based tests for the parser/unparser pair: ASTs generated
//! structurally must survive unparse → parse unchanged, and evaluation of
//! generated arithmetic expressions must agree with a reference
//! interpreter.

use pg_cypher::ast::{BinOp, Expr};
use pg_cypher::{parse_expression, parse_query, unparse_expr, unparse_query};
use pg_graph::Value;
use proptest::prelude::*;

/// Generate small arithmetic/boolean expressions (no graph access).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0i64..50).prop_map(|i| Expr::Literal(Value::Int(i))), // `-1` parses as Neg(1): keep literals non-negative
        prop_oneof![Just(true), Just(false)].prop_map(|b| Expr::Literal(Value::Bool(b))),
        "[a-z]{1,6}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Null)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Eq),
                    Just(BinOp::Neq),
                    Just(BinOp::Lt),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::ListLit),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::Case {
                operand: None,
                whens: vec![(Expr::Binary(BinOp::Eq, Box::new(c.clone()), Box::new(c)), t,)],
                else_: Some(Box::new(e)),
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expr_unparse_reparse_round_trips(e in expr_strategy()) {
        let text = unparse_expr(&e);
        let back = parse_expression(&text)
            .map_err(|err| TestCaseError::fail(format!("`{text}`: {err}")))?;
        prop_assert_eq!(back, e, "text was `{}`", text);
    }

    #[test]
    fn query_round_trips_with_generated_filters(e in expr_strategy(), label in "[A-Z][a-z]{1,6}") {
        let src = format!(
            "MATCH (n:{label}) WHERE {} RETURN n.x AS x ORDER BY x LIMIT 3",
            unparse_expr(&e)
        );
        let q1 = parse_query(&src)
            .map_err(|err| TestCaseError::fail(format!("`{src}`: {err}")))?;
        let text = unparse_query(&q1);
        let q2 = parse_query(&text)
            .map_err(|err| TestCaseError::fail(format!("re-parse `{text}`: {err}")))?;
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn constant_arithmetic_matches_reference(a in -100i64..100, b in -100i64..100, c in 1i64..50) {
        // (a + b) * c - a  computed by the engine vs Rust
        let src = format!("RETURN ({a} + {b}) * {c} - {a} AS v");
        let mut g = pg_graph::Graph::new();
        let out = pg_cypher::run_query(&mut g, &src, &pg_cypher::Params::new(), 0).unwrap();
        let expect = (a + b) * c - a;
        prop_assert_eq!(out.single(), Some(&Value::Int(expect)));
    }

    #[test]
    fn comparison_chains_respect_total_order(xs in prop::collection::vec(-50i64..50, 1..8)) {
        // ORDER BY over UNWIND must sort ascending
        let list = xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
        let src = format!("UNWIND [{list}] AS x RETURN x ORDER BY x");
        let mut g = pg_graph::Graph::new();
        let out = pg_cypher::run_query(&mut g, &src, &pg_cypher::Params::new(), 0).unwrap();
        let got: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want = xs.clone();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn distinct_collect_matches_set_semantics(xs in prop::collection::vec(0i64..10, 0..20)) {
        let list = xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
        let src = format!("UNWIND [{list}] AS x RETURN count(DISTINCT x) AS n");
        let mut g = pg_graph::Graph::new();
        let out = pg_cypher::run_query(&mut g, &src, &pg_cypher::Params::new(), 0).unwrap();
        let distinct: std::collections::BTreeSet<i64> = xs.iter().copied().collect();
        // count(DISTINCT …) over an empty UNWIND yields 0
        prop_assert_eq!(
            out.single().and_then(|v| v.as_i64()).unwrap_or(0) as usize,
            distinct.len()
        );
    }
}
