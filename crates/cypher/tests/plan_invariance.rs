//! Plan invariance under random graphs, mutations, and undo steps.
//!
//! The planner v3 machinery — cardinality statistics, count-only probes,
//! bounded top-k selection, and index-served `ORDER BY … LIMIT` — is pure
//! access-path choice: for any query, a graph **with** indexes must
//! produce the same multiset of rows as the identical graph **without**
//! them (the naive scan/sort path). This property test drives random
//! mutation scripts — including `rollback` and `rollback_to` mid-script —
//! over an indexed/unindexed twin pair and checks, after every undo step:
//!
//! * every query in a fixed panel (equality, range, prefix, `ORDER BY …
//!   LIMIT` ascending/descending, with and without `SKIP`) returns the
//!   same sorted row multiset on both twins (for top-k queries the order
//!   *keys* are compared — ties at the cut may legitimately pick
//!   different tied rows — plus subset containment in the full result);
//! * the statistics the indexed twin plans from stay consistent with
//!   brute-force recounts: `node_prop_stats` totals/distincts, exact
//!   equality counts, and histogram range estimates within the documented
//!   error bound.

use pg_cypher::{run_query, Params};
use pg_graph::{Graph, GraphView, PropertyMap, StatementMark, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Step {
    CreateNode {
        label: u8,
        val: i64,
    },
    CreateRel {
        a: usize,
        b: usize,
        w: i64,
    },
    DetachDelete {
        pick: usize,
    },
    SetProp {
        pick: usize,
        val: i64,
    },
    SetProp2 {
        pick: usize,
        val: i64,
    },
    RemoveProp {
        pick: usize,
    },
    /// Create-or-drop a composite index mid-script (indexed twin only):
    /// the definition is not transactional, but its entries must stay
    /// exact through every later mutation *and undo* step.
    ToggleComposite {
        which: u8,
    },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..2, -6i64..6).prop_map(|(label, val)| Step::CreateNode { label, val }),
        (0u8..2, -6i64..6).prop_map(|(label, val)| Step::CreateNode { label, val }),
        (0usize..16, 0usize..16, -6i64..6).prop_map(|(a, b, w)| Step::CreateRel { a, b, w }),
        (0usize..16, 0usize..16, -6i64..6).prop_map(|(a, b, w)| Step::CreateRel { a, b, w }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, -6i64..6).prop_map(|(pick, val)| Step::SetProp { pick, val }),
        (0usize..16, -6i64..6).prop_map(|(pick, val)| Step::SetProp { pick, val }),
        (0usize..16, -6i64..6).prop_map(|(pick, val)| Step::SetProp2 { pick, val }),
        (0usize..16).prop_map(|pick| Step::RemoveProp { pick }),
        (0u8..2).prop_map(|which| Step::ToggleComposite { which }),
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

fn composite_cols() -> Vec<String> {
    vec!["k".to_string(), "m".to_string()]
}

/// Mirrored script driver: applies each step to both twins identically.
#[derive(Default)]
struct Twin {
    plain: Graph,
    indexed: Graph,
    marks_plain: Vec<StatementMark>,
    marks_indexed: Vec<StatementMark>,
}

impl Twin {
    fn new() -> Twin {
        let mut t = Twin::default();
        t.indexed.create_index("A", "k");
        t.indexed.create_index("B", "k");
        t.indexed.create_rel_index("R", "w");
        t
    }

    fn each(&mut self, f: impl Fn(&mut Graph)) {
        f(&mut self.plain);
        f(&mut self.indexed);
    }

    fn apply(&mut self, step: &Step) -> bool {
        // both twins always hold identical extents, so picks agree
        let nodes = self.plain.all_node_ids();
        let mut was_undo = false;
        match step {
            Step::CreateNode { label, val } => {
                let label = if *label == 0 { "A" } else { "B" };
                let v = *val;
                self.each(|g| {
                    let props: PropertyMap =
                        [("k".to_string(), Value::Int(v))].into_iter().collect();
                    g.create_node([label], props).unwrap();
                });
            }
            Step::CreateRel { a, b, w } => {
                if !nodes.is_empty() {
                    let (a, b, w) = (nodes[a % nodes.len()], nodes[b % nodes.len()], *w);
                    self.each(|g| {
                        let props: PropertyMap =
                            [("w".to_string(), Value::Int(w))].into_iter().collect();
                        g.create_rel(a, b, "R", props).unwrap();
                    });
                }
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    self.each(|g| g.detach_delete_node(id).unwrap());
                }
            }
            Step::SetProp { pick, val } => {
                if !nodes.is_empty() {
                    let (id, v) = (nodes[pick % nodes.len()], *val);
                    self.each(|g| g.set_node_prop(id, "k", Value::Int(v)).unwrap());
                }
            }
            Step::SetProp2 { pick, val } => {
                if !nodes.is_empty() {
                    let (id, v) = (nodes[pick % nodes.len()], *val);
                    self.each(|g| g.set_node_prop(id, "m", Value::Int(v)).unwrap());
                }
            }
            Step::ToggleComposite { which } => {
                let label = if *which == 0 { "A" } else { "B" };
                let c = composite_cols();
                if !self.indexed.create_composite_index(label, &c) {
                    self.indexed.drop_composite_index(label, &c);
                }
            }
            Step::RemoveProp { pick } => {
                if !nodes.is_empty() {
                    let id = nodes[pick % nodes.len()];
                    self.each(|g| {
                        g.remove_node_prop(id, "k").unwrap();
                    });
                }
            }
            Step::Begin => {
                if !self.plain.in_tx() {
                    self.each(|g| g.begin().unwrap());
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                }
            }
            Step::Mark => {
                if self.plain.in_tx() {
                    self.marks_plain.push(self.plain.mark());
                    self.marks_indexed.push(self.indexed.mark());
                }
            }
            Step::RollbackTo => {
                if self.plain.in_tx() {
                    if let (Some(mp), Some(mi)) = (self.marks_plain.pop(), self.marks_indexed.pop())
                    {
                        self.plain.rollback_to(mp).unwrap();
                        self.indexed.rollback_to(mi).unwrap();
                        was_undo = true;
                    }
                }
            }
            Step::Rollback => {
                if self.plain.in_tx() {
                    self.each(|g| g.rollback().unwrap());
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                    was_undo = true;
                }
            }
            Step::Commit => {
                if self.plain.in_tx() {
                    self.each(|g| {
                        g.commit().unwrap();
                    });
                    self.marks_plain.clear();
                    self.marks_indexed.clear();
                }
            }
        }
        was_undo
    }
}

/// Sorted row multiset of a query result.
fn rows_of(g: &mut Graph, q: &str) -> Vec<Vec<Value>> {
    let out = run_query(g, q, &Params::new(), 0).unwrap_or_else(|e| panic!("{q}: {e}"));
    let mut rows = out.rows;
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.cmp_order(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// Queries whose full row multisets must agree exactly.
const EXACT_PANEL: &[&str] = &[
    "MATCH (x:A) WHERE x.k = 2 RETURN x.k AS k",
    "MATCH (x:A) WHERE x.k >= 0 AND x.k < 4 RETURN x.k AS k",
    "MATCH (x:B) WHERE x.k > -3 RETURN x.k AS k",
    "MATCH (a)-[r:R]->(b) WHERE r.w >= 1 RETURN r.w AS w",
    "MATCH (a:A)-[r:R]-(b) WHERE r.w < 2 RETURN a.k AS k, r.w AS w",
    // conjunctions a composite (k, m) index can serve end-to-end
    "MATCH (x:A) WHERE x.k = 1 AND x.m = -1 RETURN x.k AS k, x.m AS m",
    "MATCH (x:B) WHERE x.k = 0 AND x.m >= 0 RETURN x.k AS k, x.m AS m",
];

/// Top-k queries: the order-key multiset must agree (ties at the cut may
/// resolve to different rows), and each must be contained in the
/// unlimited result.
const TOPK_PANEL: &[(&str, &str)] = &[
    (
        "MATCH (x:A) WITH x ORDER BY x.k LIMIT 3 RETURN x.k AS k",
        "MATCH (x:A) RETURN x.k AS k",
    ),
    (
        "MATCH (x:A) WITH x ORDER BY x.k DESC LIMIT 2 RETURN x.k AS k",
        "MATCH (x:A) RETURN x.k AS k",
    ),
    (
        "MATCH (x:B) WITH x ORDER BY x.k SKIP 1 LIMIT 2 RETURN x.k AS k",
        "MATCH (x:B) RETURN x.k AS k",
    ),
    (
        "MATCH (a)-[r:R]->(b) WITH r ORDER BY r.w LIMIT 2 RETURN r.w AS w",
        "MATCH (a)-[r:R]->(b) RETURN r.w AS w",
    ),
    // multi-key orders a composite (k, m) index can serve as one walk
    (
        "MATCH (x:A) WITH x ORDER BY x.k, x.m LIMIT 3 RETURN x.k AS k, x.m AS m",
        "MATCH (x:A) RETURN x.k AS k, x.m AS m",
    ),
    (
        "MATCH (x:B) WITH x ORDER BY x.k DESC, x.m DESC LIMIT 2 RETURN x.k AS k, x.m AS m",
        "MATCH (x:B) RETURN x.k AS k, x.m AS m",
    ),
];

fn check_queries(t: &mut Twin) {
    for q in EXACT_PANEL {
        let plain = rows_of(&mut t.plain, q);
        let indexed = rows_of(&mut t.indexed, q);
        assert_eq!(plain, indexed, "row multiset diverged for {q}");
    }
    for (q, full_q) in TOPK_PANEL {
        let plain = rows_of(&mut t.plain, q);
        let indexed = rows_of(&mut t.indexed, q);
        assert_eq!(plain, indexed, "top-k key multiset diverged for {q}");
        // containment in the unlimited result (checked on the indexed twin)
        let mut full = rows_of(&mut t.indexed, full_q);
        for row in &indexed {
            let pos = full.iter().position(|r| r == row);
            assert!(pos.is_some(), "top-k row {row:?} not in full result of {q}");
            full.remove(pos.unwrap());
        }
    }
}

/// Brute-force recount of the indexed twin's statistics.
fn check_stats(g: &Graph) {
    for (label, key) in [("A", "k"), ("B", "k")] {
        let Some((total, distinct)) = g.node_prop_stats(label, key) else {
            continue;
        };
        let mut buckets: BTreeMap<i64, usize> = BTreeMap::new();
        let mut brute_total = 0usize;
        for id in g.nodes_with_label(label) {
            if let Some(Value::Int(v)) = g.node_prop(id, key) {
                *buckets.entry(v).or_insert(0) += 1;
                brute_total += 1;
            }
        }
        assert_eq!(total, brute_total, "stats total diverged for {label}.{key}");
        assert_eq!(
            distinct,
            buckets.len(),
            "stats distinct diverged for {label}.{key}"
        );
        // exact equality counts for every live value
        for (v, n) in &buckets {
            assert_eq!(
                g.count_nodes_with_prop(label, key, &Value::Int(*v)),
                Some(*n),
                "eq count diverged for {label}.{key} = {v}"
            );
        }
        // histogram estimate within the documented error bound
        let exact: usize = buckets
            .iter()
            .filter(|(v, _)| **v >= 0)
            .map(|(_, n)| n)
            .sum();
        if let Some(est) = g.count_nodes_in_prop_range(
            label,
            key,
            Bound::Included(&Value::Int(0)),
            Bound::Unbounded,
        ) {
            let bound = 2 * total.div_ceil(32) + 16.max(total / 8);
            assert!(
                est.abs_diff(exact) <= bound,
                "range estimate {est} vs exact {exact} (bound {bound}) for {label}.{key}"
            );
        }
    }
    check_composite_stats(g);
}

/// Brute-force recount of the composite `(k, m)` statistics and counts:
/// totals cover the whole extent (missing values key on the explicit
/// marker), distinct counts key vectors, and full-/sub-width equality
/// counts are exact.
fn check_composite_stats(g: &Graph) {
    use pg_graph::CompositeTrailing;
    let c = composite_cols();
    for label in ["A", "B"] {
        let Some((total, distinct)) = g.node_composite_stats(label, &c) else {
            continue;
        };
        let mut vectors: BTreeMap<(Option<i64>, Option<i64>), usize> = BTreeMap::new();
        for id in g.nodes_with_label(label) {
            let k = match g.node_prop(id, "k") {
                Some(Value::Int(v)) => Some(v),
                _ => None,
            };
            let m = match g.node_prop(id, "m") {
                Some(Value::Int(v)) => Some(v),
                _ => None,
            };
            *vectors.entry((k, m)).or_insert(0) += 1;
        }
        let brute_total: usize = vectors.values().sum();
        assert_eq!(
            total, brute_total,
            "composite total diverged for {label}(k, m)"
        );
        assert_eq!(
            distinct,
            vectors.len(),
            "composite distinct diverged for {label}(k, m)"
        );
        // exact full-width equality counts for every live (k, m) pair
        for ((k, m), n) in &vectors {
            let (Some(k), Some(m)) = (k, m) else { continue };
            assert_eq!(
                g.count_nodes_with_composite(
                    label,
                    &c,
                    &[Value::Int(*k), Value::Int(*m)],
                    CompositeTrailing::None
                ),
                Some(*n),
                "composite eq count diverged for {label}(k={k}, m={m})"
            );
        }
        // sub-width prefix counts: nodes whose k matches, any m
        let mut by_k: BTreeMap<i64, usize> = BTreeMap::new();
        for ((k, _), n) in &vectors {
            if let Some(k) = k {
                *by_k.entry(*k).or_insert(0) += n;
            }
        }
        for (k, n) in &by_k {
            assert_eq!(
                g.count_nodes_with_composite(label, &c, &[Value::Int(*k)], CompositeTrailing::None),
                Some(*n),
                "composite prefix count diverged for {label}(k={k})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    #[test]
    fn indexed_and_naive_paths_agree(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        let mut t = Twin::new();
        for step in &steps {
            let was_undo = t.apply(step);
            if was_undo {
                // stats must have survived the undo replay exactly
                check_stats(&t.indexed);
                check_queries(&mut t);
            }
        }
        // settle any open transaction, then final full check
        if t.plain.in_tx() {
            t.apply(&Step::Commit);
        }
        check_stats(&t.indexed);
        check_queries(&mut t);
    }
}
