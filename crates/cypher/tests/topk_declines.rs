//! Multi-key (composite) top-k fusion and one asserting test per
//! documented decline rule.
//!
//! Every decline test runs the same query against an indexed twin (fusion
//! candidate) and an unindexed twin (the sort path the fusion must fall
//! back to) and asserts identical results — a decline may cost
//! performance, never correctness. Where the decline fires before any
//! walk is constructed, the probe counters additionally prove no ordered
//! walk ran.

use pg_cypher::{run_query, Params, QueryOutput};
use pg_graph::{Graph, PropertyMap, Value};

fn props(entries: &[(&str, Value)]) -> PropertyMap {
    entries
        .iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn cols(cs: &[&str]) -> Vec<String> {
    cs.iter().map(|c| c.to_string()).collect()
}

fn run(graph: &mut Graph, src: &str) -> QueryOutput {
    run_query(graph, src, &Params::new(), 0).unwrap_or_else(|e| panic!("{src}: {e}"))
}

fn assert_same(plain: &mut Graph, indexed: &mut Graph, q: &str) {
    let a = run(plain, q);
    let b = run(indexed, q);
    assert_eq!(a.columns, b.columns, "{q}");
    assert_eq!(a.rows, b.rows, "{q}");
}

/// Twin graphs of `n` Item nodes with `(a, b)` pairs; the indexed twin
/// carries a composite index on `(Item, [a, b])`. Keys are unique per
/// node so full row equality holds at every cut.
fn composite_twins(n: i64) -> (Graph, Graph) {
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..n {
            g.create_node(
                ["Item"],
                props(&[("a", Value::Int(i % 5)), ("b", Value::Int(n - i))]),
            )
            .unwrap();
        }
    }
    indexed.create_composite_index("Item", &cols(&["a", "b"]));
    (plain, indexed)
}

#[test]
fn multi_key_order_by_fuses_into_composite_walk() {
    let (mut plain, mut indexed) = composite_twins(60);
    for q in [
        "MATCH (i:Item) WITH i ORDER BY i.a, i.b LIMIT 4 RETURN i.a AS a, i.b AS b",
        "MATCH (i:Item) WITH i ORDER BY i.a, i.b SKIP 3 LIMIT 5 RETURN i.a AS a, i.b AS b",
        "MATCH (i:Item) WITH i ORDER BY i.a DESC, i.b DESC LIMIT 4 RETURN i.a AS a, i.b AS b",
        "MATCH (i:Item) RETURN i.a AS a, i.b AS b ORDER BY a, b LIMIT 6",
    ] {
        assert_same(&mut plain, &mut indexed, q);
    }
    // the fused run actually walks the composite index
    indexed.reset_index_probes();
    let out = run(
        &mut indexed,
        "MATCH (i:Item) WITH i ORDER BY i.a, i.b LIMIT 1 RETURN i.a AS a, i.b AS b",
    );
    assert_eq!(out.rows, vec![vec![Value::Int(0), Value::Int(5)]]);
    assert!(
        indexed.index_probes().ordered >= 1,
        "expected a composite ordered walk"
    );
}

#[test]
fn multi_key_fusion_serves_missing_values_both_directions() {
    // Composite walks key absent properties on an explicit missing marker
    // (NULL-last ascending, NULL-first descending) — so unlike the
    // single-key walk, descending multi-key orders over partial data fuse
    // and still agree with the sort path.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..10i64 {
            g.create_node(
                ["Item"],
                props(&[("a", Value::Int(i % 3)), ("b", Value::Int(i))]),
            )
            .unwrap();
        }
        // items missing b, and one missing both
        g.create_node(["Item"], props(&[("a", Value::Int(1))]))
            .unwrap();
        g.create_node(["Item"], PropertyMap::new()).unwrap();
    }
    indexed.create_composite_index("Item", &cols(&["a", "b"]));
    for q in [
        "MATCH (i:Item) WITH i ORDER BY i.a, i.b LIMIT 12 RETURN i.a AS a, i.b AS b",
        "MATCH (i:Item) WITH i ORDER BY i.a, i.b DESC LIMIT 3 RETURN i.a AS a, i.b AS b",
        "MATCH (i:Item) WITH i ORDER BY i.a DESC, i.b DESC LIMIT 12 RETURN i.a AS a, i.b AS b",
    ] {
        // mixed-direction multi-key (line 2) declines; the others fuse —
        // all must agree with the sort path
        assert_same(&mut plain, &mut indexed, q);
    }
}

#[test]
fn equality_prefix_pinned_walk_serves_status_filter() {
    // The §6 conjunction + relocation shape: a composite (status,
    // severity) index serves `{status: 'icu'} … ORDER BY severity` as a
    // prefix-pinned walk.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..40i64 {
            let status = if i % 4 == 0 { "icu" } else { "ward" };
            g.create_node(
                ["Patient"],
                props(&[("status", Value::str(status)), ("severity", Value::Int(i))]),
            )
            .unwrap();
        }
    }
    indexed.create_composite_index("Patient", &cols(&["status", "severity"]));
    let inline = "MATCH (p:Patient {status: 'icu'}) WITH p ORDER BY p.severity LIMIT 2 \
                  RETURN p.severity AS s";
    let pushed = "MATCH (p:Patient) WHERE p.status = 'icu' \
                  WITH p ORDER BY p.severity DESC LIMIT 2 RETURN p.severity AS s";
    assert_same(&mut plain, &mut indexed, inline);
    assert_same(&mut plain, &mut indexed, pushed);
    indexed.reset_index_probes();
    let out = run(&mut indexed, inline);
    assert_eq!(out.rows, vec![vec![Value::Int(0)], vec![Value::Int(4)]]);
    assert!(
        indexed.index_probes().ordered >= 1,
        "expected a pinned composite walk"
    );
}

// ---------------------------------------------------------------------
// One asserting test per documented decline rule. Each proves the sort
// fallback still returns the correct rows.
// ---------------------------------------------------------------------

#[test]
fn decline_aggregates() {
    let (mut plain, mut indexed) = composite_twins(30);
    let q = "MATCH (i:Item) WITH i.a AS a, count(*) AS n ORDER BY a LIMIT 2 RETURN a, n";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    let out = run(&mut indexed, q);
    assert_eq!(
        out.rows,
        vec![
            vec![Value::Int(0), Value::Int(6)],
            vec![Value::Int(1), Value::Int(6)],
        ]
    );
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}

#[test]
fn decline_distinct() {
    let (mut plain, mut indexed) = composite_twins(30);
    let q = "MATCH (i:Item) WITH DISTINCT i.a AS a ORDER BY a LIMIT 2 RETURN a";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Int(0)], vec![Value::Int(1)]]);
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}

#[test]
fn decline_post_with_where() {
    let (mut plain, mut indexed) = composite_twins(30);
    let q = "MATCH (i:Item) WITH i ORDER BY i.a, i.b LIMIT 4 WHERE i.b > 2 \
             RETURN i.a AS a, i.b AS b";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    run(&mut indexed, q);
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}

#[test]
fn decline_rebound_order_variable() {
    // `WITH y AS x ORDER BY x.k`: the projected x is the pattern's y —
    // walking the pattern-x composite index would truncate by the wrong
    // variable's order.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        let a0 = g
            .create_node(["A"], props(&[("k", Value::Int(0)), ("m", Value::Int(0))]))
            .unwrap();
        let b_big = g
            .create_node(
                ["B"],
                props(&[("k", Value::Int(100)), ("name", Value::str("big"))]),
            )
            .unwrap();
        g.create_rel(a0, b_big, "R", PropertyMap::new()).unwrap();
        let a9 = g
            .create_node(["A"], props(&[("k", Value::Int(9)), ("m", Value::Int(9))]))
            .unwrap();
        let b_small = g
            .create_node(
                ["B"],
                props(&[("k", Value::Int(1)), ("name", Value::str("small"))]),
            )
            .unwrap();
        g.create_rel(a9, b_small, "R", PropertyMap::new()).unwrap();
    }
    indexed.create_composite_index("A", &cols(&["k", "m"]));
    let q = "MATCH (x:A)-[:R]->(y:B) WITH y AS x ORDER BY x.k LIMIT 1 RETURN x.name AS name";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::str("small")]]);
}

#[test]
fn decline_prebound_variable() {
    let (mut plain, mut indexed) = composite_twins(10);
    let q = "MATCH (i:Item {a: 2, b: 8}) WITH i MATCH (i) WITH i ORDER BY i.a, i.b LIMIT 1 \
             RETURN i.a AS a, i.b AS b";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Int(2), Value::Int(8)]]);
}

#[test]
fn decline_lossy_values() {
    // A record holding a ±2⁵³ numeric is excluded from the composite
    // entry; the ordered walk refuses and the sort path keeps the row in
    // its right place.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..10i64 {
            g.create_node(
                ["Item"],
                props(&[("a", Value::Int(0)), ("b", Value::Int(i))]),
            )
            .unwrap();
        }
        g.create_node(
            ["Item"],
            props(&[("a", Value::Int(0)), ("b", Value::Int((1 << 53) + 1))]),
        )
        .unwrap();
    }
    indexed.create_composite_index("Item", &cols(&["a", "b"]));
    let q = "MATCH (i:Item) WITH i ORDER BY i.a, i.b DESC LIMIT 1 RETURN i.b AS b";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Int((1 << 53) + 1)]]);
}

#[test]
fn decline_null_leading_desc_single_key() {
    // Single-key walks exclude property-less items entirely, so items
    // whose NULL keys would lead a descending order force a decline (the
    // composite walk lifts this — see
    // `multi_key_fusion_serves_missing_values_both_directions`).
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..10i64 {
            g.create_node(["Item"], props(&[("k", Value::Int(i))]))
                .unwrap();
        }
        g.create_node(["Item"], PropertyMap::new()).unwrap();
    }
    indexed.create_index("Item", "k");
    let q = "MATCH (i:Item) WITH i ORDER BY i.k DESC LIMIT 1 RETURN i.k AS k";
    assert_same(&mut plain, &mut indexed, q);
    let out = run(&mut indexed, q);
    assert_eq!(out.rows, vec![vec![Value::Null]]);
}

#[test]
fn decline_walk_budget_bail() {
    // A walk that keeps matching nothing must bail back to the heap path
    // after its 4096-candidate budget — and the fallback still finds the
    // rows the walk never reached.
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    let n = 5000i64;
    for g in [&mut plain, &mut indexed] {
        for i in 0..n {
            g.create_node(
                ["Item"],
                props(&[("a", Value::Int(0)), ("b", Value::Int(i))]),
            )
            .unwrap();
        }
    }
    indexed.create_composite_index("Item", &cols(&["a", "b"]));
    // only the very last walked item satisfies the WHERE
    let q = format!(
        "MATCH (i:Item) WHERE i.b >= {} WITH i ORDER BY i.a, i.b LIMIT 1 RETURN i.b AS b",
        n - 1
    );
    assert_same(&mut plain, &mut indexed, &q);
    let out = run(&mut indexed, &q);
    assert_eq!(out.rows, vec![vec![Value::Int(n - 1)]]);
}

#[test]
fn decline_mixed_directions_multi_key() {
    let (mut plain, mut indexed) = composite_twins(30);
    let q = "MATCH (i:Item) WITH i ORDER BY i.a, i.b DESC LIMIT 3 RETURN i.a AS a, i.b AS b";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    run(&mut indexed, q);
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}

#[test]
fn decline_order_keys_across_variables() {
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..6i64 {
            let a = g
                .create_node(["A"], props(&[("k", Value::Int(i)), ("m", Value::Int(i))]))
                .unwrap();
            let b = g
                .create_node(["B"], props(&[("k", Value::Int(5 - i))]))
                .unwrap();
            g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
        }
    }
    indexed.create_composite_index("A", &cols(&["k", "m"]));
    let q = "MATCH (x:A)-[:R]->(y:B) WITH x, y ORDER BY x.k, y.k LIMIT 2 \
             RETURN x.k AS xk, y.k AS yk";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    run(&mut indexed, q);
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}

#[test]
fn decline_multi_key_without_matching_composite() {
    // Only a single-key index exists: a multi-key order cannot be served
    // (and a composite whose columns do not contain the order keys as a
    // contiguous run cannot either).
    let mut plain = Graph::new();
    let mut indexed = Graph::new();
    for g in [&mut plain, &mut indexed] {
        for i in 0..20i64 {
            g.create_node(
                ["Item"],
                props(&[
                    ("a", Value::Int(i % 3)),
                    ("b", Value::Int(i)),
                    ("c", Value::Int(i % 2)),
                ]),
            )
            .unwrap();
        }
    }
    indexed.create_index("Item", "a");
    indexed.create_composite_index("Item", &cols(&["a", "c", "b"]));
    let q = "MATCH (i:Item) WITH i ORDER BY i.a, i.b LIMIT 3 RETURN i.a AS a, i.b AS b";
    assert_same(&mut plain, &mut indexed, q);
    indexed.reset_index_probes();
    run(&mut indexed, q);
    assert_eq!(indexed.index_probes().ordered, 0, "no walk may run");
}
