//! Morsel-driven parallel execution: determinism and probe accounting.
//!
//! The parallel executor's observable surface must be identical to the
//! serial one — not just the rows (the differential twin covers those)
//! but the **index-probe counters** too: workers probe a pinned
//! snapshot's own atomic counters, and the executor folds the totals
//! back into the queried view when the scope joins, so
//! `Graph::index_probes()` reports the same numbers whether a query ran
//! serially or across eight workers.

use pg_cypher::{parse_query, Executor, MatchMode, Params, Target, MORSEL_SIZE};
use pg_graph::{Graph, IndexProbes, PropertyMap, Value};

/// 4 × `MORSEL_SIZE` `A`-nodes (several morsels' worth), `k` cycling
/// 0..10, with a single-key index on `A.k` so per-seed equality lookups
/// are index-served (and counted).
fn fixture() -> Graph {
    let mut g = Graph::new();
    for i in 0..(4 * MORSEL_SIZE as i64) {
        let props: PropertyMap = [
            ("k".to_string(), Value::Int(i % 10)),
            ("id".to_string(), Value::Int(i)),
        ]
        .into_iter()
        .collect();
        g.create_node(["A"], props).unwrap();
    }
    g.create_index("A", "k");
    g
}

/// The first MATCH feeds 4 × MORSEL_SIZE seed rows into the second —
/// a pushed equality over a live variable, so every seed row performs
/// its own indexed lookup.
const QUERY: &str = "MATCH (x:A) MATCH (y:A) WHERE y.k = x.k \
                     RETURN count(*) AS n";

fn run(g: &Graph, threads: usize, threshold: f64) -> (Vec<Vec<Value>>, IndexProbes) {
    let query = parse_query(QUERY).unwrap();
    let params = Params::new();
    g.reset_index_probes();
    let rows = Executor::new(Target::Read(g), &params, 0)
        .with_match_mode(MatchMode::Batched)
        .with_thread_limit(threads)
        .with_parallel_threshold(threshold)
        .run(&query, Vec::new())
        .unwrap()
        .rows;
    (rows, g.index_probes())
}

#[test]
fn probe_totals_identical_serial_vs_parallel() {
    let g = fixture();
    // Serial: an unreachable threshold declines morselization outright.
    let (serial_rows, serial_probes) = run(&g, 1, f64::INFINITY);
    // sanity: the self-join on k counts sum over k of count(k)²
    let n = 4 * MORSEL_SIZE as i64;
    let expected: i64 = (0..10)
        .map(|k| (n / 10 + i64::from(k < n % 10)).pow(2))
        .sum();
    assert_eq!(serial_rows, vec![vec![Value::Int(expected)]]);
    assert!(
        serial_probes != IndexProbes::default(),
        "vacuous test: the panel query must actually probe the index"
    );
    // Parallel at several ceilings: threshold 0 forces the morsel queue.
    for threads in [1usize, 2, 8] {
        let (rows, probes) = run(&g, threads, 0.0);
        assert_eq!(rows, serial_rows, "rows diverged at {threads} threads");
        assert_eq!(
            probes, serial_probes,
            "probe totals diverged at {threads} threads"
        );
    }
}
