//! Trigger-cascade visibility under snapshot isolation: readers must never
//! observe a partially applied cascade, whatever the action time
//! (`AFTER` in-transaction, `ONCOMMIT` at the commit point, `DETACHED` in
//! its own autonomous transaction).

use pg_triggers::{ReadSession, Session};

fn count(reader: &mut ReadSession, label: &str) -> i64 {
    reader
        .run(&format!("MATCH (x:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

#[test]
fn cascade_effects_publish_atomically_with_their_commit() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER audit AFTER CREATE ON 'Job' FOR EACH NODE
         BEGIN CREATE (:Audit {of: NEW.i}) END",
    )
    .unwrap();
    let handle = s.reader_handle();
    let e0 = handle.epoch();

    s.run("CREATE (:Job {i: 1})").unwrap();

    // The statement plus its whole cascade is one commit: one epoch.
    assert_eq!(handle.epoch(), e0 + 1);
    let mut reader = ReadSession::new(handle);
    assert_eq!(count(&mut reader, "Job"), 1);
    assert_eq!(count(&mut reader, "Audit"), 1);
}

#[test]
fn oncommit_effects_are_visible_exactly_at_their_commit_epoch() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER tally ONCOMMIT CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:CommitLog {n: size(NEWNODES)}) END",
    )
    .unwrap();
    let handle = s.reader_handle();

    s.begin().unwrap();
    s.run("CREATE (:P)").unwrap();
    s.run("CREATE (:P), (:P)").unwrap();

    // Mid-transaction snapshot: neither the P nodes nor the ONCOMMIT
    // effect exist yet for readers.
    let mut mid = ReadSession::new(handle.clone());
    assert_eq!(count(&mut mid, "P"), 0);
    assert_eq!(count(&mut mid, "CommitLog"), 0);

    let e_before = handle.epoch();
    s.commit().unwrap();
    assert_eq!(handle.epoch(), e_before + 1);

    // Post-commit snapshot: statement effects and ONCOMMIT effects appear
    // together, atomically.
    let mut after = ReadSession::new(handle);
    assert_eq!(count(&mut after, "P"), 3);
    assert_eq!(count(&mut after, "CommitLog"), 1);

    // The stale pin still answers from the pre-commit epoch.
    assert_eq!(count(&mut mid, "P"), 0);
    assert_eq!(count(&mut mid, "CommitLog"), 0);
    // ...until refreshed.
    mid.refresh();
    assert_eq!(count(&mut mid, "P"), 3);
    assert_eq!(count(&mut mid, "CommitLog"), 1);
}

#[test]
fn detached_actions_commit_as_their_own_later_epochs() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER det DETACHED CREATE ON 'A' FOR ALL NODES
         BEGIN CREATE (:DetFired) END",
    )
    .unwrap();
    let handle = s.reader_handle();
    let e0 = handle.epoch();

    s.run("CREATE (:A)").unwrap();

    // Two distinct commits: the activating transaction, then the detached
    // autonomous transaction — two epochs, not one.
    assert_eq!(handle.epoch(), e0 + 2);
    let mut reader = ReadSession::new(handle);
    assert_eq!(count(&mut reader, "A"), 1);
    assert_eq!(count(&mut reader, "DetFired"), 1);
    assert_eq!(s.detached_errors().len(), 0);
}

/// Hammer the publication path: a writer whose every `:Job` insert
/// cascades into an `:Audit` insert (AFTER, same transaction) and an
/// ONCOMMIT tally, while reader threads pin snapshots as fast as they
/// can. Every snapshot must show a complete cascade: |Audit| == |Job|
/// and one `:CommitLog` per committed job-batch.
#[test]
fn readers_never_observe_partial_cascades_under_load() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER audit AFTER CREATE ON 'Job' FOR EACH NODE
         BEGIN CREATE (:Audit {of: NEW.i}) END",
    )
    .unwrap();
    s.install(
        "CREATE TRIGGER tally ONCOMMIT CREATE ON 'Job' FOR ALL NODES
         BEGIN CREATE (:CommitLog {n: size(NEWNODES)}) END",
    )
    .unwrap();
    let handle = s.reader_handle();

    let statements = 200usize;
    let readers = 4usize;

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..readers {
            let h = handle.clone();
            joins.push(scope.spawn(move || {
                let mut reader = ReadSession::new(h);
                let mut last_epoch = 0u64;
                for _ in 0..250 {
                    let epoch = reader.refresh();
                    assert!(epoch >= last_epoch, "epochs must be monotonic");
                    last_epoch = epoch;
                    let orders = count(&mut reader, "Job");
                    let audits = count(&mut reader, "Audit");
                    let logs = count(&mut reader, "CommitLog");
                    assert_eq!(
                        orders, audits,
                        "snapshot exposed a partially applied AFTER cascade"
                    );
                    assert_eq!(
                        orders, logs,
                        "snapshot exposed a commit without its ONCOMMIT effect"
                    );
                }
            }));
        }

        for i in 0..statements {
            s.run(&format!("CREATE (:Job {{i: {i}}})")).unwrap();
        }

        for j in joins {
            j.join().unwrap();
        }
    });

    let mut reader = ReadSession::new(handle);
    assert_eq!(count(&mut reader, "Job"), statements as i64);
    assert_eq!(count(&mut reader, "Audit"), statements as i64);
    assert_eq!(count(&mut reader, "CommitLog"), statements as i64);
}
