//! Integration tests for the PG-Trigger execution semantics (paper §4.2).

use pg_graph::Value;
use pg_triggers::{EngineConfig, OrderPolicy, Session, TriggerError};

fn count(session: &mut Session, label: &str) -> i64 {
    let q = format!("MATCH (n:{label}) RETURN count(*) AS n");
    session
        .run(&q)
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

// ---------------------------------------------------------------------
// Action times
// ---------------------------------------------------------------------

#[test]
fn after_trigger_fires_per_created_node() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER log AFTER CREATE ON 'P' FOR EACH NODE
         BEGIN CREATE (:Log {of: NEW.name}) END",
    )
    .unwrap();
    s.run("CREATE (:P {name: 'a'}), (:P {name: 'b'}), (:Q {name: 'c'})")
        .unwrap();
    assert_eq!(count(&mut s, "Log"), 2);
    let out = s.run("MATCH (l:Log) RETURN l.of AS o ORDER BY o").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("a")], vec![Value::str("b")]]);
}

#[test]
fn before_trigger_conditions_new_state() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER stamp BEFORE CREATE ON 'P' FOR EACH NODE
         BEGIN SET NEW.audited = true END",
    )
    .unwrap();
    s.run("CREATE (:P {name: 'x'})").unwrap();
    let out = s.run("MATCH (p:P) RETURN p.audited AS a").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Bool(true)]]);
}

#[test]
fn before_trigger_cannot_mutate_other_items() {
    let mut s = Session::new();
    s.run("CREATE (:Bystander {v: 1})").unwrap();
    s.install(
        "CREATE TRIGGER sneaky BEFORE CREATE ON 'P' FOR EACH NODE
         BEGIN MATCH (b:Bystander) SET b.v = 99 END",
    )
    .unwrap();
    let err = s.run("CREATE (:P)").unwrap_err();
    assert!(matches!(err, TriggerError::Store(_)), "got {err:?}");
    // statement rolled back entirely: no P created, bystander untouched
    assert_eq!(count(&mut s, "P"), 0);
    let out = s.run("MATCH (b:Bystander) RETURN b.v AS v").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
}

#[test]
fn before_trigger_abort_vetoes_statement() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER no_negative BEFORE SET ON 'Hospital'.'icuBeds' FOR EACH NODE
         WHEN NEW.icuBeds < 0
         BEGIN ABORT 'icuBeds must be non-negative' END",
    )
    .unwrap();
    s.run("CREATE (:Hospital {name: 'Sacco', icuBeds: 10})")
        .unwrap();
    let err = s.run("MATCH (h:Hospital) SET h.icuBeds = -5").unwrap_err();
    assert!(matches!(
        err,
        TriggerError::Cypher(pg_cypher::CypherError::Aborted(_))
    ));
    let out = s.run("MATCH (h:Hospital) RETURN h.icuBeds AS b").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(10)]]); // rolled back
                                                      // a legal update passes
    s.run("MATCH (h:Hospital) SET h.icuBeds = 20").unwrap();
    let out = s.run("MATCH (h:Hospital) RETURN h.icuBeds AS b").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(20)]]);
}

#[test]
fn before_condition_sees_pre_statement_state() {
    let mut s = Session::new();
    // Condition counts P nodes in the *pre* state: fires only when the
    // pre-state had none (i.e. for the first insertion statement).
    s.install(
        "CREATE TRIGGER first_only BEFORE CREATE ON 'P' FOR EACH NODE
         WHEN MATCH (e:P) WITH count(e) AS existing WHERE existing = 0
         BEGIN SET NEW.first = true END",
    )
    .unwrap();
    s.run("CREATE (:P {name: 'a'})").unwrap();
    s.run("CREATE (:P {name: 'b'})").unwrap();
    let out = s
        .run("MATCH (p:P) RETURN p.name AS n, p.first AS f ORDER BY n")
        .unwrap();
    assert_eq!(
        out.rows,
        vec![
            vec![Value::str("a"), Value::Bool(true)],
            vec![Value::str("b"), Value::Null],
        ]
    );
}

#[test]
fn oncommit_runs_on_cumulative_tx_delta() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER tally ONCOMMIT CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:CommitLog {n: size(NEWNODES)}) END",
    )
    .unwrap();
    s.begin().unwrap();
    s.run("CREATE (:P)").unwrap();
    s.run("CREATE (:P), (:P)").unwrap();
    // nothing yet: ONCOMMIT waits for the commit point
    assert_eq!(count(&mut s, "CommitLog"), 0);
    s.commit().unwrap();
    let out = s.run("MATCH (c:CommitLog) RETURN c.n AS n").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn oncommit_failure_rolls_back_whole_transaction() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER veto ONCOMMIT CREATE ON 'P' FOR ALL NODES
         WHEN MATCH (p:P) WITH count(p) AS n WHERE n > 2
         BEGIN ABORT 'too many P' END",
    )
    .unwrap();
    s.begin().unwrap();
    s.run("CREATE (:P), (:P), (:P)").unwrap();
    let err = s.commit().unwrap_err();
    assert!(matches!(
        err,
        TriggerError::Cypher(pg_cypher::CypherError::Aborted(_))
    ));
    assert_eq!(count(&mut s, "P"), 0); // everything rolled back

    // two nodes commit fine
    s.begin().unwrap();
    s.run("CREATE (:P), (:P)").unwrap();
    s.commit().unwrap();
    assert_eq!(count(&mut s, "P"), 2);
}

#[test]
fn oncommit_side_effects_iterate_to_fixpoint() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER derive ONCOMMIT CREATE ON 'A' FOR EACH NODE
         BEGIN CREATE (:B) END",
    )
    .unwrap();
    s.install(
        "CREATE TRIGGER derive2 ONCOMMIT CREATE ON 'B' FOR EACH NODE
         BEGIN CREATE (:C) END",
    )
    .unwrap();
    s.run("CREATE (:A)").unwrap();
    // round 1: A→B; round 2: B→C; both inside the same commit
    assert_eq!(count(&mut s, "B"), 1);
    assert_eq!(count(&mut s, "C"), 1);
}

#[test]
fn oncommit_divergence_detected() {
    let mut s = Session::with_config(EngineConfig {
        max_commit_rounds: 4,
        ..EngineConfig::default()
    });
    s.install(
        "CREATE TRIGGER pingpong ONCOMMIT CREATE ON 'A' FOR EACH NODE
         BEGIN CREATE (:A) END",
    )
    .unwrap();
    let err = s.run("CREATE (:A)").unwrap_err();
    assert!(matches!(err, TriggerError::CommitFixpointDiverged { .. }));
    assert_eq!(count(&mut s, "A"), 0); // rolled back
}

#[test]
fn detached_runs_after_commit_in_autonomous_tx() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER audit DETACHED CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:Audit {n: size(NEWNODES)}) END",
    )
    .unwrap();
    s.run("CREATE (:P), (:P)").unwrap();
    assert_eq!(count(&mut s, "Audit"), 1);
    let out = s.run("MATCH (a:Audit) RETURN a.n AS n").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
    assert!(s.detached_errors().is_empty());
}

#[test]
fn detached_failure_does_not_affect_main_tx() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER flaky DETACHED CREATE ON 'P' FOR EACH NODE
         BEGIN ABORT 'detached failure' END",
    )
    .unwrap();
    // main statement succeeds even though the detached trigger fails
    s.run("CREATE (:P)").unwrap();
    assert_eq!(count(&mut s, "P"), 1);
    assert_eq!(s.detached_errors().len(), 1);
    assert_eq!(s.detached_errors()[0].0, "flaky");
}

// ---------------------------------------------------------------------
// Cascading
// ---------------------------------------------------------------------

#[test]
fn after_triggers_cascade() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER t1 AFTER CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:B) END")
        .unwrap();
    s.install("CREATE TRIGGER t2 AFTER CREATE ON 'B' FOR EACH NODE BEGIN CREATE (:C) END")
        .unwrap();
    s.install("CREATE TRIGGER t3 AFTER CREATE ON 'C' FOR EACH NODE BEGIN CREATE (:D) END")
        .unwrap();
    s.run("CREATE (:A)").unwrap();
    for l in ["B", "C", "D"] {
        assert_eq!(count(&mut s, l), 1, "label {l}");
    }
    assert!(s.stats().max_depth_seen >= 2);
}

#[test]
fn cascade_disabled_emulates_apoc_limitation() {
    let mut s = Session::with_config(EngineConfig {
        cascading_enabled: false,
        ..EngineConfig::default()
    });
    s.install("CREATE TRIGGER t1 AFTER CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:B) END")
        .unwrap();
    s.install("CREATE TRIGGER t2 AFTER CREATE ON 'B' FOR EACH NODE BEGIN CREATE (:C) END")
        .unwrap();
    s.run("CREATE (:A)").unwrap();
    assert_eq!(count(&mut s, "B"), 1);
    assert_eq!(count(&mut s, "C"), 0); // the cascade is blocked (§5.1)
}

#[test]
fn recursion_limit_aborts_runaway_cascade() {
    let mut s = Session::with_config(EngineConfig {
        max_cascade_depth: 8,
        ..EngineConfig::default()
    });
    // Self-perpetuating: every Alert creates another Alert.
    s.install(
        "CREATE TRIGGER loops AFTER CREATE ON 'Alert' FOR EACH NODE BEGIN CREATE (:Alert) END",
    )
    .unwrap();
    let err = s.run("CREATE (:Alert)").unwrap_err();
    assert!(matches!(err, TriggerError::RecursionLimit { .. }));
    assert_eq!(count(&mut s, "Alert"), 0); // rolled back entirely
}

#[test]
fn bounded_cascade_terminates_under_limit() {
    // Chain bounded by data: each hop moves to the next node; terminates.
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER hop AFTER SET ON 'N'.'hot' FOR EACH NODE
         WHEN NEW.hot = true
         BEGIN MATCH (NEW)-[:NEXT]->(m:N) WHERE m.hot IS NULL SET m.hot = true END",
    )
    .unwrap();
    s.run(
        "CREATE (:N {i: 0})-[:NEXT]->(:N {i: 1}) WITH 1 AS _
         MATCH (a:N {i: 1}) CREATE (a)-[:NEXT]->(:N {i: 2})",
    )
    .unwrap();
    s.run("MATCH (n:N {i: 0}) SET n.hot = true").unwrap();
    let out = s
        .run("MATCH (n:N) WHERE n.hot = true RETURN count(*) AS c")
        .unwrap();
    assert_eq!(out.single(), Some(&Value::Int(3))); // propagated down the chain
}

// ---------------------------------------------------------------------
// Ordering
// ---------------------------------------------------------------------

#[test]
fn creation_time_order_is_default() {
    let mut s = Session::new();
    // Both triggers append to a trace; zebra installed first must run first.
    s.install(
        "CREATE TRIGGER zebra AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN MATCH (t:Trace) SET t.log = t.log + 'z' END",
    )
    .unwrap();
    s.install(
        "CREATE TRIGGER alpha AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN MATCH (t:Trace) SET t.log = t.log + 'a' END",
    )
    .unwrap();
    s.run("CREATE (:Trace {log: ''})").unwrap();
    s.run("CREATE (:P)").unwrap();
    let out = s.run("MATCH (t:Trace) RETURN t.log AS l").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("za")]]);
}

#[test]
fn name_order_policy() {
    let mut s = Session::with_config(EngineConfig {
        order: OrderPolicy::Name,
        ..EngineConfig::default()
    });
    s.install(
        "CREATE TRIGGER zebra AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN MATCH (t:Trace) SET t.log = t.log + 'z' END",
    )
    .unwrap();
    s.install(
        "CREATE TRIGGER alpha AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN MATCH (t:Trace) SET t.log = t.log + 'a' END",
    )
    .unwrap();
    s.run("CREATE (:Trace {log: ''})").unwrap();
    s.run("CREATE (:P)").unwrap();
    let out = s.run("MATCH (t:Trace) RETURN t.log AS l").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("az")]]);
}

// ---------------------------------------------------------------------
// Granularity & transition variables
// ---------------------------------------------------------------------

#[test]
fn for_all_fires_once_per_statement() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER batch AFTER CREATE ON 'P' FOR ALL NODES
         BEGIN CREATE (:BatchLog {n: size(NEWNODES)}) END",
    )
    .unwrap();
    s.run("CREATE (:P), (:P), (:P)").unwrap();
    assert_eq!(count(&mut s, "BatchLog"), 1);
    let out = s.run("MATCH (b:BatchLog) RETURN b.n AS n").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(3)]]);
}

#[test]
fn old_and_new_in_set_trigger() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER who AFTER SET ON 'Lineage'.'whoDesignation' FOR EACH NODE
         WHEN OLD.whoDesignation <> NEW.whoDesignation
         BEGIN CREATE (:Alert {was: OLD.whoDesignation, now: NEW.whoDesignation}) END",
    )
    .unwrap();
    s.run("CREATE (:Lineage {name: 'B.1.617.2', whoDesignation: 'Indian'})")
        .unwrap();
    s.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        .unwrap();
    let out = s
        .run("MATCH (a:Alert) RETURN a.was AS w, a.now AS n")
        .unwrap();
    assert_eq!(
        out.rows,
        vec![vec![Value::str("Indian"), Value::str("Delta")]]
    );
    // same-value set: condition false, no second alert
    s.run("MATCH (l:Lineage) SET l.whoDesignation = 'Delta'")
        .unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
}

#[test]
fn delete_trigger_reads_old_map() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER obituary AFTER DELETE ON 'P' FOR EACH NODE
         BEGIN CREATE (:Tombstone {name: OLD.name}) END",
    )
    .unwrap();
    s.run("CREATE (:P {name: 'gone'})").unwrap();
    s.run("MATCH (p:P) DETACH DELETE p").unwrap();
    let out = s.run("MATCH (t:Tombstone) RETURN t.name AS n").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("gone")]]);
}

#[test]
fn relationship_triggers() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER link AFTER CREATE ON 'BelongsTo' FOR EACH RELATIONSHIP
         WHEN MATCH (s:Sequence)-[NEW]-(l:Lineage)
         BEGIN CREATE (:Alert {lineage: l.name}) END",
    )
    .unwrap();
    s.run("CREATE (:Sequence {accession: 'S1'}) CREATE (:Lineage {name: 'Alpha'})")
        .unwrap();
    s.run("MATCH (s:Sequence), (l:Lineage) CREATE (s)-[:BelongsTo]->(l)")
        .unwrap();
    let out = s.run("MATCH (a:Alert) RETURN a.lineage AS l").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("Alpha")]]);
}

#[test]
fn referencing_aliases_work_end_to_end() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER admitted AFTER CREATE ON 'IcuPatient'
         REFERENCING NEWNODES AS admissions
         FOR ALL NODES
         BEGIN CREATE (:Wave {n: size(admissions)}) END",
    )
    .unwrap();
    s.run("CREATE (:IcuPatient), (:IcuPatient)").unwrap();
    let out = s.run("MATCH (w:Wave) RETURN w.n AS n").unwrap();
    assert_eq!(out.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn label_set_event_trigger() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER flagged AFTER SET ON 'Critical' FOR EACH NODE
         BEGIN CREATE (:Alert {desc: 'node became critical'}) END",
    )
    .unwrap();
    s.run("CREATE (:P {name: 'x'})").unwrap();
    assert_eq!(count(&mut s, "Alert"), 0);
    s.run("MATCH (p:P) SET p:Critical").unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
    // setting it again is a no-op: no event, no alert
    s.run("MATCH (p:P) SET p:Critical").unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
}

#[test]
fn remove_property_event_trigger() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER lost AFTER REMOVE ON 'P'.'email' FOR EACH NODE
         BEGIN CREATE (:Alert {was: OLD.email}) END",
    )
    .unwrap();
    s.run("CREATE (:P {email: 'a@b.c'})").unwrap();
    s.run("MATCH (p:P) REMOVE p.email").unwrap();
    let out = s.run("MATCH (a:Alert) RETURN a.was AS w").unwrap();
    assert_eq!(out.rows, vec![vec![Value::str("a@b.c")]]);
}

// ---------------------------------------------------------------------
// Transactions & statement isolation
// ---------------------------------------------------------------------

#[test]
fn statement_error_inside_tx_preserves_earlier_statements() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER veto AFTER CREATE ON 'Bad' FOR EACH NODE
         BEGIN ABORT 'no Bad allowed' END",
    )
    .unwrap();
    s.begin().unwrap();
    s.run("CREATE (:Good)").unwrap();
    let err = s.run("CREATE (:Bad)").unwrap_err();
    assert!(matches!(
        err,
        TriggerError::Cypher(pg_cypher::CypherError::Aborted(_))
    ));
    s.commit().unwrap();
    assert_eq!(count(&mut s, "Good"), 1);
    assert_eq!(count(&mut s, "Bad"), 0);
}

#[test]
fn rollback_discards_trigger_effects() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER log AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Log) END")
        .unwrap();
    s.begin().unwrap();
    s.run("CREATE (:P)").unwrap();
    s.rollback().unwrap();
    assert_eq!(count(&mut s, "P"), 0);
    assert_eq!(count(&mut s, "Log"), 0);
}

#[test]
fn disabled_trigger_does_not_fire() {
    let mut s = Session::new();
    s.install("CREATE TRIGGER log AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Log) END")
        .unwrap();
    s.set_trigger_enabled("log", false).unwrap();
    s.run("CREATE (:P)").unwrap();
    assert_eq!(count(&mut s, "Log"), 0);
    s.set_trigger_enabled("log", true).unwrap();
    s.run("CREATE (:P)").unwrap();
    assert_eq!(count(&mut s, "Log"), 1);
}

#[test]
fn execute_dispatches_ddl_and_queries() {
    let mut s = Session::new();
    match s
        .execute("CREATE TRIGGER t AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Log) END")
        .unwrap()
    {
        pg_triggers::ExecResult::TriggerCreated(name) => assert_eq!(name, "t"),
        other => panic!("unexpected {other:?}"),
    }
    s.execute("CREATE (:P)").unwrap();
    assert_eq!(count(&mut s, "Log"), 1);
    match s.execute("DROP TRIGGER t").unwrap() {
        pg_triggers::ExecResult::TriggerDropped(name) => assert_eq!(name, "t"),
        other => panic!("unexpected {other:?}"),
    }
    s.execute("CREATE (:P)").unwrap();
    assert_eq!(count(&mut s, "Log"), 1);
}

#[test]
fn trigger_does_not_monitor_bulk_loaded_data() {
    // graph_mut() bypasses triggers by design (bulk load path).
    let mut s = Session::new();
    s.install("CREATE TRIGGER log AFTER CREATE ON 'P' FOR EACH NODE BEGIN CREATE (:Log) END")
        .unwrap();
    s.graph_mut()
        .create_node(["P"], pg_graph::PropertyMap::new())
        .unwrap();
    assert_eq!(count(&mut s, "Log"), 0);
}

#[test]
fn stats_track_fired_and_suppressed() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER picky AFTER CREATE ON 'P' FOR EACH NODE
         WHEN NEW.go = true
         BEGIN CREATE (:Log) END",
    )
    .unwrap();
    s.run("CREATE (:P {go: true})").unwrap();
    s.run("CREATE (:P {go: false})").unwrap();
    let st = s.stats();
    assert_eq!(st.fired, 1);
    assert_eq!(st.suppressed, 1);
}

#[test]
fn detached_chain_is_bounded() {
    let mut s = Session::with_config(EngineConfig {
        max_detached_chain: 5,
        ..EngineConfig::default()
    });
    s.install("CREATE TRIGGER chain DETACHED CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:A) END")
        .unwrap();
    s.run("CREATE (:A)").unwrap();
    // chain executed 5 times then stopped with a recorded error
    assert!(!s.detached_errors().is_empty());
    assert!(s.stats().detached_runs <= 5);
}
