//! Event-keyed trigger dispatch: statements must not pay for triggers
//! whose events cannot intersect their delta — and the pre-filter must be
//! invisible to trigger semantics.

use pg_graph::GraphView;
use pg_triggers::{ActionTime, DeltaSignature, Session};

fn count(s: &mut Session, label: &str) -> i64 {
    s.run(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

#[test]
fn irrelevant_trigger_neither_fires_nor_evaluates() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER on_a AFTER CREATE ON 'A' FOR EACH NODE
         WHEN NEW.x > 0
         BEGIN CREATE (:Fired) END",
    )
    .unwrap();
    // a :B-only statement: the trigger must not fire — and must not even
    // be *evaluated* (suppressed counts condition evaluations that failed;
    // the pre-filter skips before evaluation, so both stay 0)
    s.run("CREATE (:B {x: 1})").unwrap();
    assert_eq!(count(&mut s, "Fired"), 0);
    assert_eq!(s.stats().fired, 0);
    assert_eq!(s.stats().suppressed, 0);
    // catalog-level: the dispatch filter rejects the trigger for a :B delta
    let delta = {
        let g = s.graph();
        let mut d = pg_graph::Delta::default();
        let mut rec = pg_graph::NodeRecord::new(g.all_node_ids()[0]);
        rec.labels.insert("B".to_string());
        d.created_nodes.push(rec);
        d
    };
    let sig = DeltaSignature::of(&delta);
    assert!(!s.catalog().wants(ActionTime::After, &sig));
    assert!(s
        .catalog()
        .scheduled_matching(ActionTime::After, &sig)
        .is_empty());

    // the matching statement still fires (condition truthy)
    s.run("CREATE (:A {x: 1})").unwrap();
    assert_eq!(count(&mut s, "Fired"), 1);
    assert_eq!(s.stats().fired, 1);
    // and the condition still suppresses when false
    s.run("CREATE (:A {x: -1})").unwrap();
    assert_eq!(count(&mut s, "Fired"), 1);
    assert_eq!(s.stats().suppressed, 1);
}

#[test]
fn fanout_of_irrelevant_triggers_fires_only_the_match() {
    let mut s = Session::new();
    for i in 0..100 {
        s.install(&format!(
            "CREATE TRIGGER t{i} AFTER CREATE ON 'Other{i}' FOR EACH NODE
             BEGIN CREATE (:Wrong) END"
        ))
        .unwrap();
    }
    s.install(
        "CREATE TRIGGER hot AFTER CREATE ON 'Target' FOR EACH NODE
         BEGIN CREATE (:Fired) END",
    )
    .unwrap();
    s.run("CREATE (:Target)").unwrap();
    assert_eq!(count(&mut s, "Fired"), 1);
    assert_eq!(count(&mut s, "Wrong"), 0);
    assert_eq!(s.stats().fired, 1);
    assert_eq!(s.stats().suppressed, 0);
}

#[test]
fn prefilter_respects_property_events_and_labels() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER occ AFTER SET ON 'Hospital'.'occupancy' FOR EACH NODE
         BEGIN CREATE (:Alert) END",
    )
    .unwrap();
    s.run("CREATE (:Hospital {n: 1}), (:Ward {n: 2})").unwrap();
    // same key on a different label: pre-filter passes (key matches) but
    // affected_items rejects via the precise label check — no fire
    s.run("MATCH (w:Ward) SET w.occupancy = 0.5").unwrap();
    assert_eq!(count(&mut s, "Alert"), 0);
    // different key on the right label: pre-filter rejects outright
    s.run("MATCH (h:Hospital) SET h.beds = 10").unwrap();
    assert_eq!(count(&mut s, "Alert"), 0);
    // the monitored event fires
    s.run("MATCH (h:Hospital) SET h.occupancy = 0.97").unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
}

#[test]
fn create_trigger_with_property_still_gates_on_label() {
    // A property on a CREATE/DELETE trigger is legal DDL and ignored by
    // affected_items — the pre-filter must gate such triggers on their
    // label, not on the (never-matching) property key.
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER t AFTER CREATE ON 'L'.'p' FOR EACH NODE
         BEGIN CREATE (:Fired) END",
    )
    .unwrap();
    s.run("CREATE (:L {p: 1})").unwrap();
    assert_eq!(count(&mut s, "Fired"), 1);
    s.run("CREATE (:Other {p: 1})").unwrap();
    assert_eq!(count(&mut s, "Fired"), 1);
}

#[test]
fn prefilter_covers_oncommit_and_detached() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER oc ONCOMMIT CREATE ON 'A' FOR ALL NODES
         BEGIN CREATE (:OcFired) END",
    )
    .unwrap();
    s.install(
        "CREATE TRIGGER det DETACHED CREATE ON 'A' FOR ALL NODES
         BEGIN CREATE (:DetFired) END",
    )
    .unwrap();
    // irrelevant commit: neither activates
    s.run("CREATE (:B)").unwrap();
    assert_eq!(count(&mut s, "OcFired"), 0);
    assert_eq!(count(&mut s, "DetFired"), 0);
    // relevant commit: both do
    s.run("CREATE (:A)").unwrap();
    assert_eq!(count(&mut s, "OcFired"), 1);
    assert_eq!(count(&mut s, "DetFired"), 1);
    assert!(s.detached_errors().is_empty());
}

#[test]
fn before_triggers_still_condition_new_state_through_prefilter() {
    let mut s = Session::new();
    s.install(
        "CREATE TRIGGER audit BEFORE CREATE ON 'P' FOR EACH NODE
         BEGIN SET NEW.audited = true END",
    )
    .unwrap();
    // irrelevant statement: untouched
    s.run("CREATE (:Q {x: 1})").unwrap();
    let rows = s.run("MATCH (q:Q) RETURN q.audited AS a").unwrap();
    assert_eq!(rows.rows[0][0], pg_graph::Value::Null);
    // relevant statement: conditioned
    s.run("CREATE (:P {x: 1})").unwrap();
    let rows = s.run("MATCH (p:P) RETURN p.audited AS a").unwrap();
    assert_eq!(rows.rows[0][0], pg_graph::Value::Bool(true));
}
