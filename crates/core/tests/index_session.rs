//! `CREATE INDEX` DDL through the session, and index consistency when the
//! engine aborts work: statement rollback inside an explicit transaction
//! and a trigger cascade cut off by `RecursionLimit`.

use pg_graph::{GraphView, NodeId, Value};
use pg_triggers::{EngineConfig, ExecResult, Session, TriggerError};
use std::collections::BTreeSet;

fn count(s: &mut Session, label: &str) -> i64 {
    s.run(&format!("MATCH (n:{label}) RETURN count(*) AS n"))
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap()
}

/// Every index lookup must agree with a brute-force scan.
fn assert_index_equals_scan(s: &Session, values: &[Value]) {
    let g = s.graph();
    let all = g.all_node_ids();
    for (label, key) in s.indexes() {
        for value in values {
            let via_index: BTreeSet<NodeId> = g
                .nodes_with_prop(&label, &key, value)
                .expect("indexed (label, key) must answer")
                .into_iter()
                .collect();
            let via_scan: BTreeSet<NodeId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    g.node_has_label(id, &label)
                        && g.node_prop(id, &key)
                            .is_some_and(|have| have.eq3(value) == Some(true))
                })
                .collect();
            assert_eq!(via_index, via_scan, "({label},{key}) diverged on {value}");
        }
    }
}

#[test]
fn execute_dispatches_index_ddl() {
    let mut s = Session::new();
    s.run("CREATE (:M {name: 'a'}), (:M {name: 'b'})").unwrap();
    match s.execute("CREATE INDEX ON :M(name)").unwrap() {
        ExecResult::IndexCreated { label, key } => {
            assert_eq!((label.as_str(), key.as_str()), ("M", "name"));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(s.indexes(), vec![("M".to_string(), "name".to_string())]);
    // duplicate create and unknown drop are errors
    assert!(matches!(
        s.execute("CREATE INDEX ON :M(name)"),
        Err(TriggerError::Install(_))
    ));
    assert!(matches!(
        s.execute("DROP INDEX ON :M(nope)"),
        Err(TriggerError::Install(_))
    ));
    // the index actually serves matches
    let rows = s.run("MATCH (x:M {name: 'a'}) RETURN x.name AS n").unwrap();
    assert_eq!(rows.rows.len(), 1);
    match s.execute("DROP INDEX ON :M(name)").unwrap() {
        ExecResult::IndexDropped { label, key } => {
            assert_eq!((label.as_str(), key.as_str()), ("M", "name"));
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(s.indexes().is_empty());
}

#[test]
fn index_consistent_after_statement_rollback_in_tx() {
    let mut s = Session::new();
    s.execute("CREATE INDEX ON :P(k)").unwrap();
    s.run("CREATE (:P {k: 1})").unwrap();
    s.begin().unwrap();
    s.run("CREATE (:P {k: 2})").unwrap();
    // failing statement: second clause errors after the first mutated
    let err = s.run("CREATE (:P {k: 3}) CREATE (:P {k: 1/0})");
    assert!(err.is_err());
    // statement-level rollback: k=3 gone, k=2 (earlier statement) kept
    let vals: Vec<Value> = (0..5).map(Value::Int).collect();
    assert_index_equals_scan(&s, &vals);
    assert_eq!(count(&mut s, "P"), 2);
    s.rollback().unwrap();
    assert_index_equals_scan(&s, &vals);
    assert_eq!(count(&mut s, "P"), 1);
}

#[test]
fn index_consistent_after_cascade_aborted_by_recursion_limit() {
    let mut s = Session::with_config(EngineConfig {
        max_cascade_depth: 8,
        ..EngineConfig::default()
    });
    s.execute("CREATE INDEX ON :Boom(k)").unwrap();
    s.run("CREATE (:Boom {k: 0})").unwrap();
    // self-feeding trigger: every :Boom creates another :Boom — the cascade
    // must hit the depth bound and roll the whole statement back.
    s.install(
        "CREATE TRIGGER boom AFTER CREATE ON 'Boom' FOR EACH NODE
         BEGIN CREATE (:Boom {k: 1}) END",
    )
    .unwrap();
    let err = s.run("CREATE (:Boom {k: 2})").unwrap_err();
    assert!(matches!(err, TriggerError::RecursionLimit { .. }), "{err}");
    // everything the aborted cascade created is gone — from the graph AND
    // from the index
    let vals: Vec<Value> = (0..3).map(Value::Int).collect();
    assert_index_equals_scan(&s, &vals);
    assert_eq!(count(&mut s, "Boom"), 1);
    assert_eq!(
        s.graph().nodes_with_prop("Boom", "k", &Value::Int(1)),
        Some(vec![])
    );
    // the engine still works afterwards: drop the trigger, mutate, look up
    s.execute("DROP TRIGGER boom").unwrap();
    s.run("CREATE (:Boom {k: 2})").unwrap();
    assert_index_equals_scan(&s, &vals);
    assert_eq!(
        s.graph()
            .nodes_with_prop("Boom", "k", &Value::Int(2))
            .map(|v| v.len()),
        Some(1)
    );
}

#[test]
fn schema_key_and_index_props_create_indexes() {
    let mut s = Session::new();
    let gt = pg_schema::parse_graph_type(
        "CREATE GRAPH TYPE G LOOSE {
           (PatientType: Patient {ssn STRING KEY, name STRING INDEX, age INT32})
         }",
    )
    .unwrap();
    s.set_schema(gt);
    assert_eq!(
        s.indexes(),
        vec![
            ("Patient".to_string(), "name".to_string()),
            ("Patient".to_string(), "ssn".to_string()),
        ]
    );
}

#[test]
fn execute_dispatches_rel_index_ddl() {
    let mut s = Session::new();
    s.run("CREATE (:H {n: 1})-[:ConnectedTo {distance: 5}]->(:H {n: 2})")
        .unwrap();
    match s
        .execute("CREATE INDEX ON -[:ConnectedTo(distance)]-")
        .unwrap()
    {
        ExecResult::RelIndexCreated { rel_type, key } => {
            assert_eq!(
                (rel_type.as_str(), key.as_str()),
                ("ConnectedTo", "distance")
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(
        s.rel_indexes(),
        vec![("ConnectedTo".to_string(), "distance".to_string())]
    );
    // populated from the live extent
    assert_eq!(
        s.graph()
            .rels_with_prop("ConnectedTo", "distance", &Value::Int(5))
            .map(|v| v.len()),
        Some(1)
    );
    // duplicate create and unknown drop are errors
    assert!(matches!(
        s.execute("CREATE INDEX ON -[:ConnectedTo(distance)]-"),
        Err(TriggerError::Install(_))
    ));
    assert!(matches!(
        s.execute("DROP INDEX ON -[:ConnectedTo(nope)]-"),
        Err(TriggerError::Install(_))
    ));
    // the dash-less form parses too
    s.execute("CREATE INDEX ON [:ConnectedTo(weight)]").unwrap();
    assert_eq!(s.rel_indexes().len(), 2);
    match s
        .execute("DROP INDEX ON -[:ConnectedTo(distance)]-")
        .unwrap()
    {
        ExecResult::RelIndexDropped { rel_type, key } => {
            assert_eq!(
                (rel_type.as_str(), key.as_str()),
                ("ConnectedTo", "distance")
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(s.rel_indexes().len(), 1);
}

#[test]
fn rel_index_consistent_after_statement_rollback_in_tx() {
    let mut s = Session::new();
    s.execute("CREATE INDEX ON -[:R(w)]-").unwrap();
    s.run("CREATE (:A {i: 0})-[:R {w: 1}]->(:A {i: 1})")
        .unwrap();
    s.begin().unwrap();
    s.run("MATCH (a:A {i: 0}), (b:A {i: 1}) CREATE (a)-[:R {w: 2}]->(b)")
        .unwrap();
    // failing statement rolls back only its own rel
    let err =
        s.run("MATCH (a:A {i: 0}), (b:A {i: 1}) CREATE (a)-[:R {w: 3}]->(b) CREATE (:X {k: 1/0})");
    assert!(err.is_err());
    let g = s.graph();
    assert_eq!(
        g.rels_with_prop("R", "w", &Value::Int(2)).map(|v| v.len()),
        Some(1)
    );
    assert_eq!(g.rels_with_prop("R", "w", &Value::Int(3)), Some(vec![]));
    s.rollback().unwrap();
    let g = s.graph();
    assert_eq!(g.rels_with_prop("R", "w", &Value::Int(2)), Some(vec![]));
    assert_eq!(
        g.rels_with_prop("R", "w", &Value::Int(1)).map(|v| v.len()),
        Some(1)
    );
}

#[test]
fn schema_edge_index_props_create_rel_indexes() {
    let mut s = Session::new();
    let gt = pg_schema::parse_graph_type(
        "CREATE GRAPH TYPE G LOOSE {
           (HospitalType: Hospital {name STRING}),
           (:HospitalType)-[CT: ConnectedTo {distance INT32 INDEX}]->(:HospitalType)
         }",
    )
    .unwrap();
    s.set_schema(gt);
    assert_eq!(
        s.rel_indexes(),
        vec![("ConnectedTo".to_string(), "distance".to_string())]
    );
}

#[test]
fn rel_index_serves_rel_property_trigger_condition() {
    // The §6.2.3 MoveToNearHospital shape: ORDER BY ct.distance over
    // ConnectedTo — here a rel-prop equality inside a trigger condition.
    let mut s = Session::new();
    s.execute("CREATE INDEX ON -[:ConnectedTo(distance)]-")
        .unwrap();
    for i in 0..40 {
        s.run(&format!(
            "CREATE (:Hospital {{n: {i}}})-[:ConnectedTo {{distance: {i}}}]->(:Hospital {{n: {}}})",
            i + 100
        ))
        .unwrap();
    }
    s.install(
        "CREATE TRIGGER near AFTER CREATE ON 'Probe' FOR EACH NODE
         WHEN MATCH (a:Hospital)-[ct:ConnectedTo {distance: 7}]->(b:Hospital)
         BEGIN CREATE (:Alert {from: a.n, to: b.n}) END",
    )
    .unwrap();
    s.run("CREATE (:Probe)").unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
    let rows = s
        .run("MATCH (al:Alert) RETURN al.from AS f, al.to AS t")
        .unwrap();
    assert_eq!(rows.rows[0], vec![Value::Int(7), Value::Int(107)]);
}

#[test]
fn indexed_condition_still_fires_triggers_exactly() {
    // The planner must not change trigger semantics: an indexed equality
    // condition fires for the matching item only.
    let mut s = Session::new();
    s.execute("CREATE INDEX ON :Hospital(name)").unwrap();
    for i in 0..50 {
        s.run(&format!("CREATE (:Hospital {{name: 'H{i}'}})"))
            .unwrap();
    }
    s.install(
        "CREATE TRIGGER sacco_admission AFTER CREATE ON 'Admission' FOR EACH NODE
         WHEN MATCH (h:Hospital {name: 'H7'}) WHERE NEW.hospital = h.name
         BEGIN CREATE (:Alert {desc: 'admission at H7'}) END",
    )
    .unwrap();
    s.run("CREATE (:Admission {hospital: 'H3'})").unwrap();
    assert_eq!(count(&mut s, "Alert"), 0);
    s.run("CREATE (:Admission {hospital: 'H7'})").unwrap();
    assert_eq!(count(&mut s, "Alert"), 1);
}
