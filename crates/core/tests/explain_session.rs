//! `EXPLAIN` dispatch through [`Session::execute`].

use pg_graph::GraphView;
use pg_triggers::{ExecResult, Session};

fn session_with_people() -> Session {
    let mut s = Session::new();
    s.execute("CREATE INDEX ON :Person(age)").unwrap();
    s.run("CREATE (:Person {age: 30}), (:Person {age: 40}), (:Person {age: 50})")
        .unwrap();
    s
}

#[test]
fn execute_routes_explain() {
    let mut s = session_with_people();
    let report = match s.execute("EXPLAIN MATCH (p:Person) WHERE p.age = 40 RETURN p") {
        Ok(ExecResult::Explain(r)) => r,
        other => panic!("expected Explain, got {other:?}"),
    };
    assert!(
        report.contains("Seed (p) access=IndexEq(Person.age)"),
        "{report}"
    );
    assert!(report.contains("actual rows: 1"), "{report}");
}

#[test]
fn explain_is_case_insensitive_and_requires_whitespace() {
    let mut s = session_with_people();
    match s.execute("explain MATCH (p:Person) RETURN p") {
        Ok(ExecResult::Explain(r)) => assert!(r.contains("actual rows: 3"), "{r}"),
        other => panic!("expected Explain, got {other:?}"),
    }
    // `EXPLAINED` is not an EXPLAIN statement: it must parse (and fail)
    // as a regular query, not silently explain its suffix.
    assert!(s.execute("EXPLAINED MATCH (p:Person) RETURN p").is_err());
}

#[test]
fn explain_does_not_mutate() {
    let mut s = session_with_people();
    match s.execute("EXPLAIN CREATE (:Person {age: 60})") {
        Ok(ExecResult::Explain(r)) => {
            assert!(r.contains("not executed (updating query)"), "{r}");
        }
        other => panic!("expected Explain, got {other:?}"),
    }
    let n = s
        .run("MATCH (p:Person) RETURN count(*) AS n")
        .unwrap()
        .single()
        .and_then(|v| v.as_i64())
        .unwrap();
    assert_eq!(n, 3, "EXPLAIN of an updating query must not run it");
}

#[test]
fn explain_read_only_query_leaves_graph_unchanged() {
    let mut s = session_with_people();
    let before = s.graph().all_node_ids();
    s.execute("EXPLAIN MATCH (p:Person)-[:KNOWS]->(q) RETURN p, q")
        .unwrap();
    assert_eq!(s.graph().all_node_ids(), before);
}
