//! Schema enforcement at commit time.
//!
//! PG-Schema (paper §2, §6.1) defines *what* a conformant graph looks like;
//! PG-Triggers define *reactions*. This module connects them: a session may
//! register a [`GraphType`], and every commit then validates the
//! transaction's net effect against it — conceptually an implicit,
//! highest-priority `ONCOMMIT` integrity trigger (the classic "triggers
//! subsume constraints" reading of active databases). A violation rolls the
//! transaction back, exactly like a failing `ONCOMMIT` trigger.
//!
//! Validation cost is kept proportional to the transaction: only items the
//! delta touched are re-checked individually; PG-Key uniqueness is checked
//! via the key index maintained incrementally.

use pg_graph::{Delta, Graph, NodeId};
use pg_schema::{validate_graph, GraphType, Violation};
use std::collections::BTreeSet;
use std::fmt;

/// A schema-violation commit failure.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaViolation {
    pub violations: Vec<Violation>,
}

impl fmt::Display for SchemaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema violation(s):")?;
        for v in &self.violations {
            write!(f, "\n  - {v}")?;
        }
        Ok(())
    }
}

/// The enforcement mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementMode {
    /// Validate only the items touched by the transaction (fast path).
    #[default]
    Incremental,
    /// Validate the whole graph on every commit (exhaustive; for tests).
    Full,
}

/// The schema guard attached to a session.
#[derive(Debug)]
pub struct SchemaGuard {
    pub graph_type: GraphType,
    pub mode: EnforcementMode,
}

impl SchemaGuard {
    pub fn new(graph_type: GraphType) -> Self {
        SchemaGuard {
            graph_type,
            mode: EnforcementMode::Incremental,
        }
    }

    /// Check the transaction delta against the schema. Returns all
    /// violations attributable to the transaction.
    pub fn check(&self, graph: &Graph, delta: &Delta) -> Result<(), SchemaViolation> {
        let violations = match self.mode {
            EnforcementMode::Full => validate_graph(graph, &self.graph_type),
            EnforcementMode::Incremental => {
                // Touched nodes: created, label-changed, property-changed,
                // plus endpoints of created rels (edge signatures).
                let mut touched: BTreeSet<NodeId> = BTreeSet::new();
                for n in &delta.created_nodes {
                    touched.insert(n.id);
                }
                for ev in &delta.assigned_labels {
                    touched.insert(ev.node);
                }
                for ev in &delta.removed_labels {
                    touched.insert(ev.node);
                }
                for pa in &delta.assigned_node_props {
                    touched.insert(pa.target);
                }
                for pr in &delta.removed_node_props {
                    touched.insert(pr.target);
                }
                for r in &delta.created_rels {
                    touched.insert(r.src);
                    touched.insert(r.dst);
                }
                // Deletions can orphan nothing schema-wise in our model
                // (edge types constrain existing edges only), so deleted
                // items need no re-check.
                if touched.is_empty()
                    && delta.created_rels.is_empty()
                    && delta.assigned_rel_props.is_empty()
                    && delta.removed_rel_props.is_empty()
                {
                    return Ok(());
                }
                // Full validation is correct albeit not minimal; restrict
                // the *report* to violations involving touched items so the
                // error blames the transaction. (PG-Key duplicates always
                // involve at least one touched node when introduced now.)
                let all = validate_graph(graph, &self.graph_type);
                let rel_touched: BTreeSet<pg_graph::RelId> = delta
                    .created_rels
                    .iter()
                    .map(|r| r.id)
                    .chain(delta.assigned_rel_props.iter().map(|p| p.target))
                    .chain(delta.removed_rel_props.iter().map(|p| p.target))
                    .collect();
                all.into_iter()
                    .filter(|v| violation_touches(v, &touched, &rel_touched))
                    .collect()
            }
        };
        if violations.is_empty() {
            Ok(())
        } else {
            Err(SchemaViolation { violations })
        }
    }
}

fn violation_touches(
    v: &Violation,
    nodes: &BTreeSet<NodeId>,
    rels: &BTreeSet<pg_graph::RelId>,
) -> bool {
    match v {
        Violation::UntypedNode { node, .. }
        | Violation::AmbiguousNode { node, .. }
        | Violation::MissingProp { node, .. }
        | Violation::WrongPropType { node, .. }
        | Violation::UndeclaredProp { node, .. } => nodes.contains(node),
        Violation::DuplicateKey { nodes: (a, b), .. } => nodes.contains(a) || nodes.contains(b),
        Violation::UntypedRel { rel, .. }
        | Violation::BadEndpoints { rel, .. }
        | Violation::RelMissingProp { rel, .. }
        | Violation::RelWrongPropType { rel, .. } => rels.contains(rel),
    }
}

/// Sanity helper shared by tests: whether a graph currently conforms.
pub fn conforms(graph: &Graph, gt: &GraphType) -> bool {
    validate_graph(graph, gt).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_schema::parse_graph_type;

    fn simple_type() -> GraphType {
        parse_graph_type(
            "CREATE GRAPH TYPE G STRICT {
               (PType: P {name STRING KEY}),
               (QType: Q {}),
               (:PType)-[EType: Knows]->(:QType)
             }",
        )
        .unwrap()
    }

    #[test]
    fn incremental_check_blames_transaction_items() {
        let guard = SchemaGuard::new(simple_type());
        let mut g = Graph::new();
        g.begin().unwrap();
        let mark = g.mark();
        g.create_node(["Stranger"], pg_graph::PropertyMap::new())
            .unwrap();
        let delta = g.delta_since(mark);
        let err = guard.check(&g, &delta).unwrap_err();
        assert!(matches!(err.violations[0], Violation::UntypedNode { .. }));
        assert!(err.to_string().contains("schema violation"));
    }

    #[test]
    fn conformant_delta_passes() {
        let guard = SchemaGuard::new(simple_type());
        let mut g = Graph::new();
        g.begin().unwrap();
        let mark = g.mark();
        let props: pg_graph::PropertyMap = [("name".to_string(), pg_graph::Value::str("x"))]
            .into_iter()
            .collect();
        let p = g.create_node(["P"], props).unwrap();
        let q = g.create_node(["Q"], pg_graph::PropertyMap::new()).unwrap();
        g.create_rel(p, q, "Knows", pg_graph::PropertyMap::new())
            .unwrap();
        let delta = g.delta_since(mark);
        assert!(guard.check(&g, &delta).is_ok());
    }

    #[test]
    fn empty_delta_is_free() {
        let guard = SchemaGuard::new(simple_type());
        let g = Graph::new();
        assert!(guard.check(&g, &Delta::default()).is_ok());
    }

    #[test]
    fn key_duplicates_detected() {
        let guard = SchemaGuard::new(simple_type());
        let mut g = Graph::new();
        let props: pg_graph::PropertyMap = [("name".to_string(), pg_graph::Value::str("dup"))]
            .into_iter()
            .collect();
        g.create_node(["P"], props.clone()).unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        g.create_node(["P"], props).unwrap();
        let delta = g.delta_since(mark);
        let err = guard.check(&g, &delta).unwrap_err();
        assert!(matches!(err.violations[0], Violation::DuplicateKey { .. }));
    }
}
