//! Trigger specifications: the AST of `CREATE TRIGGER` (paper Figure 1).

use pg_cypher::Query;
use std::fmt;

/// `<time>`: when the trigger's condition is considered and its action run
/// relative to the activating statement (paper §4.2 "Action Time").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionTime {
    /// Condition sees the pre-statement state; statement restricted to
    /// conditioning the NEW items (property assignments only).
    Before,
    /// Runs after the statement, inside the transaction; cascades.
    After,
    /// Runs at the commit point, inside the same transaction; side effects
    /// are folded in before the actual commit; failure rolls back the whole
    /// transaction.
    OnCommit,
    /// Runs after a successful commit in an autonomous transaction.
    Detached,
}

impl ActionTime {
    pub fn keyword(self) -> &'static str {
        match self {
            ActionTime::Before => "BEFORE",
            ActionTime::After => "AFTER",
            ActionTime::OnCommit => "ONCOMMIT",
            ActionTime::Detached => "DETACHED",
        }
    }
}

/// `<event>`: the kind of change monitored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventType {
    Create,
    Delete,
    /// Setting of a label (`ON 'L'`) or property (`ON 'L'.'p'`).
    Set,
    /// Removal of a label or property.
    Remove,
}

impl EventType {
    pub fn keyword(self) -> &'static str {
        match self {
            EventType::Create => "CREATE",
            EventType::Delete => "DELETE",
            EventType::Set => "SET",
            EventType::Remove => "REMOVE",
        }
    }
}

/// `<item>`: nodes or relationships.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemKind {
    Node,
    Relationship,
}

impl ItemKind {
    pub fn keyword(self) -> &'static str {
        match self {
            ItemKind::Node => "NODE",
            ItemKind::Relationship => "RELATIONSHIP",
        }
    }
}

/// `<granularity>`: `FOR EACH` (item-level) or `FOR ALL` (set-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    Each,
    All,
}

impl Granularity {
    pub fn keyword(self) -> &'static str {
        match self {
            Granularity::Each => "EACH",
            Granularity::All => "ALL",
        }
    }
}

/// Canonical transition-variable names (renameable via `REFERENCING … AS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransitionVar {
    Old,
    New,
    OldNodes,
    NewNodes,
    OldRels,
    NewRels,
}

impl TransitionVar {
    pub fn keyword(self) -> &'static str {
        match self {
            TransitionVar::Old => "OLD",
            TransitionVar::New => "NEW",
            TransitionVar::OldNodes => "OLDNODES",
            TransitionVar::NewNodes => "NEWNODES",
            TransitionVar::OldRels => "OLDRELS",
            TransitionVar::NewRels => "NEWRELS",
        }
    }

    pub fn parse(word: &str) -> Option<TransitionVar> {
        Some(match word.to_ascii_uppercase().as_str() {
            "OLD" => TransitionVar::Old,
            "NEW" => TransitionVar::New,
            "OLDNODES" => TransitionVar::OldNodes,
            "NEWNODES" => TransitionVar::NewNodes,
            "OLDRELS" => TransitionVar::OldRels,
            "NEWRELS" => TransitionVar::NewRels,
            _ => return None,
        })
    }
}

/// A complete trigger definition.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerSpec {
    pub name: String,
    pub time: ActionTime,
    pub event: EventType,
    /// The target label (node label or relationship type), paper §4.2
    /// "Targeting".
    pub label: String,
    /// For `SET`/`REMOVE` events: the monitored property (`ON 'L'.'p'`);
    /// `None` means the label itself is the monitored object.
    pub property: Option<String>,
    /// `REFERENCING <var> AS <alias>` renamings.
    pub referencing: Vec<(TransitionVar, String)>,
    pub granularity: Granularity,
    pub item: ItemKind,
    /// `WHEN` condition: a read-only clause pipeline; the condition holds
    /// for an activation when at least one binding row survives it.
    pub condition: Option<Query>,
    /// The `BEGIN … END` body.
    pub statement: Query,
}

impl TriggerSpec {
    /// The effective (post-renaming) name of a transition variable.
    pub fn var_name(&self, var: TransitionVar) -> String {
        self.referencing
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, alias)| alias.clone())
            .unwrap_or_else(|| var.keyword().to_string())
    }
}

impl TriggerSpec {
    /// Regenerate complete, re-parseable Figure 1 DDL (condition and
    /// statement unparsed from their ASTs). `parse_trigger_ddl(spec.to_ddl())`
    /// yields an equivalent spec — the round-trip is tested.
    pub fn to_ddl(&self) -> String {
        let mut out = format!(
            "CREATE TRIGGER {} {} {}\nON '{}'",
            self.name,
            self.time.keyword(),
            self.event.keyword(),
            self.label
        );
        if let Some(p) = &self.property {
            out.push_str(&format!(".'{p}'"));
        }
        out.push('\n');
        for (v, alias) in &self.referencing {
            out.push_str(&format!("REFERENCING {} AS {alias}\n", v.keyword()));
        }
        out.push_str(&format!(
            "FOR {} {}\n",
            self.granularity.keyword(),
            match (self.granularity, self.item) {
                (Granularity::All, ItemKind::Node) => "NODES",
                (Granularity::All, ItemKind::Relationship) => "RELATIONSHIPS",
                (Granularity::Each, k) => k.keyword(),
            }
        ));
        if let Some(cond) = &self.condition {
            out.push_str(&format!("WHEN {}\n", pg_cypher::unparse_query(cond)));
        }
        out.push_str(&format!(
            "BEGIN\n  {}\nEND",
            pg_cypher::unparse_query(&self.statement)
        ));
        out
    }
}

impl fmt::Display for TriggerSpec {
    /// Regenerates Figure 1-style DDL (used by the paper-artifact harness).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE TRIGGER {} {} {}\nON '{}'",
            self.name,
            self.time.keyword(),
            self.event.keyword(),
            self.label
        )?;
        if let Some(p) = &self.property {
            write!(f, ".'{p}'")?;
        }
        writeln!(f)?;
        for (v, alias) in &self.referencing {
            writeln!(f, "REFERENCING {} AS {alias}", v.keyword())?;
        }
        writeln!(
            f,
            "FOR {} {}",
            self.granularity.keyword(),
            match (self.granularity, self.item) {
                (Granularity::All, ItemKind::Node) => "NODES",
                (Granularity::All, ItemKind::Relationship) => "RELATIONSHIPS",
                (Granularity::Each, k) => k.keyword(),
            }
        )?;
        if self.condition.is_some() {
            writeln!(f, "WHEN <condition>")?;
        }
        write!(f, "BEGIN <statement> END")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for v in [
            TransitionVar::Old,
            TransitionVar::New,
            TransitionVar::OldNodes,
            TransitionVar::NewNodes,
            TransitionVar::OldRels,
            TransitionVar::NewRels,
        ] {
            assert_eq!(TransitionVar::parse(v.keyword()), Some(v));
        }
        assert_eq!(TransitionVar::parse("nope"), None);
        assert_eq!(
            TransitionVar::parse("newnodes"),
            Some(TransitionVar::NewNodes)
        );
    }

    #[test]
    fn var_name_respects_referencing() {
        let spec = TriggerSpec {
            name: "t".into(),
            time: ActionTime::After,
            event: EventType::Create,
            label: "L".into(),
            property: None,
            referencing: vec![(TransitionVar::New, "fresh".into())],
            granularity: Granularity::Each,
            item: ItemKind::Node,
            condition: None,
            statement: pg_cypher::parse_query("RETURN 1").unwrap(),
        };
        assert_eq!(spec.var_name(TransitionVar::New), "fresh");
        assert_eq!(spec.var_name(TransitionVar::Old), "OLD");
        let ddl = spec.to_string();
        assert!(ddl.contains("CREATE TRIGGER t AFTER CREATE"));
        assert!(ddl.contains("REFERENCING NEW AS fresh"));
    }

    #[test]
    fn to_ddl_round_trips() {
        let src = "CREATE TRIGGER rt AFTER SET ON 'Lineage'.'who' FOR EACH NODE
                   WHEN OLD.who <> NEW.who
                   BEGIN CREATE (:Alert {was: OLD.who, now: NEW.who}) END";
        let spec = match crate::ddl::parse_trigger_ddl(src).unwrap() {
            crate::ddl::DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        };
        let regenerated = spec.to_ddl();
        let spec2 = match crate::ddl::parse_trigger_ddl(&regenerated).unwrap() {
            crate::ddl::DdlStatement::CreateTrigger(s) => s,
            other => panic!("regenerated DDL failed to parse: {regenerated}\n{other:?}"),
        };
        assert_eq!(spec.name, spec2.name);
        assert_eq!(spec.time, spec2.time);
        assert_eq!(spec.event, spec2.event);
        assert_eq!(spec.label, spec2.label);
        assert_eq!(spec.property, spec2.property);
        assert_eq!(spec.granularity, spec2.granularity);
        assert_eq!(spec.item, spec2.item);
        assert_eq!(spec.condition, spec2.condition);
        assert_eq!(spec.statement, spec2.statement);
    }

    #[test]
    fn paper_triggers_ddl_round_trip() {
        // All pipeline shapes used by the §6.2 triggers must survive
        // to_ddl → parse. (The covid crate depends on us, so inline the
        // two structurally hardest shapes here.)
        for src in [
            "CREATE TRIGGER a AFTER CREATE ON 'Mutation' FOR EACH NODE
             WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
             BEGIN CREATE (:Alert{mutation: NEW.name}) END",
            "CREATE TRIGGER b AFTER CREATE ON 'IcuPatient' FOR ALL NODES
             WHEN MATCH (p:IcuPatient)-[:TreatedAt]-(:Hospital{name:'Sacco'})
                  WITH COUNT(DISTINCT p) AS n WHERE n > 50
             BEGIN CREATE (:Alert) END",
        ] {
            let spec = match crate::ddl::parse_trigger_ddl(src).unwrap() {
                crate::ddl::DdlStatement::CreateTrigger(s) => s,
                _ => panic!(),
            };
            let spec2 = match crate::ddl::parse_trigger_ddl(&spec.to_ddl()) {
                Ok(crate::ddl::DdlStatement::CreateTrigger(s)) => s,
                other => panic!("{}:\n{other:?}", spec.to_ddl()),
            };
            assert_eq!(spec.condition, spec2.condition, "{}", spec.to_ddl());
            assert_eq!(spec.statement, spec2.statement);
        }
    }
}
