//! The view `BEFORE` trigger conditions evaluate against.
//!
//! SQL3 `BEFORE` semantics adapted to graphs (paper §4.2): the condition
//! observes the database as it was **before** the activating statement —
//! scans (`MATCH` over labels, full scans, adjacency) see the pre-state —
//! while the statement's NEW items expose their proposed (post-statement)
//! record state through **direct reference**: that is what
//! `NEW.icuBeds < 0` must read. This mirrors relational BEFORE triggers,
//! where table scans do not see the incoming row but the `NEW` record
//! variable does.

use pg_graph::{
    CompositeTrailing, Direction, Graph, GraphView, NodeId, PreStateView, RelId, Value,
};
use std::collections::BTreeSet;
use std::ops::Bound;

/// Pre-statement state overlaid with the post-state of the NEW items.
pub struct NewStateOverlay<'g> {
    pre: PreStateView<'g>,
    post: &'g Graph,
    new_nodes: BTreeSet<NodeId>,
    new_rels: BTreeSet<RelId>,
}

impl<'g> NewStateOverlay<'g> {
    pub fn new(
        pre: PreStateView<'g>,
        post: &'g Graph,
        new_items: impl IntoIterator<Item = pg_graph::ItemRef>,
    ) -> Self {
        let mut new_nodes = BTreeSet::new();
        let mut new_rels = BTreeSet::new();
        for item in new_items {
            match item {
                pg_graph::ItemRef::Node(n) => {
                    new_nodes.insert(n);
                }
                pg_graph::ItemRef::Rel(r) => {
                    new_rels.insert(r);
                }
            }
        }
        NewStateOverlay {
            pre,
            post,
            new_nodes,
            new_rels,
        }
    }
}

impl GraphView for NewStateOverlay<'_> {
    fn node_exists(&self, id: NodeId) -> bool {
        if self.new_nodes.contains(&id) {
            self.post.node_exists(id)
        } else {
            self.pre.node_exists(id)
        }
    }

    fn rel_exists(&self, id: RelId) -> bool {
        if self.new_rels.contains(&id) {
            self.post.rel_exists(id)
        } else {
            self.pre.rel_exists(id)
        }
    }

    fn node_labels(&self, id: NodeId) -> Vec<String> {
        if self.new_nodes.contains(&id) {
            self.post.node_labels(id)
        } else {
            self.pre.node_labels(id)
        }
    }

    fn node_has_label(&self, id: NodeId, label: &str) -> bool {
        if self.new_nodes.contains(&id) {
            self.post.node_has_label(id, label)
        } else {
            self.pre.node_has_label(id, label)
        }
    }

    fn node_prop(&self, id: NodeId, key: &str) -> Option<Value> {
        if self.new_nodes.contains(&id) {
            self.post.node_prop(id, key)
        } else {
            self.pre.node_prop(id, key)
        }
    }

    fn node_prop_keys(&self, id: NodeId) -> Vec<String> {
        if self.new_nodes.contains(&id) {
            self.post.node_prop_keys(id)
        } else {
            self.pre.node_prop_keys(id)
        }
    }

    fn rel_type(&self, id: RelId) -> Option<String> {
        if self.new_rels.contains(&id) {
            self.post.rel_type(id)
        } else {
            self.pre.rel_type(id)
        }
    }

    fn rel_prop(&self, id: RelId, key: &str) -> Option<Value> {
        if self.new_rels.contains(&id) {
            self.post.rel_prop(id, key)
        } else {
            self.pre.rel_prop(id, key)
        }
    }

    fn rel_prop_keys(&self, id: RelId) -> Vec<String> {
        if self.new_rels.contains(&id) {
            self.post.rel_prop_keys(id)
        } else {
            self.pre.rel_prop_keys(id)
        }
    }

    fn rel_endpoints(&self, id: RelId) -> Option<(NodeId, NodeId)> {
        if self.new_rels.contains(&id) {
            self.post.rel_endpoints(id)
        } else {
            self.pre.rel_endpoints(id)
        }
    }

    // Scans observe the pre-statement state only (SQL-style: a BEFORE
    // INSERT trigger's table scans do not see the incoming row). The same
    // goes for the index-backed scans and the count-only planning probes:
    // they pass through to the pre-state view, which answers them from the
    // base graph's indexes corrected by the statement overlay.

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.pre.nodes_with_label(label)
    }

    fn label_cardinality(&self, label: &str) -> usize {
        self.pre.label_cardinality(label)
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        self.pre.all_node_ids()
    }

    fn all_rel_ids(&self) -> Vec<RelId> {
        self.pre.all_rel_ids()
    }

    fn rels_of(&self, node: NodeId, dir: Direction) -> Vec<RelId> {
        self.pre.rels_of(node, dir)
    }

    fn rels_with_type(&self, rel_type: &str) -> Vec<RelId> {
        self.pre.rels_with_type(rel_type)
    }

    fn nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        self.pre.nodes_with_prop(label, key, value)
    }

    fn nodes_in_prop_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<NodeId>> {
        self.pre.nodes_in_prop_range(label, key, lower, upper)
    }

    fn nodes_with_prop_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<Vec<NodeId>> {
        self.pre.nodes_with_prop_prefix(label, key, prefix)
    }

    fn rels_with_prop(&self, rel_type: &str, key: &str, value: &Value) -> Option<Vec<RelId>> {
        self.pre.rels_with_prop(rel_type, key, value)
    }

    fn rels_in_prop_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<Vec<RelId>> {
        self.pre.rels_in_prop_range(rel_type, key, lower, upper)
    }

    fn rel_type_cardinality(&self, rel_type: &str) -> usize {
        self.pre.rel_type_cardinality(rel_type)
    }

    fn node_count_estimate(&self) -> usize {
        self.pre.node_count_estimate()
    }

    fn rel_count_estimate(&self) -> usize {
        self.pre.rel_count_estimate()
    }

    fn count_nodes_with_prop(&self, label: &str, key: &str, value: &Value) -> Option<usize> {
        self.pre.count_nodes_with_prop(label, key, value)
    }

    fn count_nodes_in_prop_range(
        &self,
        label: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.pre.count_nodes_in_prop_range(label, key, lower, upper)
    }

    fn count_nodes_with_prop_prefix(&self, label: &str, key: &str, prefix: &str) -> Option<usize> {
        self.pre.count_nodes_with_prop_prefix(label, key, prefix)
    }

    fn count_rels_with_prop(&self, rel_type: &str, key: &str, value: &Value) -> Option<usize> {
        self.pre.count_rels_with_prop(rel_type, key, value)
    }

    fn count_rels_in_prop_range(
        &self,
        rel_type: &str,
        key: &str,
        lower: Bound<&Value>,
        upper: Bound<&Value>,
    ) -> Option<usize> {
        self.pre
            .count_rels_in_prop_range(rel_type, key, lower, upper)
    }

    fn node_composite_defs(&self, label: &str) -> Vec<Vec<String>> {
        self.pre.node_composite_defs(label)
    }

    fn rel_composite_defs(&self, rel_type: &str) -> Vec<Vec<String>> {
        self.pre.rel_composite_defs(rel_type)
    }

    fn nodes_with_composite(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<NodeId>> {
        self.pre.nodes_with_composite(label, columns, eq, trailing)
    }

    fn count_nodes_with_composite(
        &self,
        label: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        self.pre
            .count_nodes_with_composite(label, columns, eq, trailing)
    }

    fn rels_with_composite(
        &self,
        rel_type: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<Vec<RelId>> {
        self.pre
            .rels_with_composite(rel_type, columns, eq, trailing)
    }

    fn count_rels_with_composite(
        &self,
        rel_type: &str,
        columns: &[String],
        eq: &[Value],
        trailing: CompositeTrailing<'_>,
    ) -> Option<usize> {
        self.pre
            .count_rels_with_composite(rel_type, columns, eq, trailing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_graph::{ItemRef, PropertyMap};

    #[test]
    fn overlay_shows_new_items_post_state_rest_pre_state() {
        let mut g = Graph::new();
        let old = g
            .create_node(
                ["P"],
                [("v".to_string(), Value::Int(1))]
                    .into_iter()
                    .collect::<PropertyMap>(),
            )
            .unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        // statement: modify old node AND create a fresh node
        g.set_node_prop(old, "v", Value::Int(2)).unwrap();
        let fresh = g.create_node(["P"], PropertyMap::new()).unwrap();
        let ops = g.ops_since(mark).to_vec();

        // Only `fresh` is a NEW item here (e.g. a CREATE trigger on P).
        let pre = PreStateView::new(&g, &ops);
        let view = NewStateOverlay::new(pre, &g, [ItemRef::Node(fresh)]);
        // fresh visible through direct reference (post-state)
        assert!(view.node_exists(fresh));
        assert!(view.node_has_label(fresh, "P"));
        // old node reads pre-state value
        assert_eq!(view.node_prop(old, "v"), Some(Value::Int(1)));
        // scans see only the pre-state
        assert_eq!(view.nodes_with_label("P"), vec![old]);
        assert_eq!(view.all_node_ids(), vec![old]);
    }

    #[test]
    fn count_probes_pass_through_to_pre_state() {
        let mut g = Graph::new();
        for i in 0..10 {
            g.create_node(
                ["P"],
                [("v".to_string(), Value::Int(i))]
                    .into_iter()
                    .collect::<PropertyMap>(),
            )
            .unwrap();
        }
        g.create_index("P", "v");
        g.begin().unwrap();
        let mark = g.mark();
        // statement: one more v=3 node plus an edit of an existing one
        let fresh = g
            .create_node(
                ["P"],
                [("v".to_string(), Value::Int(3))]
                    .into_iter()
                    .collect::<PropertyMap>(),
            )
            .unwrap();
        let ops = g.ops_since(mark).to_vec();
        let pre = PreStateView::new(&g, &ops);
        let view = NewStateOverlay::new(pre, &g, [ItemRef::Node(fresh)]);
        // the count probe sees the pre-state: exactly one v=3 node
        assert_eq!(
            view.count_nodes_with_prop("P", "v", &Value::Int(3)),
            Some(1)
        );
        assert_eq!(
            view.count_nodes_in_prop_range(
                "P",
                "v",
                std::ops::Bound::Included(&Value::Int(0)),
                std::ops::Bound::Unbounded
            ),
            Some(10)
        );
        assert_eq!(view.node_count_estimate(), 10);
        assert_eq!(view.rel_count_estimate(), 0);
    }

    #[test]
    fn overlay_exposes_new_rel_adjacency() {
        let mut g = Graph::new();
        let a = g.create_node(["A"], PropertyMap::new()).unwrap();
        let b = g.create_node(["B"], PropertyMap::new()).unwrap();
        g.begin().unwrap();
        let mark = g.mark();
        let r = g.create_rel(a, b, "R", PropertyMap::new()).unwrap();
        let ops = g.ops_since(mark).to_vec();
        let pre = PreStateView::new(&g, &ops);
        let view = NewStateOverlay::new(pre, &g, [ItemRef::Rel(r)]);
        // direct reference sees the proposed relationship…
        assert_eq!(view.rel_type(r), Some("R".to_string()));
        assert_eq!(view.rel_endpoints(r), Some((a, b)));
        // …but scans and adjacency see the pre-state
        assert!(view.rels_of(a, Direction::Out).is_empty());
        assert!(view.all_rel_ids().is_empty());
    }
}
