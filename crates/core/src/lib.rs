//! # pg-triggers — PG-Triggers for property graphs
//!
//! The reference implementation of **PG-Triggers: Triggers for Property
//! Graphs** (Ceri et al., SIGMOD-Companion 2024): SQL3-style ECA triggers
//! adapted to the property-graph data model.
//!
//! * **Syntax** — [`ddl`] parses the paper's Figure 1 grammar
//!   (`CREATE TRIGGER <name> <time> <event> ON <label>[.<property>] …`).
//! * **Semantics** — [`session::Session`] implements §4.2: label-based
//!   targeting, `FOR EACH`/`FOR ALL` granularity with `OLD`/`NEW`/
//!   `OLDNODES`/`NEWNODES`/`OLDRELS`/`NEWRELS` transition variables,
//!   `BEFORE`/`AFTER`/`ONCOMMIT`/`DETACHED` action times, creation-time
//!   activation order, SQL3-style cascading with a bounded context stack,
//!   and the target-label protection rule.
//! * **Termination analysis** — [`termination`] builds the Baralis–Ceri–
//!   Widom triggering graph and reports cycles.
//!
//! ```
//! use pg_triggers::Session;
//!
//! let mut session = Session::new();
//! session.install(
//!     "CREATE TRIGGER NewCriticalMutation
//!      AFTER CREATE ON 'Mutation' FOR EACH NODE
//!      WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
//!      BEGIN
//!        CREATE (:Alert{time: DATETIME(), desc: 'New critical mutation',
//!                       mutation: NEW.name})
//!      END",
//! ).unwrap();
//!
//! session.run("CREATE (:CriticalEffect {description: 'Enhanced infectivity'})").unwrap();
//! session.run(
//!     "MATCH (e:CriticalEffect)
//!      CREATE (:Mutation {name: 'Spike:D614G'})-[:Risk]->(e)",
//! ).unwrap();
//!
//! let alerts = session.run("MATCH (a:Alert) RETURN count(*) AS n").unwrap();
//! assert_eq!(alerts.single().and_then(|v| v.as_i64()), Some(1));
//! ```

pub mod binding;
pub mod catalog;
pub mod ddl;
pub mod error;
pub mod overlay;
pub mod read_session;
pub mod schema_guard;
pub mod session;
pub mod spec;
pub mod termination;

pub use catalog::{DeltaSignature, InstalledTrigger, OrderPolicy, TriggerCatalog};
// The durability layer, re-exported so downstream crates can open durable
// sessions without a direct `pg-wal` dependency.
pub use ddl::{
    is_index_ddl, is_trigger_ddl, parse_index_ddl, parse_trigger_ddl, DdlStatement, IndexDdl,
};
pub use error::{InstallError, TriggerError};
pub use pg_wal as wal;
pub use pg_wal::{
    RecoveryError, RecoveryOptions, RecoveryReport, SyncPolicy, WalError, WalOptions,
};
pub use read_session::ReadSession;
pub use schema_guard::{EnforcementMode, SchemaGuard, SchemaViolation};
pub use session::{EngineConfig, EngineStats, ExecResult, Session};
pub use spec::{ActionTime, EventType, Granularity, ItemKind, TransitionVar, TriggerSpec};
pub use termination::{analyze, TerminationReport};
