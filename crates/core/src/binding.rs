//! Transition-variable binding: from a [`Delta`] to the seed rows a trigger
//! activation runs with (paper §4.2 "Transition Variables" and Table 3).
//!
//! Binding rules:
//!
//! | event               | `NEW`                     | `OLD`                              |
//! |---------------------|---------------------------|------------------------------------|
//! | node/rel creation   | the live item             | —                                  |
//! | node/rel deletion   | —                         | deletion-time record as a map      |
//! | label set           | the live node             | pre-statement record as a map      |
//! | label removal       | the live node             | pre-statement record as a map      |
//! | property set        | the live item             | pre-statement record as a map      |
//! | property removal    | the live item             | pre-statement record as a map      |
//!
//! With `FOR ALL` granularity the same values are delivered as aligned lists
//! through `NEWNODES`/`OLDNODES`/`NEWRELS`/`OLDRELS`. `REFERENCING … AS`
//! renames apply. `OLD` maps carry the *full* pre-state of the item (a
//! superset of APOC's ⟨item, property, old⟩ triples — `OLD.p` reads the old
//! value of any property, which is what the paper's
//! `WHEN OLD.whoDesignation <> NEW.whoDesignation` needs).

use crate::spec::{EventType, Granularity, ItemKind, TransitionVar, TriggerSpec};
use pg_cypher::Row;
use pg_graph::{Delta, GraphView, NodeId, RelId, Value};

/// The items a trigger activation is about: per item an optional NEW
/// reference and an optional OLD snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Affected {
    /// `(new_ref, old_snapshot)` per affected item, in delta order.
    pub items: Vec<(Option<Value>, Option<Value>)>,
}

impl Affected {
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The NEW item references (for the BEFORE write policy).
    pub fn new_refs(&self) -> Vec<pg_graph::ItemRef> {
        self.items
            .iter()
            .filter_map(|(n, _)| match n {
                Some(Value::Node(id)) => Some(pg_graph::ItemRef::Node(*id)),
                Some(Value::Rel(id)) => Some(pg_graph::ItemRef::Rel(*id)),
                _ => None,
            })
            .collect()
    }
}

/// Materialize a node's state (from any view) as a map value.
fn node_snapshot(view: &dyn GraphView, id: NodeId) -> Value {
    let mut m = std::collections::BTreeMap::new();
    for k in view.node_prop_keys(id) {
        if let Some(v) = view.node_prop(id, &k) {
            m.insert(k, v);
        }
    }
    let mut labels = view.node_labels(id);
    labels.sort();
    m.insert(
        "__labels".to_string(),
        Value::List(labels.into_iter().map(Value::Str).collect()),
    );
    m.insert("__id".to_string(), Value::Int(id.0 as i64));
    Value::Map(m)
}

/// Materialize a relationship's state as a map value.
fn rel_snapshot(view: &dyn GraphView, id: RelId) -> Value {
    let mut m = std::collections::BTreeMap::new();
    for k in view.rel_prop_keys(id) {
        if let Some(v) = view.rel_prop(id, &k) {
            m.insert(k, v);
        }
    }
    if let Some(t) = view.rel_type(id) {
        m.insert("__type".to_string(), Value::Str(t));
    }
    if let Some((s, d)) = view.rel_endpoints(id) {
        m.insert("__src".to_string(), Value::Int(s.0 as i64));
        m.insert("__dst".to_string(), Value::Int(d.0 as i64));
    }
    m.insert("__id".to_string(), Value::Int(id.0 as i64));
    Value::Map(m)
}

/// Compute the items of `delta` this trigger is about. `pre` is the
/// pre-statement view (used to build OLD snapshots); `post` is the current
/// state (used to check the target label of property events).
pub fn affected_items(
    spec: &TriggerSpec,
    delta: &Delta,
    pre: &dyn GraphView,
    post: &dyn GraphView,
) -> Affected {
    let mut out = Affected::default();
    match (spec.event, spec.item) {
        (EventType::Create, ItemKind::Node) => {
            for rec in &delta.created_nodes {
                if rec.has_label(&spec.label) {
                    out.items.push((Some(Value::Node(rec.id)), None));
                }
            }
        }
        (EventType::Create, ItemKind::Relationship) => {
            for rec in &delta.created_rels {
                if rec.rel_type == spec.label {
                    out.items.push((Some(Value::Rel(rec.id)), None));
                }
            }
        }
        (EventType::Delete, ItemKind::Node) => {
            for rec in &delta.deleted_nodes {
                if rec.has_label(&spec.label) {
                    out.items.push((None, Some(rec.to_value())));
                }
            }
        }
        (EventType::Delete, ItemKind::Relationship) => {
            for rec in &delta.deleted_rels {
                if rec.rel_type == spec.label {
                    out.items.push((None, Some(rec.to_value())));
                }
            }
        }
        (EventType::Set, ItemKind::Node) => match &spec.property {
            None => {
                // label-set events for the target label
                for ev in &delta.assigned_labels {
                    if ev.label == spec.label {
                        out.items.push((
                            Some(Value::Node(ev.node)),
                            Some(node_snapshot(pre, ev.node)),
                        ));
                    }
                }
            }
            Some(p) => {
                for pa in &delta.assigned_node_props {
                    if &pa.key == p && post.node_has_label(pa.target, &spec.label) {
                        out.items.push((
                            Some(Value::Node(pa.target)),
                            Some(node_snapshot(pre, pa.target)),
                        ));
                    }
                }
            }
        },
        (EventType::Set, ItemKind::Relationship) => {
            if let Some(p) = &spec.property {
                for pa in &delta.assigned_rel_props {
                    if &pa.key == p && post.rel_type(pa.target).as_deref() == Some(&spec.label) {
                        out.items.push((
                            Some(Value::Rel(pa.target)),
                            Some(rel_snapshot(pre, pa.target)),
                        ));
                    }
                }
            }
        }
        (EventType::Remove, ItemKind::Node) => match &spec.property {
            None => {
                for ev in &delta.removed_labels {
                    if ev.label == spec.label {
                        out.items.push((
                            Some(Value::Node(ev.node)),
                            Some(node_snapshot(pre, ev.node)),
                        ));
                    }
                }
            }
            Some(p) => {
                for pr in &delta.removed_node_props {
                    if &pr.key == p && post.node_has_label(pr.target, &spec.label) {
                        out.items.push((
                            Some(Value::Node(pr.target)),
                            Some(node_snapshot(pre, pr.target)),
                        ));
                    }
                }
            }
        },
        (EventType::Remove, ItemKind::Relationship) => {
            if let Some(p) = &spec.property {
                for pr in &delta.removed_rel_props {
                    if &pr.key == p && post.rel_type(pr.target).as_deref() == Some(&spec.label) {
                        out.items.push((
                            Some(Value::Rel(pr.target)),
                            Some(rel_snapshot(pre, pr.target)),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Build the seed rows for an activation: one row per item (`FOR EACH`) or
/// a single row with list bindings (`FOR ALL`).
pub fn seed_rows(spec: &TriggerSpec, affected: &Affected) -> Vec<Row> {
    if affected.is_empty() {
        return Vec::new();
    }
    match spec.granularity {
        Granularity::Each => {
            let new_name = spec.var_name(TransitionVar::New);
            let old_name = spec.var_name(TransitionVar::Old);
            affected
                .items
                .iter()
                .map(|(new, old)| {
                    let mut row = Row::new();
                    if let Some(n) = new {
                        row.set(new_name.clone(), n.clone());
                    }
                    if let Some(o) = old {
                        row.set(old_name.clone(), o.clone());
                    }
                    row
                })
                .collect()
        }
        Granularity::All => {
            let (new_var, old_var) = match spec.item {
                ItemKind::Node => (TransitionVar::NewNodes, TransitionVar::OldNodes),
                ItemKind::Relationship => (TransitionVar::NewRels, TransitionVar::OldRels),
            };
            let mut row = Row::new();
            let news: Vec<Value> = affected
                .items
                .iter()
                .filter_map(|(n, _)| n.clone())
                .collect();
            let olds: Vec<Value> = affected
                .items
                .iter()
                .filter_map(|(_, o)| o.clone())
                .collect();
            if !news.is_empty() {
                row.set(spec.var_name(new_var), Value::List(news));
            }
            if !olds.is_empty() {
                row.set(spec.var_name(old_var), Value::List(olds));
            }
            vec![row]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{parse_trigger_ddl, DdlStatement};
    use pg_graph::{Graph, PreStateView, PropertyMap};

    fn spec(src: &str) -> TriggerSpec {
        match parse_trigger_ddl(src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    fn props(entries: &[(&str, Value)]) -> PropertyMap {
        entries
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Run `stmt` inside a tx and return (graph, delta, ops).
    fn capture(
        setup: impl FnOnce(&mut Graph) -> Vec<NodeId>,
        stmt: impl FnOnce(&mut Graph, &[NodeId]),
    ) -> (Graph, Delta, Vec<pg_graph::Op>) {
        let mut g = Graph::new();
        let ids = setup(&mut g);
        g.begin().unwrap();
        let mark = g.mark();
        stmt(&mut g, &ids);
        let delta = g.delta_since(mark);
        let ops = g.ops_since(mark).to_vec();
        (g, delta, ops)
    }

    #[test]
    fn create_node_binds_new() {
        let t =
            spec("CREATE TRIGGER t AFTER CREATE ON 'Mutation' FOR EACH NODE BEGIN CREATE (:X) END");
        let (g, delta, ops) = capture(
            |_| vec![],
            |g, _| {
                g.create_node(["Mutation"], PropertyMap::new()).unwrap();
                g.create_node(["Other"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        assert_eq!(aff.len(), 1);
        let rows = seed_rows(&t, &aff);
        assert_eq!(rows.len(), 1);
        assert!(matches!(rows[0].get("NEW"), Some(Value::Node(_))));
        assert!(rows[0].get("OLD").is_none());
    }

    #[test]
    fn delete_node_binds_old_map() {
        let t = spec("CREATE TRIGGER t AFTER DELETE ON 'P' FOR EACH NODE BEGIN CREATE (:X) END");
        let (g, delta, ops) = capture(
            |g| {
                vec![g
                    .create_node(["P"], props(&[("name", Value::str("gone"))]))
                    .unwrap()]
            },
            |g, ids| g.detach_delete_node(ids[0]).unwrap(),
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        let rows = seed_rows(&t, &aff);
        assert_eq!(rows.len(), 1);
        match rows[0].get("OLD") {
            Some(Value::Map(m)) => assert_eq!(m["name"], Value::str("gone")),
            other => panic!("unexpected {other:?}"),
        }
        assert!(rows[0].get("NEW").is_none());
    }

    #[test]
    fn property_set_binds_old_and_new() {
        let t = spec(
            "CREATE TRIGGER t AFTER SET ON 'Lineage'.'whoDesignation' FOR EACH NODE BEGIN CREATE (:X) END",
        );
        let (g, delta, ops) = capture(
            |g| {
                vec![g
                    .create_node(
                        ["Lineage"],
                        props(&[("whoDesignation", Value::str("Indian"))]),
                    )
                    .unwrap()]
            },
            |g, ids| {
                g.set_node_prop(ids[0], "whoDesignation", Value::str("Delta"))
                    .unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        let rows = seed_rows(&t, &aff);
        assert_eq!(rows.len(), 1);
        // OLD.whoDesignation = Indian (pre-state map); NEW = live node with Delta
        match rows[0].get("OLD") {
            Some(Value::Map(m)) => assert_eq!(m["whoDesignation"], Value::str("Indian")),
            other => panic!("unexpected {other:?}"),
        }
        match rows[0].get("NEW") {
            Some(Value::Node(n)) => {
                assert_eq!(g.node_prop(*n, "whoDesignation"), Some(Value::str("Delta")))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn property_event_filters_by_target_label() {
        let t =
            spec("CREATE TRIGGER t AFTER SET ON 'Lineage'.'x' FOR EACH NODE BEGIN CREATE (:X) END");
        let (g, delta, ops) = capture(
            |g| {
                vec![
                    g.create_node(["Lineage"], props(&[("x", Value::Int(1))]))
                        .unwrap(),
                    g.create_node(["Other"], props(&[("x", Value::Int(1))]))
                        .unwrap(),
                ]
            },
            |g, ids| {
                g.set_node_prop(ids[0], "x", Value::Int(2)).unwrap();
                g.set_node_prop(ids[1], "x", Value::Int(2)).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        assert_eq!(aff.len(), 1);
    }

    #[test]
    fn label_set_event() {
        let t = spec("CREATE TRIGGER t AFTER SET ON 'Flagged' FOR EACH NODE BEGIN CREATE (:X) END");
        let (g, delta, ops) = capture(
            |g| vec![g.create_node(["P"], PropertyMap::new()).unwrap()],
            |g, ids| {
                g.set_label(ids[0], "Flagged").unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        assert_eq!(aff.len(), 1);
        let rows = seed_rows(&t, &aff);
        assert!(matches!(rows[0].get("NEW"), Some(Value::Node(_))));
        // OLD snapshot shows the pre-state without the label
        match rows[0].get("OLD") {
            Some(Value::Map(m)) => {
                assert_eq!(m["__labels"], Value::list([Value::str("P")]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_granularity_builds_lists() {
        let t = spec(
            "CREATE TRIGGER t AFTER CREATE ON 'IcuPatient' FOR ALL NODES BEGIN CREATE (:X) END",
        );
        let (g, delta, ops) = capture(
            |_| vec![],
            |g, _| {
                for _ in 0..3 {
                    g.create_node(["IcuPatient"], PropertyMap::new()).unwrap();
                }
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let aff = affected_items(&t, &delta, &pre, &g);
        let rows = seed_rows(&t, &aff);
        assert_eq!(rows.len(), 1);
        match rows[0].get("NEWNODES") {
            Some(Value::List(items)) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn referencing_renames_bindings() {
        let t = spec(
            "CREATE TRIGGER t AFTER CREATE ON 'P'
             REFERENCING NEWNODES AS admitted
             FOR ALL NODES BEGIN CREATE (:X) END",
        );
        let (g, delta, ops) = capture(
            |_| vec![],
            |g, _| {
                g.create_node(["P"], PropertyMap::new()).unwrap();
            },
        );
        let pre = PreStateView::new(&g, &ops);
        let rows = seed_rows(&t, &affected_items(&t, &delta, &pre, &g));
        assert!(rows[0].get("admitted").is_some());
        assert!(rows[0].get("NEWNODES").is_none());
    }

    #[test]
    fn rel_create_and_prop_events() {
        let t_create = spec(
            "CREATE TRIGGER t AFTER CREATE ON 'BelongsTo' FOR EACH RELATIONSHIP BEGIN CREATE (:X) END",
        );
        let t_set = spec(
            "CREATE TRIGGER s AFTER SET ON 'BelongsTo'.'conf' FOR EACH RELATIONSHIP BEGIN CREATE (:X) END",
        );
        let (g, delta, ops) = capture(
            |g| {
                let a = g.create_node(["Sequence"], PropertyMap::new()).unwrap();
                let b = g.create_node(["Lineage"], PropertyMap::new()).unwrap();
                vec![a, b]
            },
            |g, ids| {
                let r = g
                    .create_rel(ids[0], ids[1], "BelongsTo", PropertyMap::new())
                    .unwrap();
                let _ = r;
            },
        );
        let pre = PreStateView::new(&g, &ops);
        assert_eq!(affected_items(&t_create, &delta, &pre, &g).len(), 1);
        assert_eq!(affected_items(&t_set, &delta, &pre, &g).len(), 0);

        // now a property set on the existing rel
        let (g2, delta2, ops2) = capture(
            |g| {
                let a = g.create_node(["Sequence"], PropertyMap::new()).unwrap();
                let b = g.create_node(["Lineage"], PropertyMap::new()).unwrap();
                g.create_rel(a, b, "BelongsTo", PropertyMap::new()).unwrap();
                vec![]
            },
            |g, _| {
                let r = g.all_rel_ids()[0];
                g.set_rel_prop(r, "conf", Value::Float(0.9)).unwrap();
            },
        );
        let pre2 = PreStateView::new(&g2, &ops2);
        assert_eq!(affected_items(&t_set, &delta2, &pre2, &g2).len(), 1);
        assert_eq!(affected_items(&t_create, &delta2, &pre2, &g2).len(), 0);
    }

    #[test]
    fn empty_affected_yields_no_rows() {
        let t = spec("CREATE TRIGGER t AFTER CREATE ON 'Nope' FOR ALL NODES BEGIN CREATE (:X) END");
        let aff = Affected::default();
        assert!(seed_rows(&t, &aff).is_empty());
    }
}
