//! Error types for the trigger engine.

use pg_cypher::CypherError;
use pg_graph::GraphError;
use std::fmt;

/// Errors installing a trigger (`CREATE TRIGGER` time checks, §4.2).
#[derive(Debug, Clone, PartialEq)]
pub enum InstallError {
    /// DDL or embedded Cypher failed to parse.
    Parse(CypherError),
    /// Malformed DDL outside the embedded Cypher fragments.
    Syntax(String),
    /// A trigger with this name already exists.
    DuplicateName(String),
    /// The `WHEN` condition contains updating clauses.
    UpdatingCondition(String),
    /// The statement sets or removes the trigger's own target label
    /// (forbidden by §4.2, "Choice of LABELS").
    TargetLabelMutation { trigger: String, label: String },
    /// A `BEFORE` trigger statement contains clauses other than property
    /// conditioning (`SET`) or `ABORT` (§4.2: BEFORE statements "should not
    /// produce arbitrary changes, but just condition NEW states").
    BeforeStatementTooStrong {
        trigger: String,
        clause: &'static str,
    },
    /// `REFERENCING` names a transition variable incompatible with the
    /// trigger's granularity or item kind.
    BadReferencing {
        trigger: String,
        var: String,
        reason: &'static str,
    },
    /// `CREATE INDEX` on an already-indexed `(label, key)`.
    DuplicateIndex { label: String, key: String },
    /// `DROP INDEX` on a `(label, key)` that is not indexed.
    UnknownIndex { label: String, key: String },
    /// `CREATE INDEX` on an already-indexed `(rel_type, key)`.
    DuplicateRelIndex { rel_type: String, key: String },
    /// `DROP INDEX` on a `(rel_type, key)` that is not indexed.
    UnknownRelIndex { rel_type: String, key: String },
    /// `CREATE INDEX` on an existing (or malformed — repeated columns)
    /// composite `(label, columns)` definition.
    DuplicateCompositeIndex { label: String, columns: Vec<String> },
    /// `DROP INDEX` on a composite `(label, columns)` that is not indexed.
    UnknownCompositeIndex { label: String, columns: Vec<String> },
    /// `CREATE INDEX` on an existing composite `(rel_type, columns)`.
    DuplicateRelCompositeIndex {
        rel_type: String,
        columns: Vec<String>,
    },
    /// `DROP INDEX` on a composite `(rel_type, columns)` not indexed.
    UnknownRelCompositeIndex {
        rel_type: String,
        columns: Vec<String>,
    },
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Parse(e) => write!(f, "trigger DDL parse error: {e}"),
            InstallError::Syntax(msg) => write!(f, "trigger DDL syntax error: {msg}"),
            InstallError::DuplicateName(n) => write!(f, "trigger '{n}' already exists"),
            InstallError::UpdatingCondition(n) => {
                write!(f, "trigger '{n}': WHEN condition must be read-only")
            }
            InstallError::TargetLabelMutation { trigger, label } => write!(
                f,
                "trigger '{trigger}': statement may not set or remove its target label '{label}'"
            ),
            InstallError::BeforeStatementTooStrong { trigger, clause } => write!(
                f,
                "trigger '{trigger}': BEFORE statements may only condition NEW states (found {clause})"
            ),
            InstallError::BadReferencing { trigger, var, reason } => {
                write!(f, "trigger '{trigger}': REFERENCING {var}: {reason}")
            }
            InstallError::DuplicateIndex { label, key } => {
                write!(f, "index on :{label}({key}) already exists")
            }
            InstallError::UnknownIndex { label, key } => {
                write!(f, "no index on :{label}({key})")
            }
            InstallError::DuplicateRelIndex { rel_type, key } => {
                write!(f, "index on -[:{rel_type}({key})]- already exists")
            }
            InstallError::UnknownRelIndex { rel_type, key } => {
                write!(f, "no index on -[:{rel_type}({key})]-")
            }
            InstallError::DuplicateCompositeIndex { label, columns } => {
                write!(
                    f,
                    "composite index on :{label}({}) already exists or is malformed",
                    columns.join(", ")
                )
            }
            InstallError::UnknownCompositeIndex { label, columns } => {
                write!(f, "no composite index on :{label}({})", columns.join(", "))
            }
            InstallError::DuplicateRelCompositeIndex { rel_type, columns } => {
                write!(
                    f,
                    "composite index on -[:{rel_type}({})]- already exists or is malformed",
                    columns.join(", ")
                )
            }
            InstallError::UnknownRelCompositeIndex { rel_type, columns } => {
                write!(
                    f,
                    "no composite index on -[:{rel_type}({})]-",
                    columns.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// Errors raised while processing triggers at run time.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerError {
    /// DDL routed through [`crate::Session::execute`] failed to install.
    Install(InstallError),
    /// The user statement or a trigger statement failed.
    Cypher(CypherError),
    /// Store-level failure.
    Store(GraphError),
    /// Cascading exceeded the configured depth (non-terminating rule set,
    /// §6.2.3 discussion / Baralis–Ceri–Widom).
    RecursionLimit { depth: usize, trigger: String },
    /// The ONCOMMIT fixpoint did not converge within the configured rounds.
    CommitFixpointDiverged { rounds: usize },
    /// Transaction-control misuse at the session level.
    Session(&'static str),
    /// Unknown trigger name in DROP/ENABLE/DISABLE.
    UnknownTrigger(String),
    /// The transaction's net effect violates the session's PG-Schema guard.
    Schema(crate::schema_guard::SchemaViolation),
}

impl fmt::Display for TriggerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TriggerError::Install(e) => write!(f, "{e}"),
            TriggerError::Cypher(e) => write!(f, "{e}"),
            TriggerError::Store(e) => write!(f, "{e}"),
            TriggerError::RecursionLimit { depth, trigger } => write!(
                f,
                "trigger cascade exceeded depth {depth} (last trigger: '{trigger}')"
            ),
            TriggerError::CommitFixpointDiverged { rounds } => {
                write!(
                    f,
                    "ONCOMMIT processing did not converge after {rounds} rounds"
                )
            }
            TriggerError::Session(msg) => write!(f, "session error: {msg}"),
            TriggerError::UnknownTrigger(n) => write!(f, "unknown trigger '{n}'"),
            TriggerError::Schema(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for TriggerError {}

impl From<CypherError> for TriggerError {
    fn from(e: CypherError) -> Self {
        match e {
            CypherError::Store(s) => TriggerError::Store(s),
            other => TriggerError::Cypher(other),
        }
    }
}

impl From<GraphError> for TriggerError {
    fn from(e: GraphError) -> Self {
        TriggerError::Store(e)
    }
}
