//! The active-graph session: statement execution with full PG-Trigger
//! semantics (paper §4.2).
//!
//! Execution model:
//!
//! 1. Each top-level query is a **statement**; its net effect is a delta.
//! 2. `BEFORE` triggers run first: conditions are evaluated against the
//!    **pre-statement state** (a [`PreStateView`]), transition variables
//!    come from the delta, and statements run under a write policy that
//!    only allows conditioning the NEW items (property assignments) or
//!    aborting.
//! 3. `AFTER` triggers run next, in activation order (creation time by
//!    default). Each fired statement produces its own delta which
//!    recursively activates `BEFORE`/`AFTER` triggers — the SQL3 execution-
//!    context stack — bounded by a configurable cascade depth.
//! 4. At commit, `ONCOMMIT` triggers run on the cumulative transaction
//!    delta; their side effects join the transaction and may re-activate
//!    `ONCOMMIT` triggers in subsequent rounds (bounded fixpoint). Any
//!    failure rolls back the whole transaction.
//! 5. After a successful commit, `DETACHED` triggers run, each in its own
//!    autonomous transaction; failures are recorded but do not affect the
//!    committed transaction.

use crate::binding::{affected_items, seed_rows, Affected};
use crate::catalog::{DeltaSignature, OrderPolicy, TriggerCatalog};
use crate::ddl::{
    is_index_ddl, is_trigger_ddl, parse_index_ddl, parse_trigger_ddl, DdlStatement, IndexDdl,
};
use crate::error::{InstallError, TriggerError};
use crate::spec::{ActionTime, TriggerSpec};
use pg_cypher::{parse_query, run_ast, run_read_only, Params, Query, QueryOutput, Row};
use pg_graph::{Graph, PreStateView, StatementMark, WritePolicy};
use std::collections::VecDeque;
use std::sync::Arc;

/// Captured DETACHED activations: each entry is one activation unit's
/// trigger (shared) and seed rows.
type DetachedQueue = VecDeque<(Arc<TriggerSpec>, Vec<Row>)>;

use crate::schema_guard::SchemaGuard;

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum trigger cascade depth (SQL3-style context stack bound).
    pub max_cascade_depth: usize,
    /// Maximum ONCOMMIT fixpoint rounds before declaring divergence.
    pub max_commit_rounds: usize,
    /// Maximum chained DETACHED activations per commit.
    pub max_detached_chain: usize,
    /// When `false`, trigger statements do not re-activate triggers —
    /// emulates the APOC/Memgraph limitation the paper reports in §5.1
    /// ("APOC triggers do not cascade correctly").
    pub cascading_enabled: bool,
    /// Activation order for triggers sharing an action time.
    pub order: OrderPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_cascade_depth: 32,
            max_commit_rounds: 16,
            max_detached_chain: 256,
            cascading_enabled: true,
            order: OrderPolicy::CreationTime,
        }
    }
}

/// Cumulative execution statistics (instrumentation for the benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Trigger statements executed (condition held).
    pub fired: u64,
    /// Trigger activations whose condition did not hold.
    pub suppressed: u64,
    /// Deepest cascade observed.
    pub max_depth_seen: usize,
    /// DETACHED autonomous transactions executed.
    pub detached_runs: u64,
    /// ONCOMMIT rounds executed.
    pub commit_rounds: u64,
}

/// Result of [`Session::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    Query(QueryOutput),
    /// The rendered physical-plan report of an `EXPLAIN <query>`.
    Explain(String),
    TriggerCreated(String),
    TriggerDropped(String),
    IndexCreated {
        label: String,
        key: String,
    },
    IndexDropped {
        label: String,
        key: String,
    },
    RelIndexCreated {
        rel_type: String,
        key: String,
    },
    RelIndexDropped {
        rel_type: String,
        key: String,
    },
    CompositeIndexCreated {
        label: String,
        columns: Vec<String>,
    },
    CompositeIndexDropped {
        label: String,
        columns: Vec<String>,
    },
    RelCompositeIndexCreated {
        rel_type: String,
        columns: Vec<String>,
    },
    RelCompositeIndexDropped {
        rel_type: String,
        columns: Vec<String>,
    },
}

/// An active-graph session: graph + trigger catalog + engine.
pub struct Session {
    graph: Graph,
    catalog: TriggerCatalog,
    config: EngineConfig,
    now_ms: i64,
    /// Mark at the start of the current explicit transaction.
    tx_mark: Option<StatementMark>,
    detached_errors: Vec<(String, TriggerError)>,
    stats: EngineStats,
    /// Optional PG-Schema guard validated at every commit (an implicit
    /// highest-priority ONCOMMIT integrity check).
    schema: Option<SchemaGuard>,
    /// Attached durability layer (WAL + snapshots) when opened through
    /// [`Session::open_durable`]; `None` for in-memory sessions.
    durable: Option<pg_wal::Durable>,
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

impl Session {
    pub fn new() -> Self {
        Session::with_config(EngineConfig::default())
    }

    pub fn with_config(config: EngineConfig) -> Self {
        let mut catalog = TriggerCatalog::new();
        catalog.order = config.order;
        Session {
            graph: Graph::new(),
            catalog,
            config,
            now_ms: 0,
            tx_mark: None,
            detached_errors: Vec::new(),
            stats: EngineStats::default(),
            schema: None,
            durable: None,
        }
    }

    // ------------------------------------------------------------------
    // Durability (see `pg-wal`)
    // ------------------------------------------------------------------

    /// Open a durable session over `dir`: recover whatever the directory
    /// holds (an empty directory starts an empty store) and attach the
    /// WAL to the commit path, so every subsequent committed transaction
    /// — including its full trigger-cascade effects — is logged before it
    /// publishes.
    ///
    /// Recovery replays *effects*: WAL frames carry the post-cascade
    /// committed op stream, so triggers that fired before a crash are
    /// never re-fired here (the recovered session's `stats().fired` stays
    /// 0). Trigger definitions themselves are code, not data — reinstall
    /// them after opening, as on any fresh session.
    pub fn open_durable(
        dir: &std::path::Path,
        config: EngineConfig,
        wal_opts: pg_wal::WalOptions,
    ) -> Result<(Session, pg_wal::RecoveryReport), pg_wal::RecoveryError> {
        let (durable, graph, report) =
            pg_wal::Durable::open(dir, wal_opts, pg_wal::RecoveryOptions::default())?;
        let mut session = Session::with_config(config);
        session.graph = graph;
        session.durable = Some(durable);
        Ok((session, report))
    }

    /// Whether this session persists commits through a WAL.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The attached durability layer, if any.
    pub fn durable(&self) -> Option<&pg_wal::Durable> {
        self.durable.as_ref()
    }

    /// Sequence number of the last durable commit frame (0 when not
    /// durable or nothing committed yet).
    pub fn wal_seq(&self) -> u64 {
        self.durable.as_ref().map(|d| d.seq()).unwrap_or(0)
    }

    /// Force buffered group-commit frames to disk. No-op when not durable.
    pub fn wal_flush(&self) -> std::io::Result<()> {
        match &self.durable {
            Some(d) => d.flush().map_err(Into::into),
            None => Ok(()),
        }
    }

    /// Cut a compacted snapshot and truncate the WAL it supersedes.
    /// Also the way *unlogged* work (bulk loads via [`Session::graph_mut`]
    /// outside a transaction) becomes durable. Returns the snapshot's
    /// commit sequence.
    pub fn checkpoint(&mut self) -> std::io::Result<u64> {
        if self.tx_mark.is_some() {
            return Err(std::io::Error::other(
                "cannot checkpoint inside an explicit transaction",
            ));
        }
        match &self.durable {
            Some(d) => d.checkpoint(&self.graph).map_err(Into::into),
            None => Err(std::io::Error::other("session is not durable")),
        }
    }

    /// Cleanly shut down durability: flush, checkpoint, and detach the
    /// WAL. The session keeps working in-memory afterwards; the directory
    /// holds a snapshot equal to the final state (recovery replays zero
    /// frames).
    pub fn close_durable(&mut self) -> std::io::Result<()> {
        if self.tx_mark.is_some() {
            return Err(std::io::Error::other(
                "cannot close durability inside an explicit transaction",
            ));
        }
        if let Some(d) = self.durable.take() {
            d.flush()?;
            d.checkpoint(&self.graph)?;
            self.graph.set_commit_sink(None);
        }
        Ok(())
    }

    /// Attach a PG-Schema graph type; every subsequent commit validates the
    /// transaction's net effect and rolls back on violation (see
    /// [`crate::schema_guard`]). Properties the schema declares `KEY` or
    /// `INDEX` get a property index created on the spot (idempotent).
    pub fn set_schema(&mut self, graph_type: pg_schema::GraphType) {
        for (label, key) in graph_type.indexed_props() {
            self.graph.create_index(&label, &key);
        }
        for (rel_type, key) in graph_type.indexed_rel_props() {
            self.graph.create_rel_index(&rel_type, &key);
        }
        for (label, columns) in graph_type.composite_indexed_props() {
            self.graph.create_composite_index(&label, &columns);
        }
        for (rel_type, columns) in graph_type.composite_indexed_rel_props() {
            self.graph.create_rel_composite_index(&rel_type, &columns);
        }
        self.schema = Some(SchemaGuard::new(graph_type));
    }

    /// Detach the schema guard, returning it.
    pub fn clear_schema(&mut self) -> Option<pg_schema::GraphType> {
        self.schema.take().map(|g| g.graph_type)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Direct mutable access to the graph. **Bypasses triggers** — intended
    /// for bulk loading and test setup only.
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.graph
    }

    /// A `Send + Sync` handle for reader threads; each clone pins
    /// [`pg_graph::Snapshot`]s of the last committed epoch (see
    /// [`crate::ReadSession`]). Must first be called outside an explicit
    /// transaction.
    pub fn reader_handle(&mut self) -> pg_graph::GraphHandle {
        self.graph.reader_handle()
    }

    /// Pin a snapshot of the last committed epoch. Mid-transaction (or
    /// mid-cascade, from a trigger's perspective) this exposes the state
    /// as of the previous commit — never partially applied work.
    pub fn snapshot(&mut self) -> pg_graph::Snapshot {
        self.graph.snapshot()
    }

    pub fn catalog(&self) -> &TriggerCatalog {
        &self.catalog
    }

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Failures of DETACHED triggers from the most recent commit (they do
    /// not fail the transaction, per §4.2).
    pub fn detached_errors(&self) -> &[(String, TriggerError)] {
        &self.detached_errors
    }

    /// The session's logical clock (milliseconds); advances by one second
    /// per statement so `DATETIME()` is deterministic and monotonic.
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    pub fn set_now_ms(&mut self, now_ms: i64) {
        self.now_ms = now_ms;
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    /// Install a trigger from DDL text; returns its name.
    pub fn install(&mut self, ddl: &str) -> Result<String, InstallError> {
        match parse_trigger_ddl(ddl)? {
            DdlStatement::CreateTrigger(spec) => self.install_spec(spec),
            DdlStatement::DropTrigger(_) => Err(InstallError::Syntax(
                "expected CREATE TRIGGER, got DROP".into(),
            )),
        }
    }

    /// Install a pre-built spec (validated).
    pub fn install_spec(&mut self, spec: TriggerSpec) -> Result<String, InstallError> {
        crate::ddl::validate_spec(&spec)?;
        let name = spec.name.clone();
        self.catalog.install(spec)?;
        Ok(name)
    }

    pub fn drop_trigger(&mut self, name: &str) -> Result<(), TriggerError> {
        if self.catalog.drop_trigger(name) {
            Ok(())
        } else {
            Err(TriggerError::UnknownTrigger(name.to_string()))
        }
    }

    /// Pause/resume a trigger (APOC `stop`/`start` parity).
    pub fn set_trigger_enabled(&mut self, name: &str, enabled: bool) -> Result<(), TriggerError> {
        if self.catalog.set_enabled(name, enabled) {
            Ok(())
        } else {
            Err(TriggerError::UnknownTrigger(name.to_string()))
        }
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Execute DDL (trigger or index) or a query, dispatching on the text.
    pub fn execute(&mut self, src: &str) -> Result<ExecResult, TriggerError> {
        if is_trigger_ddl(src) {
            match parse_trigger_ddl(src).map_err(TriggerError::Install)? {
                DdlStatement::CreateTrigger(spec) => {
                    let name = self.install_spec(spec).map_err(TriggerError::Install)?;
                    Ok(ExecResult::TriggerCreated(name))
                }
                DdlStatement::DropTrigger(name) => {
                    self.drop_trigger(&name)?;
                    Ok(ExecResult::TriggerDropped(name))
                }
            }
        } else if is_index_ddl(src) {
            match parse_index_ddl(src).map_err(TriggerError::Install)? {
                IndexDdl::Create { label, key } => {
                    self.create_index(&label, &key)?;
                    Ok(ExecResult::IndexCreated { label, key })
                }
                IndexDdl::Drop { label, key } => {
                    self.drop_index(&label, &key)?;
                    Ok(ExecResult::IndexDropped { label, key })
                }
                IndexDdl::CreateRel { rel_type, key } => {
                    self.create_rel_index(&rel_type, &key)?;
                    Ok(ExecResult::RelIndexCreated { rel_type, key })
                }
                IndexDdl::DropRel { rel_type, key } => {
                    self.drop_rel_index(&rel_type, &key)?;
                    Ok(ExecResult::RelIndexDropped { rel_type, key })
                }
                IndexDdl::CreateComposite { label, columns } => {
                    self.create_composite_index(&label, &columns)?;
                    Ok(ExecResult::CompositeIndexCreated { label, columns })
                }
                IndexDdl::DropComposite { label, columns } => {
                    self.drop_composite_index(&label, &columns)?;
                    Ok(ExecResult::CompositeIndexDropped { label, columns })
                }
                IndexDdl::CreateRelComposite { rel_type, columns } => {
                    self.create_rel_composite_index(&rel_type, &columns)?;
                    Ok(ExecResult::RelCompositeIndexCreated { rel_type, columns })
                }
                IndexDdl::DropRelComposite { rel_type, columns } => {
                    self.drop_rel_composite_index(&rel_type, &columns)?;
                    Ok(ExecResult::RelCompositeIndexDropped { rel_type, columns })
                }
            }
        } else if let Some(rest) = pg_cypher::strip_explain(src) {
            self.explain(rest).map(ExecResult::Explain)
        } else {
            self.run(src).map(ExecResult::Query)
        }
    }

    /// Render the physical plan of `src` (without the `EXPLAIN` keyword):
    /// chosen access paths, degree-statistics join-output estimates, and
    /// — for read-only queries, which are executed once against the
    /// current graph — the actual row count next to the estimate.
    pub fn explain(&self, src: &str) -> Result<String, TriggerError> {
        pg_cypher::explain_query(&self.graph, src, &Params::new(), self.now_ms)
            .map_err(TriggerError::Cypher)
    }

    /// Create a property index on `(label, key)`, populated from the
    /// current extent and maintained through every subsequent mutation
    /// (including statement rollback and aborted trigger cascades).
    pub fn create_index(&mut self, label: &str, key: &str) -> Result<(), TriggerError> {
        if self.graph.create_index(label, key) {
            Ok(())
        } else {
            Err(TriggerError::Install(InstallError::DuplicateIndex {
                label: label.to_string(),
                key: key.to_string(),
            }))
        }
    }

    /// Drop the property index on `(label, key)`.
    pub fn drop_index(&mut self, label: &str, key: &str) -> Result<(), TriggerError> {
        if self.graph.drop_index(label, key) {
            Ok(())
        } else {
            Err(TriggerError::Install(InstallError::UnknownIndex {
                label: label.to_string(),
                key: key.to_string(),
            }))
        }
    }

    /// All `(label, key)` property-index definitions, sorted.
    pub fn indexes(&self) -> Vec<(String, String)> {
        self.graph.indexes()
    }

    /// Create a relationship-property index on `(rel_type, key)`,
    /// populated from the current type extent and maintained through every
    /// subsequent mutation (including statement rollback and aborted
    /// trigger cascades), exactly like node indexes.
    pub fn create_rel_index(&mut self, rel_type: &str, key: &str) -> Result<(), TriggerError> {
        if self.graph.create_rel_index(rel_type, key) {
            Ok(())
        } else {
            Err(TriggerError::Install(InstallError::DuplicateRelIndex {
                rel_type: rel_type.to_string(),
                key: key.to_string(),
            }))
        }
    }

    /// Drop the relationship-property index on `(rel_type, key)`.
    pub fn drop_rel_index(&mut self, rel_type: &str, key: &str) -> Result<(), TriggerError> {
        if self.graph.drop_rel_index(rel_type, key) {
            Ok(())
        } else {
            Err(TriggerError::Install(InstallError::UnknownRelIndex {
                rel_type: rel_type.to_string(),
                key: key.to_string(),
            }))
        }
    }

    /// All `(rel_type, key)` relationship-index definitions, sorted.
    pub fn rel_indexes(&self) -> Vec<(String, String)> {
        self.graph.rel_indexes()
    }

    /// Create a composite index on `(label, columns)`, populated from the
    /// current extent and maintained through every subsequent mutation
    /// (including statement rollback and aborted trigger cascades).
    pub fn create_composite_index(
        &mut self,
        label: &str,
        columns: &[String],
    ) -> Result<(), TriggerError> {
        if self.graph.create_composite_index(label, columns) {
            Ok(())
        } else {
            Err(TriggerError::Install(
                InstallError::DuplicateCompositeIndex {
                    label: label.to_string(),
                    columns: columns.to_vec(),
                },
            ))
        }
    }

    /// Drop the composite index on `(label, columns)`.
    pub fn drop_composite_index(
        &mut self,
        label: &str,
        columns: &[String],
    ) -> Result<(), TriggerError> {
        if self.graph.drop_composite_index(label, columns) {
            Ok(())
        } else {
            Err(TriggerError::Install(InstallError::UnknownCompositeIndex {
                label: label.to_string(),
                columns: columns.to_vec(),
            }))
        }
    }

    /// All `(label, columns)` composite-index definitions, sorted.
    pub fn composite_indexes(&self) -> Vec<(String, Vec<String>)> {
        self.graph.composite_indexes()
    }

    /// Create a composite relationship index on `(rel_type, columns)`.
    pub fn create_rel_composite_index(
        &mut self,
        rel_type: &str,
        columns: &[String],
    ) -> Result<(), TriggerError> {
        if self.graph.create_rel_composite_index(rel_type, columns) {
            Ok(())
        } else {
            Err(TriggerError::Install(
                InstallError::DuplicateRelCompositeIndex {
                    rel_type: rel_type.to_string(),
                    columns: columns.to_vec(),
                },
            ))
        }
    }

    /// Drop the composite relationship index on `(rel_type, columns)`.
    pub fn drop_rel_composite_index(
        &mut self,
        rel_type: &str,
        columns: &[String],
    ) -> Result<(), TriggerError> {
        if self.graph.drop_rel_composite_index(rel_type, columns) {
            Ok(())
        } else {
            Err(TriggerError::Install(
                InstallError::UnknownRelCompositeIndex {
                    rel_type: rel_type.to_string(),
                    columns: columns.to_vec(),
                },
            ))
        }
    }

    /// All `(rel_type, columns)` composite relationship-index definitions.
    pub fn rel_composite_indexes(&self) -> Vec<(String, Vec<String>)> {
        self.graph.rel_composite_indexes()
    }

    /// Run one query as a statement (auto-commit unless inside an explicit
    /// transaction), with full trigger processing.
    pub fn run(&mut self, src: &str) -> Result<QueryOutput, TriggerError> {
        self.run_with_params(src, &Params::new())
    }

    pub fn run_with_params(
        &mut self,
        src: &str,
        params: &Params,
    ) -> Result<QueryOutput, TriggerError> {
        let query = parse_query(src)?;
        self.run_query_ast(&query, Vec::new(), params)
    }

    /// Run a pre-parsed query with seed rows.
    pub fn run_query_ast(
        &mut self,
        query: &Query,
        seeds: Vec<Row>,
        params: &Params,
    ) -> Result<QueryOutput, TriggerError> {
        self.now_ms += 1000;
        if self.tx_mark.is_some() {
            // Statement inside an explicit transaction: statement-level
            // rollback on error, transaction survives.
            let stmt_mark = self.graph.mark();
            match self.exec_statement(query, seeds, params, 0) {
                Ok(out) => Ok(out),
                Err(e) => {
                    self.graph.rollback_to(stmt_mark)?;
                    Err(e)
                }
            }
        } else {
            // Auto-commit statement.
            self.graph.begin()?;
            self.tx_mark = Some(self.graph.mark());
            let result = self.exec_statement(query, seeds, params, 0);
            match result {
                Ok(out) => match self.commit() {
                    Ok(()) => Ok(out),
                    Err(e) => Err(e),
                },
                Err(e) => {
                    self.tx_mark = None;
                    self.graph.rollback()?;
                    Err(e)
                }
            }
        }
    }

    /// Begin an explicit transaction.
    pub fn begin(&mut self) -> Result<(), TriggerError> {
        if self.tx_mark.is_some() {
            return Err(TriggerError::Session("transaction already active"));
        }
        self.graph.begin()?;
        self.tx_mark = Some(self.graph.mark());
        Ok(())
    }

    /// Roll back the explicit transaction.
    pub fn rollback(&mut self) -> Result<(), TriggerError> {
        if self.tx_mark.take().is_none() {
            return Err(TriggerError::Session("no active transaction"));
        }
        self.graph.rollback()?;
        Ok(())
    }

    /// Commit: run the ONCOMMIT fixpoint, commit the store transaction,
    /// then run DETACHED triggers in autonomous transactions.
    pub fn commit(&mut self) -> Result<(), TriggerError> {
        let tx_mark = self
            .tx_mark
            .ok_or(TriggerError::Session("no active transaction"))?;
        match self.commit_inner(tx_mark) {
            Ok(detached) => {
                self.tx_mark = None;
                self.run_detached_queue(detached);
                Ok(())
            }
            Err(e) => {
                // ONCOMMIT failure rolls back the entire transaction (§4.2).
                self.tx_mark = None;
                let _ = self.graph.rollback();
                Err(e)
            }
        }
    }

    /// ONCOMMIT fixpoint + detached activation capture + store commit.
    fn commit_inner(&mut self, tx_mark: StatementMark) -> Result<DetachedQueue, TriggerError> {
        let oncommit = self.catalog.scheduled_specs(ActionTime::OnCommit);

        let mut round_mark = tx_mark;
        let mut rounds = 0usize;
        loop {
            if self.graph.ops_since(round_mark).is_empty() {
                break;
            }
            let delta = self.graph.delta_since(round_mark);
            if delta.is_empty() || oncommit.is_empty() {
                break;
            }
            // Event-keyed pre-filter: skip the round (and the PreStateView)
            // when no ONCOMMIT trigger's event intersects the round delta.
            let sig = DeltaSignature::of(&delta);
            if !self.catalog.wants(ActionTime::OnCommit, &sig) {
                break;
            }
            // Activations for this round are bound against the round delta.
            let mut activations: Vec<(Arc<TriggerSpec>, Vec<Row>, Affected)> = Vec::new();
            {
                let ops = self.graph.ops_since(round_mark);
                let pre = PreStateView::new(&self.graph, ops);
                for spec in &oncommit {
                    if !sig.may_match(spec) {
                        continue;
                    }
                    let affected = affected_items(spec, &delta, &pre, &self.graph);
                    if !affected.is_empty() {
                        let seeds = seed_rows(spec, &affected);
                        activations.push((Arc::clone(spec), seeds, affected));
                    }
                }
            }
            if activations.is_empty() {
                break;
            }
            rounds += 1;
            self.stats.commit_rounds += 1;
            if rounds > self.config.max_commit_rounds {
                return Err(TriggerError::CommitFixpointDiverged { rounds });
            }
            let next_mark = self.graph.mark();
            let mut fired_any = false;
            for (spec, seeds, _aff) in activations {
                for unit in activation_units(&spec, seeds) {
                    let surviving = self.eval_condition_current(&spec, unit)?;
                    if surviving.is_empty() {
                        self.stats.suppressed += 1;
                        continue;
                    }
                    let stmt_mark = self.graph.mark();
                    run_ast(
                        &mut self.graph,
                        &spec.statement,
                        surviving,
                        &Params::new(),
                        self.now_ms,
                    )?;
                    self.stats.fired += 1;
                    if self.config.cascading_enabled {
                        self.fire_statement_triggers(stmt_mark, 1)?;
                    }
                    fired_any = true;
                }
            }
            if !fired_any {
                break;
            }
            round_mark = next_mark;
        }

        // Capture DETACHED activations against the full transaction delta
        // before the op log disappears with the commit.
        let detached = self.catalog.scheduled_specs(ActionTime::Detached);
        let mut queue = VecDeque::new();
        if !detached.is_empty() {
            let tx_delta = self.graph.delta_since(tx_mark);
            let sig = DeltaSignature::of(&tx_delta);
            if self.catalog.wants(ActionTime::Detached, &sig) {
                let tx_ops = self.graph.ops_since(tx_mark);
                let pre = PreStateView::new(&self.graph, tx_ops);
                for spec in detached {
                    if !sig.may_match(&spec) {
                        continue;
                    }
                    let affected = affected_items(&spec, &tx_delta, &pre, &self.graph);
                    if !affected.is_empty() {
                        for unit in activation_units(&spec, seed_rows(&spec, &affected)) {
                            queue.push_back((Arc::clone(&spec), unit));
                        }
                    }
                }
            }
        }

        // Schema guard: the transaction's net effect must conform (§2
        // PG-Schema + triggers-as-constraints). Violations roll back.
        if let Some(guard) = &self.schema {
            let tx_delta = self.graph.delta_since(tx_mark);
            guard
                .check(&self.graph, &tx_delta)
                .map_err(TriggerError::Schema)?;
        }

        self.graph.commit()?;
        Ok(queue)
    }

    /// Run queued DETACHED activations, each in an autonomous transaction.
    /// Their own deltas may enqueue further DETACHED activations (bounded).
    fn run_detached_queue(&mut self, mut queue: DetachedQueue) {
        if queue.is_empty() {
            return;
        }
        self.detached_errors.clear();
        let mut executed = 0usize;
        while let Some((spec, seeds)) = queue.pop_front() {
            if executed >= self.config.max_detached_chain {
                self.detached_errors.push((
                    spec.name.clone(),
                    TriggerError::RecursionLimit {
                        depth: self.config.max_detached_chain,
                        trigger: spec.name.clone(),
                    },
                ));
                break;
            }
            executed += 1;
            self.stats.detached_runs += 1;
            let result = self.run_one_detached(&spec, seeds, &mut queue);
            if let Err(e) = result {
                self.detached_errors.push((spec.name.clone(), e));
            }
        }
    }

    fn run_one_detached(
        &mut self,
        spec: &TriggerSpec,
        seeds: Vec<Row>,
        queue: &mut DetachedQueue,
    ) -> Result<(), TriggerError> {
        // Condition is considered at action time, i.e. post-commit (§4.2).
        // (Each queue entry is already one activation unit.)
        let surviving = self.eval_condition_current(spec, seeds)?;
        if surviving.is_empty() {
            self.stats.suppressed += 1;
            return Ok(());
        }
        self.graph.begin()?;
        let tx_mark = self.graph.mark();
        let body = (|| -> Result<(), TriggerError> {
            let stmt_mark = self.graph.mark();
            run_ast(
                &mut self.graph,
                &spec.statement,
                surviving,
                &Params::new(),
                self.now_ms,
            )?;
            self.stats.fired += 1;
            if self.config.cascading_enabled {
                self.fire_statement_triggers(stmt_mark, 1)?;
            }
            Ok(())
        })();
        match body {
            Ok(()) => {
                // ONCOMMIT + nested DETACHED of the autonomous transaction.
                let saved_tx = self.tx_mark.take();
                self.tx_mark = Some(tx_mark);
                let res = self.commit_inner(tx_mark);
                self.tx_mark = saved_tx;
                match res {
                    Ok(nested) => {
                        queue.extend(nested);
                        Ok(())
                    }
                    Err(e) => {
                        let _ = self.graph.rollback();
                        Err(e)
                    }
                }
            }
            Err(e) => {
                let _ = self.graph.rollback();
                Err(e)
            }
        }
    }

    /// Execute a statement and process its BEFORE/AFTER triggers.
    fn exec_statement(
        &mut self,
        query: &Query,
        seeds: Vec<Row>,
        params: &Params,
        depth: usize,
    ) -> Result<QueryOutput, TriggerError> {
        let mark = self.graph.mark();
        let out = run_ast(&mut self.graph, query, seeds, params, self.now_ms)?;
        self.fire_statement_triggers(mark, depth)?;
        Ok(out)
    }

    /// BEFORE + AFTER processing for the ops recorded since `mark`.
    ///
    /// Dispatch fast path: the statement delta is compressed into a
    /// [`DeltaSignature`] once, and each phase is skipped wholesale —
    /// before any op-log copy or `PreStateView` — when no enabled
    /// trigger's event can intersect it; surviving triggers are shared via
    /// `Arc`, never deep-cloned per statement.
    fn fire_statement_triggers(
        &mut self,
        mark: StatementMark,
        depth: usize,
    ) -> Result<(), TriggerError> {
        if depth > self.stats.max_depth_seen {
            self.stats.max_depth_seen = depth;
        }
        if self.graph.ops_since(mark).is_empty() {
            return Ok(());
        }
        let delta = self.graph.delta_since(mark);
        if delta.is_empty() {
            return Ok(());
        }
        let sig = DeltaSignature::of(&delta);

        // ---- BEFORE triggers -------------------------------------------
        if self.catalog.wants(ActionTime::Before, &sig) {
            let before = self.catalog.scheduled_matching(ActionTime::Before, &sig);
            // One op-log copy for the whole phase (the copy is needed: the
            // slice borrow cannot live across the statement executions
            // below). The PreStateView stays per-spec — each BEFORE
            // trigger's condition must observe the NEW-state conditioning
            // applied by the triggers before it (§4.2 sequencing).
            let ops = self.graph.ops_since(mark).to_vec();
            for spec in before {
                let (units, allowed) = {
                    let pre = PreStateView::new(&self.graph, &ops);
                    let affected = affected_items(&spec, &delta, &pre, &self.graph);
                    if affected.is_empty() {
                        continue;
                    }
                    let seeds = seed_rows(&spec, &affected);
                    let allowed = affected.new_refs();
                    // BEFORE conditions see the pre-statement state overlaid
                    // with the proposed state of the NEW items (§4.2).
                    let view = crate::overlay::NewStateOverlay::new(
                        pre,
                        &self.graph,
                        allowed.iter().copied(),
                    );
                    let mut units = Vec::new();
                    for unit in activation_units(&spec, seeds) {
                        units.push(eval_condition(&view, &spec, unit, self.now_ms)?);
                    }
                    (units, allowed)
                };
                for surviving in units {
                    if surviving.is_empty() {
                        self.stats.suppressed += 1;
                        continue;
                    }
                    // BEFORE statements may only condition the NEW items (§4.2).
                    let prev = self.graph.set_write_policy(WritePolicy::ConditionNewOnly(
                        allowed.iter().copied().collect(),
                    ));
                    let res = run_ast(
                        &mut self.graph,
                        &spec.statement,
                        surviving,
                        &Params::new(),
                        self.now_ms,
                    );
                    self.graph.set_write_policy(prev);
                    res?;
                    self.stats.fired += 1;
                }
            }
        }

        // BEFORE triggers may have conditioned NEW properties; recompute the
        // statement delta so AFTER triggers observe the final values.
        let delta = self.graph.delta_since(mark);
        let sig = DeltaSignature::of(&delta);

        // ---- AFTER triggers (cascading) --------------------------------
        if !self.catalog.wants(ActionTime::After, &sig) {
            return Ok(());
        }
        let after = self.catalog.scheduled_matching(ActionTime::After, &sig);
        if after.is_empty() {
            return Ok(());
        }
        // All AFTER activations are bound against the activating
        // statement's delta and pre-state (SQL3: the triggering statement
        // determines the affected rows; sibling triggers' own effects
        // activate triggers through their own cascade) — so one
        // PreStateView serves every AFTER trigger of this statement.
        let ops = self.graph.ops_since(mark).to_vec();
        let mut activations: Vec<(Arc<TriggerSpec>, Vec<Vec<Row>>)> = Vec::new();
        {
            let pre = PreStateView::new(&self.graph, &ops);
            for spec in after {
                let affected = affected_items(&spec, &delta, &pre, &self.graph);
                if affected.is_empty() {
                    continue;
                }
                let units = activation_units(&spec, seed_rows(&spec, &affected));
                activations.push((spec, units));
            }
        }
        for (spec, units) in activations {
            // FOR EACH: one statement execution per affected item (SQL3
            // row-trigger semantics); FOR ALL: one per statement.
            for unit in units {
                let surviving = self.eval_condition_current(&spec, unit)?;
                if surviving.is_empty() {
                    self.stats.suppressed += 1;
                    continue;
                }
                if depth >= self.config.max_cascade_depth {
                    return Err(TriggerError::RecursionLimit {
                        depth,
                        trigger: spec.name.clone(),
                    });
                }
                let stmt_mark = self.graph.mark();
                run_ast(
                    &mut self.graph,
                    &spec.statement,
                    surviving,
                    &Params::new(),
                    self.now_ms,
                )?;
                self.stats.fired += 1;
                if self.config.cascading_enabled {
                    self.fire_statement_triggers(stmt_mark, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Evaluate a condition against the current graph state (AFTER,
    /// ONCOMMIT, DETACHED). Returns the surviving binding rows.
    fn eval_condition_current(
        &self,
        spec: &TriggerSpec,
        seeds: Vec<Row>,
    ) -> Result<Vec<Row>, TriggerError> {
        eval_condition(&self.graph, spec, seeds, self.now_ms)
    }
}

/// Evaluate a trigger condition **per seed row** against `view`. The
/// surviving rows are the condition's output bindings merged with the seed's
/// transition variables (a condition projecting `WITH count(p) AS n` must
/// not lose `NEW`/`NEWNODES` for the statement — §4.2: the statement refers
/// to the transition variables and any bindings established by the
/// condition, as in the paper's `NewCriticalLineage` and
/// `MoveToNearHospital` examples).
/// Split seed rows into activation units: `FOR EACH` executes the
/// condition and statement once per affected item; `FOR ALL` once per
/// statement (paper §4.2 "Granularity").
fn activation_units(spec: &TriggerSpec, seeds: Vec<Row>) -> Vec<Vec<Row>> {
    match spec.granularity {
        crate::spec::Granularity::Each => seeds.into_iter().map(|s| vec![s]).collect(),
        crate::spec::Granularity::All => vec![seeds],
    }
}

fn eval_condition(
    view: &dyn pg_graph::GraphView,
    spec: &TriggerSpec,
    seeds: Vec<Row>,
    now_ms: i64,
) -> Result<Vec<Row>, TriggerError> {
    let Some(cond) = &spec.condition else {
        return Ok(seeds);
    };
    let mut out = Vec::new();
    for seed in seeds {
        let rows = run_read_only(view, cond, vec![seed.clone()], &Params::new(), now_ms)?.bindings;
        for mut row in rows {
            for (k, v) in seed.iter() {
                if !row.contains(k) {
                    row.set(k.clone(), v.clone());
                }
            }
            out.push(row);
        }
    }
    Ok(out)
}
