//! Conservative termination analysis via the **triggering graph**
//! (Baralis–Ceri–Widom, cited by the paper in §6.2.3 for the potentially
//! non-terminating `MoveToNearHospital` trigger).
//!
//! An edge `t1 → t2` is added when some event `t1`'s statement *may
//! generate* matches `t2`'s monitored event. If the triggering graph is
//! acyclic, every cascade terminates; cycles are reported with the involved
//! triggers (the analysis is conservative — a reported cycle may still
//! terminate at run time, as the paper notes for bed-availability tests).

use crate::catalog::TriggerCatalog;
use crate::spec::{EventType, ItemKind, TriggerSpec};
use pg_cypher::ast::{Clause, Expr, PathPattern, RemoveItem, SetItem};
use std::collections::{BTreeMap, BTreeSet};

/// What part of an item an event touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventObject {
    /// The item itself (creation / deletion).
    Item,
    /// A label.
    Label,
    /// A property; `None` = statically unknown property.
    Property(Option<String>),
}

/// A statically derived event pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventPattern {
    pub event: EventType,
    pub item: ItemKind,
    /// Target label; `None` = unknown/any label.
    pub label: Option<String>,
    pub object: EventObject,
}

impl EventPattern {
    /// Whether a generated event `g` may match a monitored event `m`.
    pub fn may_match(g: &EventPattern, m: &EventPattern) -> bool {
        if g.event != m.event || g.item != m.item {
            return false;
        }
        match (&g.label, &m.label) {
            (Some(a), Some(b)) if a != b => return false,
            _ => {}
        }
        match (&g.object, &m.object) {
            (EventObject::Item, EventObject::Item) => true,
            (EventObject::Label, EventObject::Label) => true,
            (EventObject::Property(a), EventObject::Property(b)) => match (a, b) {
                (Some(x), Some(y)) => x == y,
                _ => true, // unknown property may touch anything
            },
            _ => false,
        }
    }
}

/// The monitored event of a trigger.
pub fn monitored_event(spec: &TriggerSpec) -> EventPattern {
    let object = match spec.event {
        EventType::Create | EventType::Delete => EventObject::Item,
        EventType::Set | EventType::Remove => match &spec.property {
            Some(p) => EventObject::Property(Some(p.clone())),
            None => EventObject::Label,
        },
    };
    EventPattern {
        event: spec.event,
        item: spec.item,
        label: Some(spec.label.clone()),
        object,
    }
}

/// Conservatively derive the events a statement may generate. Labels of
/// variables are inferred from the patterns binding them in the trigger's
/// condition and statement; unknown variables yield wildcard labels.
pub fn generated_events(spec: &TriggerSpec) -> Vec<EventPattern> {
    // var -> candidate node labels / rel types inferred from patterns
    let mut node_labels: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut rel_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut rel_vars: BTreeSet<String> = BTreeSet::new();

    let mut all_clauses: Vec<&Clause> = Vec::new();
    if let Some(cond) = &spec.condition {
        all_clauses.extend(cond.clauses.iter());
    }
    all_clauses.extend(spec.statement.clauses.iter());

    fn harvest_pattern(
        p: &PathPattern,
        node_labels: &mut BTreeMap<String, BTreeSet<String>>,
        rel_types: &mut BTreeMap<String, BTreeSet<String>>,
        rel_vars: &mut BTreeSet<String>,
    ) {
        if let Some(v) = &p.start.var {
            node_labels
                .entry(v.clone())
                .or_default()
                .extend(p.start.labels.iter().cloned());
        }
        for (r, n) in &p.segments {
            if let Some(v) = &r.var {
                rel_vars.insert(v.clone());
                rel_types
                    .entry(v.clone())
                    .or_default()
                    .extend(r.types.iter().cloned());
            }
            if let Some(v) = &n.var {
                node_labels
                    .entry(v.clone())
                    .or_default()
                    .extend(n.labels.iter().cloned());
            }
        }
    }

    fn harvest_clauses<'a>(
        clauses: impl Iterator<Item = &'a Clause>,
        node_labels: &mut BTreeMap<String, BTreeSet<String>>,
        rel_types: &mut BTreeMap<String, BTreeSet<String>>,
        rel_vars: &mut BTreeSet<String>,
    ) {
        for c in clauses {
            match c {
                Clause::Match { patterns, .. } | Clause::Create { patterns } => {
                    for p in patterns {
                        harvest_pattern(p, node_labels, rel_types, rel_vars);
                    }
                }
                Clause::Merge { pattern, .. } => {
                    harvest_pattern(pattern, node_labels, rel_types, rel_vars)
                }
                Clause::Foreach { body, .. } => {
                    harvest_clauses(body.iter(), node_labels, rel_types, rel_vars)
                }
                _ => {}
            }
        }
    }
    harvest_clauses(
        all_clauses.iter().copied(),
        &mut node_labels,
        &mut rel_types,
        &mut rel_vars,
    );

    // Transition variables carry the trigger's own target label.
    for tv in ["NEW", "OLD", "NEWNODES", "OLDNODES"] {
        let name = spec
            .referencing
            .iter()
            .find(|(v, _)| v.keyword() == tv)
            .map(|(_, a)| a.clone())
            .unwrap_or_else(|| tv.to_string());
        if spec.item == ItemKind::Node {
            node_labels
                .entry(name)
                .or_default()
                .insert(spec.label.clone());
        }
    }

    let mut out: Vec<EventPattern> = Vec::new();
    let push = |ep: EventPattern, out: &mut Vec<EventPattern>| {
        if !out.contains(&ep) {
            out.push(ep);
        }
    };

    fn labels_of_expr(
        e: &Expr,
        node_labels: &BTreeMap<String, BTreeSet<String>>,
    ) -> Vec<Option<String>> {
        match e {
            Expr::Var(v) => match node_labels.get(v) {
                Some(ls) if !ls.is_empty() => ls.iter().cloned().map(Some).collect(),
                _ => vec![None],
            },
            _ => vec![None],
        }
    }

    fn walk(
        clauses: &[Clause],
        spec_item_hint: &BTreeMap<String, BTreeSet<String>>,
        rel_types: &BTreeMap<String, BTreeSet<String>>,
        rel_vars: &BTreeSet<String>,
        push: &mut dyn FnMut(EventPattern),
    ) {
        for c in clauses {
            match c {
                Clause::Create { patterns } => {
                    for p in patterns {
                        let mut nodes = vec![&p.start];
                        for (r, n) in &p.segments {
                            nodes.push(n);
                            for t in &r.types {
                                push(EventPattern {
                                    event: EventType::Create,
                                    item: ItemKind::Relationship,
                                    label: Some(t.clone()),
                                    object: EventObject::Item,
                                });
                            }
                        }
                        for n in nodes {
                            // A node pattern with a bound var is a reuse, not
                            // a creation — but conservatively treat unbound
                            // ones as creations of each labelled kind.
                            if n.labels.is_empty() {
                                if n.var.is_none() {
                                    push(EventPattern {
                                        event: EventType::Create,
                                        item: ItemKind::Node,
                                        label: None,
                                        object: EventObject::Item,
                                    });
                                }
                            } else {
                                for l in &n.labels {
                                    push(EventPattern {
                                        event: EventType::Create,
                                        item: ItemKind::Node,
                                        label: Some(l.clone()),
                                        object: EventObject::Item,
                                    });
                                }
                            }
                        }
                    }
                }
                Clause::Merge {
                    pattern,
                    on_create,
                    on_match,
                } => {
                    walk(
                        &[Clause::Create {
                            patterns: vec![pattern.clone()],
                        }],
                        spec_item_hint,
                        rel_types,
                        rel_vars,
                        push,
                    );
                    for items in [on_create, on_match] {
                        walk(
                            &[Clause::Set {
                                items: items.clone(),
                            }],
                            spec_item_hint,
                            rel_types,
                            rel_vars,
                            push,
                        );
                    }
                }
                Clause::Delete { exprs, .. } => {
                    for e in exprs {
                        if let Expr::Var(v) = e {
                            if rel_vars.contains(v) {
                                let types = rel_types.get(v).cloned().unwrap_or_default();
                                if types.is_empty() {
                                    push(EventPattern {
                                        event: EventType::Delete,
                                        item: ItemKind::Relationship,
                                        label: None,
                                        object: EventObject::Item,
                                    });
                                } else {
                                    for t in types {
                                        push(EventPattern {
                                            event: EventType::Delete,
                                            item: ItemKind::Relationship,
                                            label: Some(t),
                                            object: EventObject::Item,
                                        });
                                    }
                                }
                                continue;
                            }
                        }
                        for label in labels_of_expr(e, spec_item_hint) {
                            push(EventPattern {
                                event: EventType::Delete,
                                item: ItemKind::Node,
                                label,
                                object: EventObject::Item,
                            });
                        }
                    }
                }
                Clause::Set { items } => {
                    for item in items {
                        match item {
                            SetItem::Prop { target, key, .. } => {
                                let is_rel = matches!(target, Expr::Var(v) if rel_vars.contains(v));
                                let labels = if is_rel {
                                    match target {
                                        Expr::Var(v) => rel_types
                                            .get(v)
                                            .map(|ts| {
                                                ts.iter().cloned().map(Some).collect::<Vec<_>>()
                                            })
                                            .filter(|v| !v.is_empty())
                                            .unwrap_or_else(|| vec![None]),
                                        _ => vec![None],
                                    }
                                } else {
                                    labels_of_expr(target, spec_item_hint)
                                };
                                for label in labels {
                                    push(EventPattern {
                                        event: EventType::Set,
                                        item: if is_rel {
                                            ItemKind::Relationship
                                        } else {
                                            ItemKind::Node
                                        },
                                        label,
                                        object: EventObject::Property(Some(key.clone())),
                                    });
                                }
                            }
                            SetItem::Labels { labels, .. } => {
                                for l in labels {
                                    push(EventPattern {
                                        event: EventType::Set,
                                        item: ItemKind::Node,
                                        label: Some(l.clone()),
                                        object: EventObject::Label,
                                    });
                                }
                            }
                            SetItem::ReplaceProps { var, .. } | SetItem::MergeProps { var, .. } => {
                                for label in labels_of_expr(&Expr::Var(var.clone()), spec_item_hint)
                                {
                                    push(EventPattern {
                                        event: EventType::Set,
                                        item: ItemKind::Node,
                                        label,
                                        object: EventObject::Property(None),
                                    });
                                }
                            }
                        }
                    }
                }
                Clause::Remove { items } => {
                    for item in items {
                        match item {
                            RemoveItem::Prop { target, key } => {
                                for label in labels_of_expr(target, spec_item_hint) {
                                    push(EventPattern {
                                        event: EventType::Remove,
                                        item: ItemKind::Node,
                                        label,
                                        object: EventObject::Property(Some(key.clone())),
                                    });
                                }
                            }
                            RemoveItem::Labels { labels, .. } => {
                                for l in labels {
                                    push(EventPattern {
                                        event: EventType::Remove,
                                        item: ItemKind::Node,
                                        label: Some(l.clone()),
                                        object: EventObject::Label,
                                    });
                                }
                            }
                        }
                    }
                }
                Clause::Foreach { body, .. } => {
                    walk(body, spec_item_hint, rel_types, rel_vars, push)
                }
                _ => {}
            }
        }
    }

    let mut push_fn = |ep: EventPattern| push(ep, &mut out);
    walk(
        &spec.statement.clauses,
        &node_labels,
        &rel_types,
        &rel_vars,
        &mut push_fn,
    );
    out
}

/// The triggering graph and its analysis result.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminationReport {
    /// Trigger names, in catalog order.
    pub triggers: Vec<String>,
    /// Edges `(from, to)` meaning "from's action may activate to".
    pub edges: Vec<(String, String)>,
    /// Triggers involved in at least one cycle.
    pub cyclic_triggers: Vec<String>,
}

impl TerminationReport {
    /// `true` when every cascade is guaranteed to terminate.
    pub fn is_acyclic(&self) -> bool {
        self.cyclic_triggers.is_empty()
    }
}

/// Build the triggering graph for a catalog and detect cycles.
pub fn analyze(catalog: &TriggerCatalog) -> TerminationReport {
    let specs: Vec<&TriggerSpec> = catalog.all().map(|t| t.spec.as_ref()).collect();
    let monitored: Vec<EventPattern> = specs.iter().map(|s| monitored_event(s)).collect();
    let generated: Vec<Vec<EventPattern>> = specs.iter().map(|s| generated_events(s)).collect();

    let mut edges = Vec::new();
    let n = specs.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, gen) in generated.iter().enumerate() {
        for (j, mon) in monitored.iter().enumerate() {
            if gen.iter().any(|g| EventPattern::may_match(g, mon)) {
                edges.push((specs[i].name.clone(), specs[j].name.clone()));
                adj[i].push(j);
            }
        }
    }

    // A trigger is cyclic iff it can reach itself.
    let mut cyclic = Vec::new();
    for start in 0..n {
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = adj[start].clone();
        let mut reaches_self = false;
        while let Some(x) = stack.pop() {
            if x == start {
                reaches_self = true;
                break;
            }
            if !seen[x] {
                seen[x] = true;
                stack.extend(adj[x].iter().copied());
            }
        }
        if reaches_self {
            cyclic.push(specs[start].name.clone());
        }
    }

    TerminationReport {
        triggers: specs.iter().map(|s| s.name.clone()).collect(),
        edges,
        cyclic_triggers: cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{parse_trigger_ddl, DdlStatement};

    fn spec(src: &str) -> TriggerSpec {
        match parse_trigger_ddl(src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    fn catalog_of(ddls: &[&str]) -> TriggerCatalog {
        let mut c = TriggerCatalog::new();
        for d in ddls {
            c.install(spec(d)).unwrap();
        }
        c
    }

    #[test]
    fn alert_chain_is_acyclic() {
        // A creates Alert; B monitors Alert and creates Log; no cycle.
        let c = catalog_of(&[
            "CREATE TRIGGER a AFTER CREATE ON 'Mutation' FOR EACH NODE BEGIN CREATE (:Alert) END",
            "CREATE TRIGGER b AFTER CREATE ON 'Alert' FOR EACH NODE BEGIN CREATE (:Log) END",
        ]);
        let report = analyze(&c);
        assert!(report.is_acyclic());
        assert!(report.edges.contains(&("a".into(), "b".into())));
        assert!(!report.edges.contains(&("b".into(), "a".into())));
    }

    #[test]
    fn self_loop_detected() {
        let c = catalog_of(&[
            "CREATE TRIGGER loops AFTER CREATE ON 'Alert' FOR EACH NODE BEGIN CREATE (:Alert) END",
        ]);
        let report = analyze(&c);
        assert_eq!(report.cyclic_triggers, vec!["loops"]);
    }

    #[test]
    fn two_trigger_cycle_detected() {
        let c = catalog_of(&[
            "CREATE TRIGGER x AFTER CREATE ON 'A' FOR EACH NODE BEGIN CREATE (:B) END",
            "CREATE TRIGGER y AFTER CREATE ON 'B' FOR EACH NODE BEGIN CREATE (:A) END",
        ]);
        let report = analyze(&c);
        assert_eq!(report.cyclic_triggers.len(), 2);
    }

    #[test]
    fn property_events_match_only_same_property() {
        let c = catalog_of(&[
            "CREATE TRIGGER setter AFTER CREATE ON 'P' FOR EACH NODE
             BEGIN MATCH (q:Q) SET q.score = 1 END",
            "CREATE TRIGGER watch_score AFTER SET ON 'Q'.'score' FOR EACH NODE BEGIN CREATE (:L1) END",
            "CREATE TRIGGER watch_other AFTER SET ON 'Q'.'other' FOR EACH NODE BEGIN CREATE (:L2) END",
        ]);
        let report = analyze(&c);
        assert!(report
            .edges
            .contains(&("setter".into(), "watch_score".into())));
        assert!(!report
            .edges
            .contains(&("setter".into(), "watch_other".into())));
    }

    #[test]
    fn unknown_label_is_wildcard() {
        // DELETE on a variable with unknown labels may delete anything.
        let c = catalog_of(&[
            "CREATE TRIGGER del AFTER CREATE ON 'P' FOR EACH NODE
             BEGIN MATCH (x) WITH x LIMIT 1 DETACH DELETE x END",
            "CREATE TRIGGER watch AFTER DELETE ON 'Anything' FOR EACH NODE BEGIN CREATE (:L) END",
        ]);
        let report = analyze(&c);
        assert!(report.edges.contains(&("del".into(), "watch".into())));
    }

    #[test]
    fn move_to_near_hospital_is_cyclic() {
        // The paper's §6.2.3 example: relocating ICU patients may re-create
        // TreatedAt relationships… but the trigger monitors IcuPatient node
        // creation, which its statement does not generate — the cascade in
        // the paper happens because relocation can overflow the destination
        // hospital, monitored by a TreatedAt-relationship trigger variant.
        let c = catalog_of(&[
            "CREATE TRIGGER moveOnOverflow AFTER CREATE ON 'TreatedAt' FOR EACH RELATIONSHIP
             WHEN MATCH (p:IcuPatient)-[NEW]-(h:Hospital) WITH COUNT(p) AS n, h WHERE n > h.icuBeds
             BEGIN
               MATCH (pn:NEW), MATCH (h:Hospital)-[ct:ConnectedTo]-(hc:Hospital)
               WITH pn, hc ORDER BY ct.distance LIMIT 1
               MATCH (pn)-[c:TreatedAt]-(h2) DELETE c CREATE (pn)-[:TreatedAt]->(hc)
             END",
        ]);
        let report = analyze(&c);
        assert_eq!(report.cyclic_triggers, vec!["moveOnOverflow"]);
    }

    #[test]
    fn generated_events_for_paper_trigger() {
        let s = spec(
            "CREATE TRIGGER NewCriticalMutation AFTER CREATE ON 'Mutation' FOR EACH NODE
             WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
             BEGIN CREATE (:Alert{desc: 'x'}) END",
        );
        let gen = generated_events(&s);
        assert!(gen.contains(&EventPattern {
            event: EventType::Create,
            item: ItemKind::Node,
            label: Some("Alert".into()),
            object: EventObject::Item,
        }));
        let mon = monitored_event(&s);
        assert_eq!(mon.label.as_deref(), Some("Mutation"));
    }
}
