//! Parser for the PG-Trigger DDL (paper Figure 1) plus `DROP TRIGGER`.
//!
//! The grammar, verbatim from the paper:
//!
//! ```text
//! CREATE TRIGGER <name> <time> <event>
//! ON <label>[.<property>]
//! [REFERENCING <alias for old or new>...]
//! FOR <granularity> <item>
//! [WHEN <condition>]
//! BEGIN
//! <statement>
//! END
//!
//! <time>        ::= { BEFORE | AFTER | ONCOMMIT | DETACHED }
//! <event>       ::= { CREATE | DELETE | SET | REMOVE }
//! <granularity> ::= { EACH | ALL }
//! <item>        ::= { NODE | RELATIONSHIP }
//! ```
//!
//! The embedded `<condition>` and `<statement>` are Cypher fragments parsed
//! by `pg-cypher` (lenient mode, which accepts the paper's `THEN` /
//! `BEGIN … END` block punctuation).

use crate::error::InstallError;
use crate::spec::*;
use pg_cypher::ast::{Clause, RemoveItem, SetItem};
use pg_cypher::lexer::lex;
use pg_cypher::token::{Token, TokenKind};
use pg_cypher::{parse_expression, parse_query_lenient, Query};

/// A parsed DDL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DdlStatement {
    CreateTrigger(TriggerSpec),
    DropTrigger(String),
}

/// Quick check whether a source string looks like trigger DDL (used by the
/// session to dispatch between DDL and queries).
pub fn is_trigger_ddl(src: &str) -> bool {
    let up = src.trim_start().to_ascii_uppercase();
    up.starts_with("CREATE TRIGGER") || up.starts_with("DROP TRIGGER")
}

/// A parsed property-index DDL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexDdl {
    /// `CREATE INDEX ON :Label(key)`
    Create { label: String, key: String },
    /// `DROP INDEX ON :Label(key)`
    Drop { label: String, key: String },
    /// `CREATE INDEX ON -[:TYPE(key)]-` (relationship-property index)
    CreateRel { rel_type: String, key: String },
    /// `DROP INDEX ON -[:TYPE(key)]-`
    DropRel { rel_type: String, key: String },
    /// `CREATE INDEX ON :Label(k1, k2, …)` (composite / multi-key index)
    CreateComposite { label: String, columns: Vec<String> },
    /// `DROP INDEX ON :Label(k1, k2, …)`
    DropComposite { label: String, columns: Vec<String> },
    /// `CREATE INDEX ON -[:TYPE(k1, k2, …)]-`
    CreateRelComposite {
        rel_type: String,
        columns: Vec<String>,
    },
    /// `DROP INDEX ON -[:TYPE(k1, k2, …)]-`
    DropRelComposite {
        rel_type: String,
        columns: Vec<String>,
    },
}

/// Quick check whether a source string looks like index DDL.
pub fn is_index_ddl(src: &str) -> bool {
    let up = src.trim_start().to_ascii_uppercase();
    up.starts_with("CREATE INDEX") || up.starts_with("DROP INDEX")
}

/// Parse `CREATE INDEX ON :Label(key)` / `DROP INDEX ON :Label(key)`
/// (Neo4j's classic index DDL shape; the label may be quoted like the
/// trigger grammar's `ON 'Mutation'`) and the relationship form
/// `CREATE INDEX ON -[:TYPE(key)]-` / `DROP INDEX ON -[:TYPE(key)]-`
/// (the surrounding dashes are optional: `[:TYPE(key)]` also parses).
pub fn parse_index_ddl(src: &str) -> Result<IndexDdl, InstallError> {
    let tokens = lex(src).map_err(InstallError::Parse)?;
    let mut p = DdlParser {
        src,
        tokens,
        pos: 0,
    };
    let create = if p.eat_ident("DROP") {
        false
    } else if p.peek() == &TokenKind::Create {
        p.bump();
        true
    } else {
        return Err(p.err("expected CREATE INDEX or DROP INDEX"));
    };
    if !p.eat_ident("INDEX") {
        return Err(p.err("expected INDEX"));
    }
    if p.peek() != &TokenKind::On {
        return Err(p.err("expected ON"));
    }
    p.bump();

    // Relationship form: [-] [ : TYPE ( key (, key)* ) ] [-]
    let leading_dash = p.peek() == &TokenKind::Minus;
    if leading_dash {
        p.bump();
    }
    if p.peek() == &TokenKind::LBracket {
        p.bump();
        if p.peek() == &TokenKind::Colon {
            p.bump();
        }
        let rel_type = p.expect_name()?;
        let mut keys = p.paren_keys()?;
        if p.peek() != &TokenKind::RBracket {
            return Err(p.err("expected ']' after the relationship key"));
        }
        p.bump();
        if p.peek() == &TokenKind::Minus {
            p.bump();
        }
        p.expect_end("index DDL")?;
        return Ok(match (create, keys.len()) {
            (true, 1) => IndexDdl::CreateRel {
                rel_type,
                key: keys.remove(0),
            },
            (false, 1) => IndexDdl::DropRel {
                rel_type,
                key: keys.remove(0),
            },
            (true, _) => IndexDdl::CreateRelComposite {
                rel_type,
                columns: keys,
            },
            (false, _) => IndexDdl::DropRelComposite {
                rel_type,
                columns: keys,
            },
        });
    }
    if leading_dash {
        return Err(p.err("expected '[' after '-' in relationship index DDL"));
    }

    // Node form: [:] Label ( key (, key)* )
    if p.peek() == &TokenKind::Colon {
        p.bump();
    }
    let label = p.expect_name()?;
    let mut keys = p.paren_keys()?;
    p.expect_end("index DDL")?;
    Ok(match (create, keys.len()) {
        (true, 1) => IndexDdl::Create {
            label,
            key: keys.remove(0),
        },
        (false, 1) => IndexDdl::Drop {
            label,
            key: keys.remove(0),
        },
        (true, _) => IndexDdl::CreateComposite {
            label,
            columns: keys,
        },
        (false, _) => IndexDdl::DropComposite {
            label,
            columns: keys,
        },
    })
}

/// Parse a `CREATE TRIGGER` / `DROP TRIGGER` statement.
pub fn parse_trigger_ddl(src: &str) -> Result<DdlStatement, InstallError> {
    let tokens = lex(src).map_err(InstallError::Parse)?;
    let mut p = DdlParser {
        src,
        tokens,
        pos: 0,
    };
    p.parse()
}

struct DdlParser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'a> DdlParser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> InstallError {
        InstallError::Syntax(format!(
            "{} (near offset {})",
            msg.into(),
            self.tokens[self.pos].pos
        ))
    }

    /// A name: identifier, keyword-as-name, or quoted string (the paper
    /// quotes labels: `ON 'Mutation'`).
    fn expect_name(&mut self) -> Result<String, InstallError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(s)
            }
            other => {
                if let Some(n) = other.as_name() {
                    let n = n.to_string();
                    self.bump();
                    Ok(n)
                } else {
                    Err(self.err(format!("expected a name, found {other}")))
                }
            }
        }
    }

    /// `( key (, key)* )` — the parenthesized property key list of index
    /// DDL: one key for single-key indexes, several for composite ones.
    fn paren_keys(&mut self) -> Result<Vec<String>, InstallError> {
        if self.peek() != &TokenKind::LParen {
            return Err(self.err("expected '(' after the label"));
        }
        self.bump();
        let mut keys = vec![self.expect_name()?];
        while self.peek() == &TokenKind::Comma {
            self.bump();
            keys.push(self.expect_name()?);
        }
        if self.peek() != &TokenKind::RParen {
            return Err(self.err("expected ')' after the property key list"));
        }
        self.bump();
        Ok(keys)
    }

    /// Require end of input (optionally a trailing semicolon).
    fn expect_end(&mut self, what: &str) -> Result<(), InstallError> {
        match self.peek() {
            TokenKind::Eof | TokenKind::Semicolon => Ok(()),
            other => Err(self.err(format!("unexpected input after {what}: {other}"))),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.bump();
                return true;
            }
        }
        false
    }

    fn parse(&mut self) -> Result<DdlStatement, InstallError> {
        // DROP TRIGGER <name>
        if self.eat_ident("DROP") {
            if !self.eat_ident("TRIGGER") {
                return Err(self.err("expected TRIGGER after DROP"));
            }
            let name = self.expect_name()?;
            return Ok(DdlStatement::DropTrigger(name));
        }
        if self.peek() != &TokenKind::Create {
            return Err(self.err("expected CREATE TRIGGER or DROP TRIGGER"));
        }
        self.bump();
        if !self.eat_ident("TRIGGER") {
            return Err(self.err("expected TRIGGER after CREATE"));
        }
        let name = self.expect_name()?;

        // <time>
        let time = if self.eat_ident("BEFORE") {
            ActionTime::Before
        } else if self.eat_ident("AFTER") {
            ActionTime::After
        } else if self.eat_ident("ONCOMMIT") {
            ActionTime::OnCommit
        } else if self.eat_ident("DETACHED") {
            ActionTime::Detached
        } else {
            return Err(self.err("expected BEFORE, AFTER, ONCOMMIT or DETACHED"));
        };

        // <event>
        let event = match self.peek() {
            TokenKind::Create => EventType::Create,
            TokenKind::Delete => EventType::Delete,
            TokenKind::Set => EventType::Set,
            TokenKind::Remove => EventType::Remove,
            other => {
                return Err(self.err(format!("expected CREATE/DELETE/SET/REMOVE, found {other}")))
            }
        };
        self.bump();

        // ON <label>[.<property>]
        if self.peek() != &TokenKind::On {
            return Err(self.err("expected ON"));
        }
        self.bump();
        let label = self.expect_name()?;
        let property = if self.peek() == &TokenKind::Dot {
            self.bump();
            Some(self.expect_name()?)
        } else {
            None
        };

        // [REFERENCING var AS alias ...]
        let mut referencing = Vec::new();
        if self.eat_ident("REFERENCING") {
            while let TokenKind::Ident(word) = self.peek().clone() {
                let Some(var) = TransitionVar::parse(&word) else {
                    break;
                };
                self.bump();
                if self.peek() != &TokenKind::As {
                    return Err(self.err("expected AS in REFERENCING clause"));
                }
                self.bump();
                let alias = self.expect_name()?;
                referencing.push((var, alias));
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                }
            }
            if referencing.is_empty() {
                return Err(self.err("REFERENCING requires at least one OLD/NEW alias"));
            }
        }

        // FOR <granularity> <item>
        if !self.eat_ident("FOR") {
            return Err(self.err("expected FOR"));
        }
        let granularity = if self.eat_ident("EACH") {
            Granularity::Each
        } else if self.eat_ident("ALL") {
            Granularity::All
        } else {
            return Err(self.err("expected EACH or ALL"));
        };
        let item = if self.eat_ident("NODE") || self.eat_ident("NODES") {
            ItemKind::Node
        } else if self.eat_ident("RELATIONSHIP") || self.eat_ident("RELATIONSHIPS") {
            ItemKind::Relationship
        } else {
            return Err(self.err("expected NODE(S) or RELATIONSHIP(S)"));
        };

        // [WHEN <condition>] — the condition spans up to the body's BEGIN.
        let condition_src = if self.peek() == &TokenKind::When {
            self.bump();
            let start = self.tokens[self.pos].pos;
            let begin_idx = self.find_body_begin()?;
            let end = self.tokens[begin_idx].pos;
            self.pos = begin_idx;
            Some(&self.src[start..end])
        } else {
            None
        };

        // BEGIN <statement> END
        if !self.eat_ident("BEGIN") {
            return Err(self.err("expected BEGIN"));
        }
        let body_start = self.tokens[self.pos].pos;
        let end_idx = self.find_matching_end()?;
        let body_src = &self.src[body_start..self.tokens[end_idx].pos];
        self.pos = end_idx + 1;
        match self.peek() {
            TokenKind::Eof | TokenKind::Semicolon => {}
            other => return Err(self.err(format!("unexpected input after END: {other}"))),
        }

        // Parse embedded fragments.
        let condition = match condition_src {
            None => None,
            Some(text) => Some(parse_condition(text)?),
        };
        let statement = parse_query_lenient(body_src).map_err(InstallError::Parse)?;

        let spec = TriggerSpec {
            name,
            time,
            event,
            label,
            property,
            referencing,
            granularity,
            item,
            condition,
            statement,
        };
        validate_spec(&spec)?;
        Ok(DdlStatement::CreateTrigger(spec))
    }

    /// Index of the body's `BEGIN` token (first top-level BEGIN after the
    /// current position; conditions cannot contain BEGIN).
    fn find_body_begin(&self) -> Result<usize, InstallError> {
        for i in self.pos..self.tokens.len() {
            if let TokenKind::Ident(s) = &self.tokens[i].kind {
                if s.eq_ignore_ascii_case("begin") {
                    return Ok(i);
                }
            }
        }
        Err(InstallError::Syntax(
            "missing BEGIN after WHEN condition".into(),
        ))
    }

    /// Index of the `END` matching the body's `BEGIN` (self.pos is just
    /// after BEGIN). `CASE … END` and nested `BEGIN … END` pairs are
    /// balanced.
    fn find_matching_end(&self) -> Result<usize, InstallError> {
        let mut depth = 1usize;
        for i in self.pos..self.tokens.len() {
            match &self.tokens[i].kind {
                TokenKind::Case => depth += 1,
                TokenKind::Ident(s) if s.eq_ignore_ascii_case("begin") => depth += 1,
                TokenKind::End => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(i);
                    }
                }
                _ => {}
            }
        }
        Err(InstallError::Syntax("missing END for trigger body".into()))
    }
}

/// Parse a `WHEN` condition: either a clause pipeline (`MATCH … WITH …
/// WHERE …`) or a bare boolean expression (wrapped as a filtering clause).
fn parse_condition(text: &str) -> Result<Query, InstallError> {
    let trimmed = text.trim();
    let starts_with_clause = {
        let up = trimmed.to_ascii_uppercase();
        ["MATCH", "OPTIONAL", "WITH", "UNWIND", "WHERE", "RETURN"]
            .iter()
            .any(|kw| up.starts_with(kw))
    };
    if starts_with_clause {
        parse_query_lenient(trimmed).map_err(InstallError::Parse)
    } else {
        let expr = parse_expression(trimmed).map_err(InstallError::Parse)?;
        Ok(Query {
            clauses: vec![Clause::Where(expr)],
        })
    }
}

/// Install-time semantic checks (paper §4.2).
pub fn validate_spec(spec: &TriggerSpec) -> Result<(), InstallError> {
    // Label events exist only for nodes (the 10-kind event matrix of §5.1:
    // {label, node-property, relationship-property} × {set, removal}).
    if spec.property.is_none()
        && matches!(spec.event, EventType::Set | EventType::Remove)
        && spec.item == ItemKind::Relationship
    {
        return Err(InstallError::Syntax(
            "SET/REMOVE on a relationship requires a property (relationship types are immutable)"
                .into(),
        ));
    }

    // Condition must be read-only.
    if let Some(cond) = &spec.condition {
        if cond.is_updating() {
            return Err(InstallError::UpdatingCondition(spec.name.clone()));
        }
    }

    // REFERENCING variables must match granularity and item kind.
    for (var, _) in &spec.referencing {
        let ok = match spec.granularity {
            Granularity::Each => matches!(var, TransitionVar::Old | TransitionVar::New),
            Granularity::All => match spec.item {
                ItemKind::Node => {
                    matches!(var, TransitionVar::OldNodes | TransitionVar::NewNodes)
                }
                ItemKind::Relationship => {
                    matches!(var, TransitionVar::OldRels | TransitionVar::NewRels)
                }
            },
        };
        if !ok {
            return Err(InstallError::BadReferencing {
                trigger: spec.name.clone(),
                var: var.keyword().to_string(),
                reason: "incompatible with the trigger's granularity/item (paper §4.2: with set-level granularity use *NODES/*RELS matching the FOR clause)",
            });
        }
    }

    // The statement may not set/remove the target label.
    if statement_mutates_label(&spec.statement.clauses, &spec.label) {
        return Err(InstallError::TargetLabelMutation {
            trigger: spec.name.clone(),
            label: spec.label.clone(),
        });
    }

    // BEFORE statements may only condition NEW states: reads, SET, ABORT.
    if spec.time == ActionTime::Before {
        if let Some(clause) = first_strong_clause(&spec.statement.clauses) {
            return Err(InstallError::BeforeStatementTooStrong {
                trigger: spec.name.clone(),
                clause,
            });
        }
    }
    Ok(())
}

fn statement_mutates_label(clauses: &[Clause], label: &str) -> bool {
    clauses.iter().any(|c| match c {
        Clause::Set { items } => items.iter().any(|i| match i {
            SetItem::Labels { labels, .. } => labels.iter().any(|l| l == label),
            _ => false,
        }),
        Clause::Remove { items } => items.iter().any(|i| match i {
            RemoveItem::Labels { labels, .. } => labels.iter().any(|l| l == label),
            _ => false,
        }),
        Clause::Merge {
            on_create,
            on_match,
            ..
        } => on_create.iter().chain(on_match.iter()).any(|i| match i {
            SetItem::Labels { labels, .. } => labels.iter().any(|l| l == label),
            _ => false,
        }),
        Clause::Foreach { body, .. } => statement_mutates_label(body, label),
        _ => false,
    })
}

fn first_strong_clause(clauses: &[Clause]) -> Option<&'static str> {
    for c in clauses {
        match c {
            Clause::Create { .. } => return Some("CREATE"),
            Clause::Merge { .. } => return Some("MERGE"),
            Clause::Delete { .. } => return Some("DELETE"),
            Clause::Remove { .. } => return Some("REMOVE"),
            Clause::Foreach { body, .. } => {
                if let Some(found) = first_strong_clause(body) {
                    return Some(found);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn create(src: &str) -> TriggerSpec {
        match parse_trigger_ddl(src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            other => panic!("unexpected {other:?}"),
        }
    }

    /// Paper §6.2.1 — first trigger, verbatim.
    const NEW_CRITICAL_MUTATION: &str = "
        CREATE TRIGGER NewCriticalMutation
        AFTER CREATE
        ON 'Mutation'
        FOR EACH NODE
        WHEN EXISTS (NEW)-[:Risk]-(:CriticalEffect)
        BEGIN
          CREATE (:Alert{time:DATETIME(),
                         desc:'New critical mutation',
                         mutation:NEW.name})
        END";

    #[test]
    fn parse_paper_trigger_1() {
        let t = create(NEW_CRITICAL_MUTATION);
        assert_eq!(t.name, "NewCriticalMutation");
        assert_eq!(t.time, ActionTime::After);
        assert_eq!(t.event, EventType::Create);
        assert_eq!(t.label, "Mutation");
        assert_eq!(t.property, None);
        assert_eq!(t.granularity, Granularity::Each);
        assert_eq!(t.item, ItemKind::Node);
        assert!(t.condition.is_some());
        assert_eq!(t.statement.clauses.len(), 1);
    }

    /// Paper §6.2.1 — property-event trigger.
    #[test]
    fn parse_paper_trigger_property_event() {
        let t = create(
            "CREATE TRIGGER WhoDesignationChange
             AFTER SET
             ON 'Lineage'.'whoDesignation'
             FOR EACH NODE
             WHEN OLD.whoDesignation <> NEW.whoDesignation
             BEGIN
               CREATE (:Alert{time: DATETIME(),
                 desc:'New Designation for an existing Lineage'})
             END",
        );
        assert_eq!(t.event, EventType::Set);
        assert_eq!(t.label, "Lineage");
        assert_eq!(t.property.as_deref(), Some("whoDesignation"));
    }

    /// Paper §6.2.2 — set-granularity trigger with aggregate condition.
    #[test]
    fn parse_paper_set_granularity() {
        let t = create(
            "CREATE TRIGGER IcuPatientsOverThreshold
             AFTER CREATE
             ON 'IcuPatient'
             FOR ALL NODES
             WHEN
               MATCH (p:HospitalizedPatient:IcuPatient)
                 -[:TreatedAt]-(:Hospital{name:'Sacco'})
               WITH COUNT(p) AS icuPat
               WHERE icuPat > 50
             BEGIN
               CREATE (:Alert{time:DATETIME(),desc:'ICU patients
                 at Sacco Hospital are more than 50'})
             END",
        );
        assert_eq!(t.granularity, Granularity::All);
        let cond = t.condition.unwrap();
        assert_eq!(cond.clauses.len(), 2); // MATCH + WITH(where)
    }

    /// Paper §6.2.3 — trigger with FOREACH/THEN/BEGIN body.
    #[test]
    fn parse_paper_move_to_near_hospital() {
        let t = create(
            "CREATE TRIGGER MoveToNearHospital
             AFTER CREATE
             ON 'IcuPatient'
             FOR EACH NODE
             WHEN
               MATCH (NEW:HospitalizedPatient:IcuPatient)
                 -[:TreatedAt]-(h:Hospital)
                 -[:LocatedIn]-(:Region{name:'Lombardy'}),
               MATCH (p:IcuPatient)-[:TreatedAt]-(h)
               WITH COUNT(p) AS TotalIcuPat, h
               WHERE TotalIcuPat > h.icuBeds
             BEGIN
               MATCH (h:Hospital)
                 -[:LocatedIn]-(:Region{name:'Lombardy'}),
               MATCH (pn:NEW)-[:TreatedAt]-(h)
                 -[ct:ConnectedTo]-(hc:Hospital)
               WITH ct, pn, h, hc ORDER BY ct.distance LIMIT 1
               THEN
               BEGIN
                 MATCH (pn)-[c:TreatedAt]-(h)
                 DELETE c
                 CREATE (pn)-[:TreatedAt]->(hc)
               END
             END",
        );
        assert_eq!(t.name, "MoveToNearHospital");
        assert!(t.statement.clauses.len() >= 4);
    }

    #[test]
    fn parse_referencing_clause() {
        let t = create(
            "CREATE TRIGGER R AFTER CREATE ON 'P'
             REFERENCING NEWNODES AS admitted
             FOR ALL NODES
             BEGIN CREATE (:Log{n: 1}) END",
        );
        assert_eq!(
            t.referencing,
            vec![(TransitionVar::NewNodes, "admitted".into())]
        );
        assert_eq!(t.var_name(TransitionVar::NewNodes), "admitted");
    }

    #[test]
    fn parse_drop_trigger() {
        assert_eq!(
            parse_trigger_ddl("DROP TRIGGER NewCriticalMutation").unwrap(),
            DdlStatement::DropTrigger("NewCriticalMutation".into())
        );
    }

    #[test]
    fn is_ddl_detects() {
        assert!(is_trigger_ddl(
            "  create trigger t AFTER CREATE ON 'x' FOR EACH NODE BEGIN RETURN 1 END"
        ));
        assert!(is_trigger_ddl("DROP TRIGGER t"));
        assert!(!is_trigger_ddl("MATCH (n) RETURN n"));
        assert!(!is_trigger_ddl("CREATE (n)"));
        assert!(!is_trigger_ddl("CREATE INDEX ON :L(x)"));
    }

    #[test]
    fn parse_index_ddl_shapes() {
        assert!(is_index_ddl("  create index on :L(x)"));
        assert!(is_index_ddl("DROP INDEX ON :L(x)"));
        assert!(!is_index_ddl("CREATE (n)"));
        assert_eq!(
            parse_index_ddl("CREATE INDEX ON :Mutation(name)").unwrap(),
            IndexDdl::Create {
                label: "Mutation".into(),
                key: "name".into()
            }
        );
        // quoted label, no colon (trigger-grammar style), trailing semicolon
        assert_eq!(
            parse_index_ddl("CREATE INDEX ON 'Hospital'(name);").unwrap(),
            IndexDdl::Create {
                label: "Hospital".into(),
                key: "name".into()
            }
        );
        assert_eq!(
            parse_index_ddl("DROP INDEX ON :Mutation(name)").unwrap(),
            IndexDdl::Drop {
                label: "Mutation".into(),
                key: "name".into()
            }
        );
        assert!(parse_index_ddl("CREATE INDEX ON :L").is_err());
        assert!(parse_index_ddl("CREATE INDEX :L(x)").is_err());
        assert!(parse_index_ddl("CREATE INDEX ON :L(x) extra").is_err());
    }

    #[test]
    fn parse_composite_index_ddl_shapes() {
        let cols = |cs: &[&str]| cs.iter().map(|c| c.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_index_ddl("CREATE INDEX ON :Patient(status, severity)").unwrap(),
            IndexDdl::CreateComposite {
                label: "Patient".into(),
                columns: cols(&["status", "severity"]),
            }
        );
        assert_eq!(
            parse_index_ddl("DROP INDEX ON 'Patient'(status, severity);").unwrap(),
            IndexDdl::DropComposite {
                label: "Patient".into(),
                columns: cols(&["status", "severity"]),
            }
        );
        assert_eq!(
            parse_index_ddl("CREATE INDEX ON -[:ConnectedTo(kind, distance)]-").unwrap(),
            IndexDdl::CreateRelComposite {
                rel_type: "ConnectedTo".into(),
                columns: cols(&["kind", "distance"]),
            }
        );
        assert_eq!(
            parse_index_ddl("DROP INDEX ON [:ConnectedTo(kind, distance)]").unwrap(),
            IndexDdl::DropRelComposite {
                rel_type: "ConnectedTo".into(),
                columns: cols(&["kind", "distance"]),
            }
        );
        assert!(parse_index_ddl("CREATE INDEX ON :L(x,)").is_err());
        assert!(parse_index_ddl("CREATE INDEX ON :L(x, y").is_err());
    }

    #[test]
    fn all_times_and_events_parse() {
        for time in ["BEFORE", "AFTER", "ONCOMMIT", "DETACHED"] {
            for event in ["CREATE", "DELETE", "SET", "REMOVE"] {
                let body = if time == "BEFORE" {
                    "SET NEW.checked = true"
                } else {
                    "CREATE (:Log)"
                };
                let src = format!(
                    "CREATE TRIGGER t {time} {event} ON 'L' FOR EACH NODE BEGIN {body} END"
                );
                let spec = create(&src);
                assert_eq!(spec.time.keyword(), time);
                assert_eq!(spec.event.keyword(), event);
            }
        }
    }

    #[test]
    fn rejects_updating_condition() {
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L' FOR EACH NODE
             WHEN MATCH (n:L) WITH n WHERE n.x > 0
             BEGIN CREATE (:X) END",
        );
        assert!(err.is_ok());
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L' FOR EACH NODE
             WHEN MATCH (n:L) WITH n, 1 AS one WHERE one = 1
             BEGIN CREATE (:X) END",
        );
        assert!(err.is_ok());
        // a condition that mutates is rejected — build via spec directly
        let mut spec =
            create("CREATE TRIGGER t AFTER CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END");
        spec.condition = Some(pg_cypher::parse_query("CREATE (:Evil)").unwrap());
        assert!(matches!(
            validate_spec(&spec),
            Err(InstallError::UpdatingCondition(_))
        ));
    }

    #[test]
    fn rejects_target_label_mutation() {
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L' FOR EACH NODE
             BEGIN MATCH (n:Other) SET n:L END",
        )
        .unwrap_err();
        assert!(matches!(err, InstallError::TargetLabelMutation { .. }));
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L' FOR EACH NODE
             BEGIN MATCH (n:L) REMOVE n:L END",
        )
        .unwrap_err();
        assert!(matches!(err, InstallError::TargetLabelMutation { .. }));
        // other labels are fine
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER ok AFTER CREATE ON 'L' FOR EACH NODE
             BEGIN MATCH (n:Other) SET n:Flagged END",
        )
        .is_ok());
    }

    #[test]
    fn rejects_strong_before_statements() {
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad BEFORE CREATE ON 'L' FOR EACH NODE
             BEGIN CREATE (:X) END",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            InstallError::BeforeStatementTooStrong {
                clause: "CREATE",
                ..
            }
        ));
        // SET and ABORT are fine
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER ok BEFORE CREATE ON 'L' FOR EACH NODE
             BEGIN SET NEW.audited = true END",
        )
        .is_ok());
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER ok2 BEFORE SET ON 'L'.'x' FOR EACH NODE
             WHEN NEW.x < 0
             BEGIN ABORT 'x must be non-negative' END",
        )
        .is_ok());
    }

    #[test]
    fn rejects_bad_referencing() {
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L'
             REFERENCING NEWNODES AS xs
             FOR EACH NODE
             BEGIN CREATE (:X) END",
        )
        .unwrap_err();
        assert!(matches!(err, InstallError::BadReferencing { .. }));
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER CREATE ON 'L'
             REFERENCING NEWRELS AS xs
             FOR ALL NODES
             BEGIN CREATE (:X) END",
        )
        .unwrap_err();
        assert!(matches!(err, InstallError::BadReferencing { .. }));
    }

    #[test]
    fn rejects_rel_label_events() {
        let err = parse_trigger_ddl(
            "CREATE TRIGGER bad AFTER SET ON 'Risk' FOR EACH RELATIONSHIP
             BEGIN CREATE (:X) END",
        )
        .unwrap_err();
        assert!(matches!(err, InstallError::Syntax(_)));
        // with a property it's fine
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER ok AFTER SET ON 'Risk'.'level' FOR EACH RELATIONSHIP
             BEGIN CREATE (:X) END",
        )
        .is_ok());
    }

    #[test]
    fn syntax_errors_reported() {
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER t WHENEVER CREATE ON 'x' FOR EACH NODE BEGIN END"
        )
        .is_err());
        assert!(
            parse_trigger_ddl("CREATE TRIGGER t AFTER CREATE ON 'x' FOR SOME NODE BEGIN END")
                .is_err()
        );
        assert!(parse_trigger_ddl(
            "CREATE TRIGGER t AFTER CREATE ON 'x' FOR EACH NODE BEGIN CREATE (:X)"
        )
        .is_err());
        assert!(parse_trigger_ddl("MATCH (n) RETURN n").is_err());
    }

    #[test]
    fn case_end_inside_body_balances() {
        let t = create(
            "CREATE TRIGGER c AFTER CREATE ON 'L' FOR EACH NODE
             BEGIN
               MATCH (n:Other)
               SET n.size = CASE WHEN n.x > 10 THEN 'big' ELSE 'small' END
             END",
        );
        assert_eq!(t.statement.clauses.len(), 2);
    }
}
