//! The trigger catalog: installed triggers with a total activation order.

use crate::error::InstallError;
use crate::spec::{ActionTime, TriggerSpec};

/// How triggers sharing an action time are ordered (paper §4.2: "the most
/// sensible option … is to resort to the trigger creation time"; footnote 3
/// mentions name order as PostgreSQL's alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Total order by installation sequence (the paper's choice).
    #[default]
    CreationTime,
    /// Alphabetical by trigger name (PostgreSQL-style; also what APOC's
    /// `before` phase does, §5.1).
    Name,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct InstalledTrigger {
    pub spec: TriggerSpec,
    /// Installation sequence number (creation-time order).
    pub seq: u64,
    /// Paused triggers (APOC `stop`/`start` parity) don't activate.
    pub enabled: bool,
}

/// The catalog of installed triggers.
#[derive(Debug, Default)]
pub struct TriggerCatalog {
    triggers: Vec<InstalledTrigger>,
    next_seq: u64,
    pub order: OrderPolicy,
}

impl TriggerCatalog {
    pub fn new() -> Self {
        TriggerCatalog::default()
    }

    /// Install a trigger (name must be fresh). Returns its sequence number.
    pub fn install(&mut self, spec: TriggerSpec) -> Result<u64, InstallError> {
        if self.triggers.iter().any(|t| t.spec.name == spec.name) {
            return Err(InstallError::DuplicateName(spec.name));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.triggers.push(InstalledTrigger {
            spec,
            seq,
            enabled: true,
        });
        Ok(seq)
    }

    /// Drop a trigger by name; `true` if it existed.
    pub fn drop_trigger(&mut self, name: &str) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.spec.name != name);
        self.triggers.len() != before
    }

    /// Drop all triggers (APOC `dropAll`).
    pub fn drop_all(&mut self) {
        self.triggers.clear();
    }

    /// Pause (`false`) or resume (`true`) a trigger; `true` if found.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.triggers.iter_mut().find(|t| t.spec.name == name) {
            Some(t) => {
                t.enabled = enabled;
                true
            }
            None => false,
        }
    }

    pub fn get(&self, name: &str) -> Option<&InstalledTrigger> {
        self.triggers.iter().find(|t| t.spec.name == name)
    }

    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// All triggers in catalog order (unsorted).
    pub fn all(&self) -> impl Iterator<Item = &InstalledTrigger> {
        self.triggers.iter()
    }

    /// Enabled triggers with the given action time, in activation order.
    pub fn scheduled(&self, time: ActionTime) -> Vec<&InstalledTrigger> {
        let mut out: Vec<&InstalledTrigger> = self
            .triggers
            .iter()
            .filter(|t| t.enabled && t.spec.time == time)
            .collect();
        match self.order {
            OrderPolicy::CreationTime => out.sort_by_key(|t| t.seq),
            OrderPolicy::Name => out.sort_by(|a, b| a.spec.name.cmp(&b.spec.name)),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{parse_trigger_ddl, DdlStatement};

    fn spec(name: &str, time: &str) -> TriggerSpec {
        let src = format!(
            "CREATE TRIGGER {name} {time} CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END"
        );
        match parse_trigger_ddl(&src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn install_orders_by_creation() {
        let mut c = TriggerCatalog::new();
        c.install(spec("zeta", "AFTER")).unwrap();
        c.install(spec("alpha", "AFTER")).unwrap();
        let names: Vec<_> = c
            .scheduled(ActionTime::After)
            .iter()
            .map(|t| t.spec.name.clone())
            .collect();
        assert_eq!(names, vec!["zeta", "alpha"]);
    }

    #[test]
    fn name_order_policy() {
        let mut c = TriggerCatalog::new();
        c.order = OrderPolicy::Name;
        c.install(spec("zeta", "AFTER")).unwrap();
        c.install(spec("alpha", "AFTER")).unwrap();
        let names: Vec<_> = c
            .scheduled(ActionTime::After)
            .iter()
            .map(|t| t.spec.name.clone())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = TriggerCatalog::new();
        c.install(spec("t", "AFTER")).unwrap();
        assert!(matches!(
            c.install(spec("t", "AFTER")),
            Err(InstallError::DuplicateName(_))
        ));
    }

    #[test]
    fn drop_and_pause() {
        let mut c = TriggerCatalog::new();
        c.install(spec("a", "AFTER")).unwrap();
        c.install(spec("b", "ONCOMMIT")).unwrap();
        assert_eq!(c.scheduled(ActionTime::After).len(), 1);
        assert_eq!(c.scheduled(ActionTime::OnCommit).len(), 1);
        assert!(c.set_enabled("a", false));
        assert!(c.scheduled(ActionTime::After).is_empty());
        assert!(c.set_enabled("a", true));
        assert!(c.drop_trigger("a"));
        assert!(!c.drop_trigger("a"));
        c.drop_all();
        assert!(c.is_empty());
    }
}
