//! The trigger catalog: installed triggers with a total activation order
//! and an event-keyed dispatch pre-filter.
//!
//! Trigger conditions are evaluated on every activating statement, so the
//! catalog must let the engine skip triggers whose events *cannot*
//! intersect a statement's delta **before** any per-trigger work (building
//! a `PreStateView`, computing affected items). [`DeltaSignature`]
//! compresses a delta into the touched event kinds, labels/types and
//! property keys; [`TriggerCatalog::wants`] answers "could any enabled
//! trigger of this action time match?" from a per-action-time summary
//! (event-kind bitmask + label set) maintained across installs/drops, and
//! [`TriggerCatalog::scheduled_matching`] yields only the triggers that
//! survive the per-spec filter, as cheap `Arc` clones.

use crate::error::InstallError;
use crate::spec::{ActionTime, EventType, ItemKind, TriggerSpec};
use pg_graph::Delta;
use std::collections::HashSet;
use std::sync::Arc;

/// How triggers sharing an action time are ordered (paper §4.2: "the most
/// sensible option … is to resort to the trigger creation time"; footnote 3
/// mentions name order as PostgreSQL's alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderPolicy {
    /// Total order by installation sequence (the paper's choice).
    #[default]
    CreationTime,
    /// Alphabetical by trigger name (PostgreSQL-style; also what APOC's
    /// `before` phase does, §5.1).
    Name,
}

/// One catalog entry. The spec is shared (`Arc`) so per-statement dispatch
/// never deep-clones trigger bodies.
#[derive(Debug, Clone)]
pub struct InstalledTrigger {
    pub spec: Arc<TriggerSpec>,
    /// Installation sequence number (creation-time order).
    pub seq: u64,
    /// Paused triggers (APOC `stop`/`start` parity) don't activate.
    pub enabled: bool,
}

/// The `(event, item)` kind of a trigger as one bit of an 8-bit mask.
fn kind_bit(event: EventType, item: ItemKind) -> u8 {
    let e = match event {
        EventType::Create => 0,
        EventType::Delete => 1,
        EventType::Set => 2,
        EventType::Remove => 3,
    };
    let i = match item {
        ItemKind::Node => 0,
        ItemKind::Relationship => 1,
    };
    1u8 << (e * 2 + i)
}

/// Per-action-time dispatch summary: which event kinds any enabled trigger
/// monitors, and the union of their target labels/types. Lets the engine
/// skip a whole trigger phase in O(delta) without touching the specs.
#[derive(Debug, Default, Clone)]
struct DispatchSummary {
    /// OR of [`kind_bit`] over enabled triggers of this action time.
    kinds: u8,
    /// Union of target labels/types of enabled triggers whose label check
    /// is exact at dispatch (CREATE/DELETE and label SET/REMOVE events).
    labels: HashSet<String>,
    /// Union of monitored property keys of enabled property-event triggers
    /// at this action time. Their target *label* cannot be checked from
    /// the delta alone (the touched item may carry the label without the
    /// delta mentioning it), but the key can.
    prop_keys: HashSet<String>,
}

/// The touched event kinds, labels/types and property keys of a statement
/// delta — everything the dispatch pre-filter needs, computed once per
/// statement.
#[derive(Debug, Default)]
pub struct DeltaSignature {
    kinds: u8,
    /// Labels/types with exact dispatch semantics: created/deleted node
    /// labels and rel types, assigned/removed labels.
    labels: HashSet<String>,
    /// Union of all assigned/removed property keys (node and rel).
    prop_keys: HashSet<String>,
    assigned_node_prop_keys: HashSet<String>,
    removed_node_prop_keys: HashSet<String>,
    assigned_rel_prop_keys: HashSet<String>,
    removed_rel_prop_keys: HashSet<String>,
    /// Labels touched by label SET events only (label-event dispatch).
    assigned_labels: HashSet<String>,
    removed_labels: HashSet<String>,
    created_node_labels: HashSet<String>,
    deleted_node_labels: HashSet<String>,
    created_rel_types: HashSet<String>,
    deleted_rel_types: HashSet<String>,
}

impl DeltaSignature {
    /// Compress a delta into its dispatch signature.
    pub fn of(delta: &Delta) -> DeltaSignature {
        let mut sig = DeltaSignature::default();
        for n in &delta.created_nodes {
            sig.kinds |= kind_bit(EventType::Create, ItemKind::Node);
            sig.created_node_labels.extend(n.labels.iter().cloned());
        }
        for n in &delta.deleted_nodes {
            sig.kinds |= kind_bit(EventType::Delete, ItemKind::Node);
            sig.deleted_node_labels.extend(n.labels.iter().cloned());
        }
        for r in &delta.created_rels {
            sig.kinds |= kind_bit(EventType::Create, ItemKind::Relationship);
            sig.created_rel_types.insert(r.rel_type.clone());
        }
        for r in &delta.deleted_rels {
            sig.kinds |= kind_bit(EventType::Delete, ItemKind::Relationship);
            sig.deleted_rel_types.insert(r.rel_type.clone());
        }
        for ev in &delta.assigned_labels {
            sig.kinds |= kind_bit(EventType::Set, ItemKind::Node);
            sig.assigned_labels.insert(ev.label.clone());
        }
        for ev in &delta.removed_labels {
            sig.kinds |= kind_bit(EventType::Remove, ItemKind::Node);
            sig.removed_labels.insert(ev.label.clone());
        }
        for pa in &delta.assigned_node_props {
            sig.kinds |= kind_bit(EventType::Set, ItemKind::Node);
            sig.assigned_node_prop_keys.insert(pa.key.clone());
        }
        for pr in &delta.removed_node_props {
            sig.kinds |= kind_bit(EventType::Remove, ItemKind::Node);
            sig.removed_node_prop_keys.insert(pr.key.clone());
        }
        for pa in &delta.assigned_rel_props {
            sig.kinds |= kind_bit(EventType::Set, ItemKind::Relationship);
            sig.assigned_rel_prop_keys.insert(pa.key.clone());
        }
        for pr in &delta.removed_rel_props {
            sig.kinds |= kind_bit(EventType::Remove, ItemKind::Relationship);
            sig.removed_rel_prop_keys.insert(pr.key.clone());
        }
        sig.labels.extend(sig.created_node_labels.iter().cloned());
        sig.labels.extend(sig.deleted_node_labels.iter().cloned());
        sig.labels.extend(sig.created_rel_types.iter().cloned());
        sig.labels.extend(sig.deleted_rel_types.iter().cloned());
        sig.labels.extend(sig.assigned_labels.iter().cloned());
        sig.labels.extend(sig.removed_labels.iter().cloned());
        sig.prop_keys
            .extend(sig.assigned_node_prop_keys.iter().cloned());
        sig.prop_keys
            .extend(sig.removed_node_prop_keys.iter().cloned());
        sig.prop_keys
            .extend(sig.assigned_rel_prop_keys.iter().cloned());
        sig.prop_keys
            .extend(sig.removed_rel_prop_keys.iter().cloned());
        sig
    }

    /// Whether a trigger's event can intersect this delta. Exact on event
    /// kind, target label/type (for creation/deletion/label events) and
    /// monitored property key; property events over-approximate the target
    /// label check (done precisely by `affected_items` later).
    pub fn may_match(&self, spec: &TriggerSpec) -> bool {
        match (spec.event, spec.item) {
            (EventType::Create, ItemKind::Node) => self.created_node_labels.contains(&spec.label),
            (EventType::Create, ItemKind::Relationship) => {
                self.created_rel_types.contains(&spec.label)
            }
            (EventType::Delete, ItemKind::Node) => self.deleted_node_labels.contains(&spec.label),
            (EventType::Delete, ItemKind::Relationship) => {
                self.deleted_rel_types.contains(&spec.label)
            }
            (EventType::Set, ItemKind::Node) => match &spec.property {
                None => self.assigned_labels.contains(&spec.label),
                Some(p) => self.assigned_node_prop_keys.contains(p),
            },
            (EventType::Remove, ItemKind::Node) => match &spec.property {
                None => self.removed_labels.contains(&spec.label),
                Some(p) => self.removed_node_prop_keys.contains(p),
            },
            (EventType::Set, ItemKind::Relationship) => spec
                .property
                .as_ref()
                .is_some_and(|p| self.assigned_rel_prop_keys.contains(p)),
            (EventType::Remove, ItemKind::Relationship) => spec
                .property
                .as_ref()
                .is_some_and(|p| self.removed_rel_prop_keys.contains(p)),
        }
    }
}

/// The catalog of installed triggers.
#[derive(Debug, Default)]
pub struct TriggerCatalog {
    triggers: Vec<InstalledTrigger>,
    next_seq: u64,
    pub order: OrderPolicy,
    /// Per-action-time dispatch summaries (Before/After/OnCommit/Detached),
    /// rebuilt on install/drop/enable changes.
    summaries: [DispatchSummary; 4],
}

fn time_slot(time: ActionTime) -> usize {
    match time {
        ActionTime::Before => 0,
        ActionTime::After => 1,
        ActionTime::OnCommit => 2,
        ActionTime::Detached => 3,
    }
}

impl TriggerCatalog {
    pub fn new() -> Self {
        TriggerCatalog::default()
    }

    /// Install a trigger (name must be fresh). Returns its sequence number.
    pub fn install(&mut self, spec: TriggerSpec) -> Result<u64, InstallError> {
        if self.triggers.iter().any(|t| t.spec.name == spec.name) {
            return Err(InstallError::DuplicateName(spec.name));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.triggers.push(InstalledTrigger {
            spec: Arc::new(spec),
            seq,
            enabled: true,
        });
        self.rebuild_summaries();
        Ok(seq)
    }

    /// Drop a trigger by name; `true` if it existed.
    pub fn drop_trigger(&mut self, name: &str) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.spec.name != name);
        let dropped = self.triggers.len() != before;
        if dropped {
            self.rebuild_summaries();
        }
        dropped
    }

    /// Drop all triggers (APOC `dropAll`).
    pub fn drop_all(&mut self) {
        self.triggers.clear();
        self.rebuild_summaries();
    }

    /// Pause (`false`) or resume (`true`) a trigger; `true` if found.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.triggers.iter_mut().find(|t| t.spec.name == name) {
            Some(t) => {
                t.enabled = enabled;
                self.rebuild_summaries();
                true
            }
            None => false,
        }
    }

    /// Recompute the per-action-time dispatch summaries. Catalog mutations
    /// are rare next to statement dispatch, so summaries are maintained
    /// eagerly here and read lock-step on every statement.
    fn rebuild_summaries(&mut self) {
        let mut summaries: [DispatchSummary; 4] = Default::default();
        for t in self.triggers.iter().filter(|t| t.enabled) {
            let s = &mut summaries[time_slot(t.spec.time)];
            s.kinds |= kind_bit(t.spec.event, t.spec.item);
            // Bucket by how `affected_items` actually dispatches: only
            // SET/REMOVE events key on the monitored property; a property
            // on a CREATE/DELETE trigger is ignored there, so the trigger
            // must gate on its label like any creation/deletion trigger.
            match (&t.spec.event, &t.spec.property) {
                (EventType::Set | EventType::Remove, Some(p)) => {
                    s.prop_keys.insert(p.clone());
                }
                _ => {
                    s.labels.insert(t.spec.label.clone());
                }
            }
        }
        self.summaries = summaries;
    }

    pub fn get(&self, name: &str) -> Option<&InstalledTrigger> {
        self.triggers.iter().find(|t| t.spec.name == name)
    }

    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// All triggers in catalog order (unsorted).
    pub fn all(&self) -> impl Iterator<Item = &InstalledTrigger> {
        self.triggers.iter()
    }

    /// Enabled triggers with the given action time, in activation order.
    pub fn scheduled(&self, time: ActionTime) -> Vec<&InstalledTrigger> {
        let mut out: Vec<&InstalledTrigger> = self
            .triggers
            .iter()
            .filter(|t| t.enabled && t.spec.time == time)
            .collect();
        match self.order {
            OrderPolicy::CreationTime => out.sort_by_key(|t| t.seq),
            OrderPolicy::Name => out.sort_by(|a, b| a.spec.name.cmp(&b.spec.name)),
        }
        out
    }

    /// O(1)-ish phase gate: could **any** enabled trigger of `time` match a
    /// statement with this delta signature? Checked before building a
    /// `PreStateView` or cloning anything. Exact on event kinds, on the
    /// target labels of creation/deletion/label-event triggers, and on the
    /// monitored keys of property-event triggers (the latter's label check
    /// is deferred to `affected_items`).
    pub fn wants(&self, time: ActionTime, sig: &DeltaSignature) -> bool {
        let s = &self.summaries[time_slot(time)];
        if s.kinds & sig.kinds == 0 {
            return false;
        }
        !s.labels.is_disjoint(&sig.labels) || !s.prop_keys.is_disjoint(&sig.prop_keys)
    }

    /// Enabled triggers of `time` whose event can intersect the delta, in
    /// activation order, as shared specs (no deep clones).
    pub fn scheduled_matching(
        &self,
        time: ActionTime,
        sig: &DeltaSignature,
    ) -> Vec<Arc<TriggerSpec>> {
        self.scheduled(time)
            .into_iter()
            .filter(|t| sig.may_match(&t.spec))
            .map(|t| Arc::clone(&t.spec))
            .collect()
    }

    /// Enabled triggers of `time` as shared specs, unfiltered (ONCOMMIT
    /// rounds re-filter per round against each round's delta).
    pub fn scheduled_specs(&self, time: ActionTime) -> Vec<Arc<TriggerSpec>> {
        self.scheduled(time)
            .into_iter()
            .map(|t| Arc::clone(&t.spec))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::{parse_trigger_ddl, DdlStatement};

    fn spec(name: &str, time: &str) -> TriggerSpec {
        let src = format!(
            "CREATE TRIGGER {name} {time} CREATE ON 'L' FOR EACH NODE BEGIN CREATE (:X) END"
        );
        match parse_trigger_ddl(&src).unwrap() {
            DdlStatement::CreateTrigger(s) => s,
            _ => panic!(),
        }
    }

    #[test]
    fn install_orders_by_creation() {
        let mut c = TriggerCatalog::new();
        c.install(spec("zeta", "AFTER")).unwrap();
        c.install(spec("alpha", "AFTER")).unwrap();
        let names: Vec<_> = c
            .scheduled(ActionTime::After)
            .iter()
            .map(|t| t.spec.name.clone())
            .collect();
        assert_eq!(names, vec!["zeta", "alpha"]);
    }

    #[test]
    fn name_order_policy() {
        let mut c = TriggerCatalog::new();
        c.order = OrderPolicy::Name;
        c.install(spec("zeta", "AFTER")).unwrap();
        c.install(spec("alpha", "AFTER")).unwrap();
        let names: Vec<_> = c
            .scheduled(ActionTime::After)
            .iter()
            .map(|t| t.spec.name.clone())
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = TriggerCatalog::new();
        c.install(spec("t", "AFTER")).unwrap();
        assert!(matches!(
            c.install(spec("t", "AFTER")),
            Err(InstallError::DuplicateName(_))
        ));
    }

    #[test]
    fn delta_signature_prefilters_by_label_and_kind() {
        use pg_graph::{NodeId, NodeRecord};
        let mut c = TriggerCatalog::new();
        c.install(spec("on_a", "AFTER")).unwrap(); // AFTER CREATE ON 'L'
        let mut other = spec("on_b", "AFTER");
        other.label = "B".into();
        c.install(other).unwrap();

        // a statement creating only a :B node
        let mut delta = Delta::default();
        let mut rec = NodeRecord::new(NodeId(1));
        rec.labels.insert("B".to_string());
        delta.created_nodes.push(rec);
        let sig = DeltaSignature::of(&delta);

        // the :L trigger is filtered out before any evaluation…
        let matching = c.scheduled_matching(ActionTime::After, &sig);
        assert_eq!(matching.len(), 1);
        assert_eq!(matching[0].label, "B");
        // …and the phase gate still opens (one trigger matches)
        assert!(c.wants(ActionTime::After, &sig));
        // no BEFORE triggers installed at all: that phase is gated off
        assert!(!c.wants(ActionTime::Before, &sig));

        // a label-disjoint statement gates the whole AFTER phase off
        let mut delta2 = Delta::default();
        let mut rec2 = NodeRecord::new(NodeId(2));
        rec2.labels.insert("Unrelated".to_string());
        delta2.created_nodes.push(rec2);
        let sig2 = DeltaSignature::of(&delta2);
        assert!(!c.wants(ActionTime::After, &sig2));
        assert!(c.scheduled_matching(ActionTime::After, &sig2).is_empty());

        // an event-kind-disjoint statement (deletion) gates it off too
        let mut delta3 = Delta::default();
        let mut rec3 = NodeRecord::new(NodeId(3));
        rec3.labels.insert("L".to_string());
        delta3.deleted_nodes.push(rec3);
        let sig3 = DeltaSignature::of(&delta3);
        assert!(!c.wants(ActionTime::After, &sig3));
    }

    #[test]
    fn property_event_triggers_filter_by_key_not_label() {
        use pg_graph::{NodeId, PropAssign, Value};
        let src = "CREATE TRIGGER p AFTER SET ON 'L'.'occupancy' FOR EACH NODE
                   BEGIN CREATE (:X) END";
        let mut c = TriggerCatalog::new();
        match crate::ddl::parse_trigger_ddl(src).unwrap() {
            crate::ddl::DdlStatement::CreateTrigger(s) => c.install(s).unwrap(),
            _ => panic!(),
        };
        // assignment of the monitored key on an unlabeled node: the label
        // check cannot be decided from the delta — must stay scheduled
        let mut delta = Delta::default();
        delta.assigned_node_props.push(PropAssign {
            target: NodeId(1),
            key: "occupancy".into(),
            old: Value::Null,
            new: Value::Float(0.97),
        });
        let sig = DeltaSignature::of(&delta);
        assert!(c.wants(ActionTime::After, &sig));
        assert_eq!(c.scheduled_matching(ActionTime::After, &sig).len(), 1);
        // a different key is filtered out
        let mut delta2 = Delta::default();
        delta2.assigned_node_props.push(PropAssign {
            target: NodeId(1),
            key: "other".into(),
            old: Value::Null,
            new: Value::Int(1),
        });
        let sig2 = DeltaSignature::of(&delta2);
        assert!(!c.wants(ActionTime::After, &sig2));
    }

    #[test]
    fn summaries_track_enable_disable_and_drop() {
        use pg_graph::{NodeId, NodeRecord};
        let mut c = TriggerCatalog::new();
        c.install(spec("t", "AFTER")).unwrap();
        let mut delta = Delta::default();
        let mut rec = NodeRecord::new(NodeId(1));
        rec.labels.insert("L".to_string());
        delta.created_nodes.push(rec);
        let sig = DeltaSignature::of(&delta);
        assert!(c.wants(ActionTime::After, &sig));
        c.set_enabled("t", false);
        assert!(!c.wants(ActionTime::After, &sig));
        c.set_enabled("t", true);
        assert!(c.wants(ActionTime::After, &sig));
        c.drop_trigger("t");
        assert!(!c.wants(ActionTime::After, &sig));
    }

    #[test]
    fn drop_and_pause() {
        let mut c = TriggerCatalog::new();
        c.install(spec("a", "AFTER")).unwrap();
        c.install(spec("b", "ONCOMMIT")).unwrap();
        assert_eq!(c.scheduled(ActionTime::After).len(), 1);
        assert_eq!(c.scheduled(ActionTime::OnCommit).len(), 1);
        assert!(c.set_enabled("a", false));
        assert!(c.scheduled(ActionTime::After).is_empty());
        assert!(c.set_enabled("a", true));
        assert!(c.drop_trigger("a"));
        assert!(!c.drop_trigger("a"));
        c.drop_all();
        assert!(c.is_empty());
    }
}
