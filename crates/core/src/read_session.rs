//! Read-only sessions over pinned snapshots.
//!
//! A [`ReadSession`] is the reader half of the engine's single-writer /
//! N-reader concurrency model: it wraps a [`Snapshot`] pinned to one
//! committed epoch and runs read-only Cypher against it through the full
//! planner and executor — index probes, composite top-k walks, the works —
//! without ever touching the writer's [`crate::Session`].
//!
//! Because snapshots expose only *published* commit epochs, a read session
//! can never observe an open transaction or a partially applied trigger
//! cascade: `BEFORE`/`AFTER`/`ONCOMMIT` effects become visible atomically
//! with the commit that carried them, and `DETACHED` actions appear as
//! their own later epochs.
//!
//! ```
//! use pg_triggers::{ReadSession, Session};
//!
//! let mut session = Session::new();
//! session.run("CREATE (:Person {name: 'Ada'})").unwrap();
//!
//! let handle = session.reader_handle();
//! // `handle` is Send + Sync: clone it into as many reader threads as
//! // needed, each pinning its own snapshots.
//! let mut reader = ReadSession::new(handle);
//! let out = reader.run("MATCH (p:Person) RETURN p.name AS name").unwrap();
//! assert_eq!(out.rows.len(), 1);
//!
//! session.run("CREATE (:Person {name: 'Grace'})").unwrap();
//! // Still pinned: the reader does not see the new commit until refreshed.
//! let out = reader.run("MATCH (p:Person) RETURN count(*) AS n").unwrap();
//! assert_eq!(out.single().and_then(|v| v.as_i64()), Some(1));
//! reader.refresh();
//! let out = reader.run("MATCH (p:Person) RETURN count(*) AS n").unwrap();
//! assert_eq!(out.single().and_then(|v| v.as_i64()), Some(2));
//! ```

use crate::error::TriggerError;
use pg_cypher::{parse_query, run_read_only, Params, QueryOutput};
use pg_graph::{GraphHandle, IndexProbes, Snapshot};

/// A read-only query session over an epoch-pinned [`Snapshot`].
///
/// Create one per reader thread from a [`GraphHandle`] (see
/// [`crate::Session::reader_handle`]). Queries run against the pinned
/// epoch until [`ReadSession::refresh`] re-pins to the latest published
/// one; updating clauses are rejected by the executor. The session is
/// `Send`, so it can be built on one thread and moved into another.
pub struct ReadSession {
    handle: GraphHandle,
    snapshot: Snapshot,
    now_ms: i64,
}

impl ReadSession {
    /// Pin the latest published epoch from `handle`.
    pub fn new(handle: GraphHandle) -> Self {
        let snapshot = handle.snapshot();
        ReadSession {
            handle,
            snapshot,
            now_ms: 0,
        }
    }

    /// The committed epoch this session is currently pinned to.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Re-pin to the latest published epoch, returning it. Cheap (two
    /// `Arc` clones under the publication lock); the previous version is
    /// released, letting the store reclaim it once unshared.
    pub fn refresh(&mut self) -> u64 {
        self.snapshot = self.handle.snapshot();
        self.snapshot.epoch()
    }

    /// The pinned snapshot, for direct [`pg_graph::GraphView`] access.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The query-time clock (advanced by one second per statement, like
    /// the writer session's).
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    pub fn set_now_ms(&mut self, now_ms: i64) {
        self.now_ms = now_ms;
    }

    /// Run one read-only query against the pinned snapshot.
    pub fn run(&mut self, src: &str) -> Result<QueryOutput, TriggerError> {
        self.run_with_params(src, &Params::new())
    }

    pub fn run_with_params(
        &mut self,
        src: &str,
        params: &Params,
    ) -> Result<QueryOutput, TriggerError> {
        self.now_ms += 1000;
        let query = parse_query(src)?;
        let out = run_read_only(&self.snapshot, &query, Vec::new(), params, self.now_ms)?;
        Ok(out)
    }

    /// This session's own index-probe counters (see
    /// [`pg_graph::IndexProbes`]); independent of the writer's and of
    /// every other reader's. Reset on [`ReadSession::refresh`] (fresh
    /// snapshot, fresh counters).
    pub fn index_probes(&self) -> IndexProbes {
        self.snapshot.index_probes()
    }

    /// Reset this session's probe counters to zero.
    pub fn reset_index_probes(&self) {
        self.snapshot.reset_index_probes()
    }
}
