//! Property-index consistency under random mutation scripts.
//!
//! The invariant: after **every** step — plain mutations, `begin`,
//! `commit`, `rollback`, and mid-transaction `rollback_to` — every index
//! **equality lookup, range lookup and prefix lookup** must agree with a
//! brute-force scan over the whole graph using Cypher equality/ordering
//! ([`Value::eq3`] / [`Value::cmp3`]). Range lookups may also *refuse*
//! (`None`, e.g. while a ±2⁵³ lossy numeric is stored) — that is the
//! planner's scan fallback, not an inconsistency — but when they answer,
//! the answer must be exact. This is the graph-level half of the guarantee
//! the trigger engine relies on when a statement (or a whole trigger
//! cascade) aborts; the engine-level half (RecursionLimit aborts) lives in
//! `pg-triggers`' integration tests.

use pg_graph::{Graph, GraphView, NodeId, PropertyMap, StatementMark, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::ops::Bound;

/// A random script step. Node references are dense indexes into the current
/// id list so scripts stay valid regardless of prior steps; transaction
/// steps are no-ops when they do not apply (e.g. `Commit` outside a tx).
#[derive(Debug, Clone)]
enum Step {
    CreateNode {
        label: u8,
        prop: u8,
        val: i64,
    },
    DetachDelete {
        pick: usize,
    },
    SetProp {
        pick: usize,
        prop: u8,
        val: i64,
    },
    SetFloatProp {
        pick: usize,
        prop: u8,
        val: i64,
    },
    /// Values at/around the ±2⁵³ exactness boundary (`sel` picks one):
    /// stored they are lossy (range scans must opt out), removed they must
    /// re-enable range answers.
    SetHugeProp {
        pick: usize,
        prop: u8,
        sel: u8,
    },
    SetStrProp {
        pick: usize,
        prop: u8,
        val: u8,
    },
    RemoveProp {
        pick: usize,
        prop: u8,
    },
    SetNullProp {
        pick: usize,
        prop: u8,
    },
    SetLabel {
        pick: usize,
        label: u8,
    },
    RemoveLabel {
        pick: usize,
        label: u8,
    },
    CreateIndex {
        label: u8,
        prop: u8,
    },
    DropIndex {
        label: u8,
        prop: u8,
    },
    Begin,
    Mark,
    RollbackTo,
    Rollback,
    Commit,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..3, 0u8..3, -4i64..4).prop_map(|(label, prop, val)| Step::CreateNode {
            label,
            prop,
            val
        }),
        (0usize..16).prop_map(|pick| Step::DetachDelete { pick }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, -4i64..4).prop_map(|(pick, prop, val)| Step::SetFloatProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3, 0u8..6).prop_map(|(pick, prop, sel)| Step::SetHugeProp {
            pick,
            prop,
            sel
        }),
        (0usize..16, 0u8..3, 0u8..6).prop_map(|(pick, prop, val)| Step::SetStrProp {
            pick,
            prop,
            val
        }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::RemoveProp { pick, prop }),
        (0usize..16, 0u8..3).prop_map(|(pick, prop)| Step::SetNullProp { pick, prop }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::SetLabel { pick, label }),
        (0usize..16, 0u8..3).prop_map(|(pick, label)| Step::RemoveLabel { pick, label }),
        (0u8..3, 0u8..3).prop_map(|(label, prop)| Step::CreateIndex { label, prop }),
        (0u8..3, 0u8..3).prop_map(|(label, prop)| Step::DropIndex { label, prop }),
        Just(Step::Begin),
        Just(Step::Mark),
        Just(Step::RollbackTo),
        Just(Step::Rollback),
        Just(Step::Commit),
    ]
}

fn label_name(i: u8) -> String {
    format!("L{i}")
}
fn prop_name(i: u8) -> String {
    format!("p{i}")
}

/// Transaction bookkeeping threaded through the script.
#[derive(Default)]
struct Driver {
    marks: Vec<StatementMark>,
}

impl Driver {
    fn apply(&mut self, g: &mut Graph, step: &Step) {
        let nodes = g.all_node_ids();
        match step {
            Step::CreateNode { label, prop, val } => {
                let props: PropertyMap =
                    [(prop_name(*prop), Value::Int(*val))].into_iter().collect();
                g.create_node([label_name(*label)], props).unwrap();
            }
            Step::DetachDelete { pick } => {
                if !nodes.is_empty() {
                    g.detach_delete_node(nodes[pick % nodes.len()]).unwrap();
                }
            }
            Step::SetProp { pick, prop, val } => {
                if !nodes.is_empty() {
                    g.set_node_prop(
                        nodes[pick % nodes.len()],
                        prop_name(*prop),
                        Value::Int(*val),
                    )
                    .unwrap();
                }
            }
            Step::SetFloatProp { pick, prop, val } => {
                // integral floats exercise the Int/Float key normalization
                if !nodes.is_empty() {
                    g.set_node_prop(
                        nodes[pick % nodes.len()],
                        prop_name(*prop),
                        Value::Float(*val as f64),
                    )
                    .unwrap();
                }
            }
            Step::SetHugeProp { pick, prop, sel } => {
                if !nodes.is_empty() {
                    let bound = 1i64 << 53;
                    let v = match sel {
                        0 => Value::Int(bound),
                        1 => Value::Int(bound + 1),
                        2 => Value::Int(-bound),
                        3 => Value::Float(bound as f64),
                        4 => Value::Float(-(bound as f64)),
                        _ => Value::Int(bound - 1), // last exactly-keyable int
                    };
                    g.set_node_prop(nodes[pick % nodes.len()], prop_name(*prop), v)
                        .unwrap();
                }
            }
            Step::SetStrProp { pick, prop, val } => {
                if !nodes.is_empty() {
                    // overlapping prefixes: "", "a", "ab", "ab", "b", "ba"
                    let s = ["", "a", "ab", "abc", "b", "ba"][*val as usize % 6];
                    g.set_node_prop(nodes[pick % nodes.len()], prop_name(*prop), Value::str(s))
                        .unwrap();
                }
            }
            Step::RemoveProp { pick, prop } => {
                if !nodes.is_empty() {
                    g.remove_node_prop(nodes[pick % nodes.len()], &prop_name(*prop))
                        .unwrap();
                }
            }
            Step::SetNullProp { pick, prop } => {
                if !nodes.is_empty() {
                    g.set_node_prop(nodes[pick % nodes.len()], prop_name(*prop), Value::Null)
                        .unwrap();
                }
            }
            Step::SetLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.set_label(nodes[pick % nodes.len()], label_name(*label))
                        .unwrap();
                }
            }
            Step::RemoveLabel { pick, label } => {
                if !nodes.is_empty() {
                    g.remove_label(nodes[pick % nodes.len()], &label_name(*label))
                        .unwrap();
                }
            }
            Step::CreateIndex { label, prop } => {
                g.create_index(&label_name(*label), &prop_name(*prop));
            }
            Step::DropIndex { label, prop } => {
                g.drop_index(&label_name(*label), &prop_name(*prop));
            }
            Step::Begin => {
                if !g.in_tx() {
                    g.begin().unwrap();
                    self.marks.clear();
                }
            }
            Step::Mark => {
                if g.in_tx() {
                    self.marks.push(g.mark());
                }
            }
            Step::RollbackTo => {
                if g.in_tx() {
                    if let Some(m) = self.marks.pop() {
                        g.rollback_to(m).unwrap();
                    }
                }
            }
            Step::Rollback => {
                if g.in_tx() {
                    g.rollback().unwrap();
                    self.marks.clear();
                }
            }
            Step::Commit => {
                if g.in_tx() {
                    g.commit().unwrap();
                    self.marks.clear();
                }
            }
        }
    }
}

/// Whether a stored value satisfies `lower ⋚ v ⋚ upper` under
/// [`Value::cmp3`] (the reference semantics of a pushed-down range
/// predicate: each bound is a conjunct, NULL comparisons never hold).
fn in_range3(v: &Value, lower: &Bound<&Value>, upper: &Bound<&Value>) -> bool {
    let lo_ok = match lower {
        Bound::Unbounded => true,
        Bound::Included(b) => matches!(v.cmp3(b), Some(Ordering::Greater | Ordering::Equal)),
        Bound::Excluded(b) => matches!(v.cmp3(b), Some(Ordering::Greater)),
    };
    let hi_ok = match upper {
        Bound::Unbounded => true,
        Bound::Included(b) => matches!(v.cmp3(b), Some(Ordering::Less | Ordering::Equal)),
        Bound::Excluded(b) => matches!(v.cmp3(b), Some(Ordering::Less)),
    };
    lo_ok && hi_ok
}

/// Index lookups == brute-force scan, for every index definition and every
/// equality value, range, and prefix over (a superset of) the script's
/// value universe.
fn check_index_vs_scan(g: &Graph) {
    let all = g.all_node_ids();
    let huge = 1i64 << 53;
    let mut universe: Vec<Value> = (-5i64..6).map(Value::Int).collect();
    universe.extend((-5i64..6).map(|v| Value::Float(v as f64)));
    universe.push(Value::Float(0.5));
    universe.push(Value::Int(huge - 1));
    for (label, key) in g.indexes() {
        for value in &universe {
            let via_index: BTreeSet<NodeId> = g
                .nodes_with_prop(&label, &key, value)
                .unwrap_or_else(|| panic!("index on ({label},{key}) must answer"))
                .into_iter()
                .collect();
            let via_scan: BTreeSet<NodeId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    g.node_has_label(id, &label)
                        && g.node_prop(id, &key)
                            .is_some_and(|have| have.eq3(value) == Some(true))
                })
                .collect();
            assert_eq!(
                via_index, via_scan,
                "index ({label},{key}) diverged from scan for {value}"
            );
        }

        // Range queries: one- and two-sided, inclusive and exclusive,
        // including bounds at the ±2^53 exactness frontier. A `None`
        // answer is the legal scan fallback; a `Some` answer must be
        // exactly the brute-force filter.
        let range_bounds: Vec<Value> = vec![
            Value::Int(-2),
            Value::Int(0),
            Value::Float(0.5),
            Value::Int(2),
            Value::Int(huge - 1),
            Value::Float(f64::INFINITY),
        ];
        let mut ranges: Vec<(Bound<&Value>, Bound<&Value>)> = Vec::new();
        for b in &range_bounds {
            ranges.push((Bound::Included(b), Bound::Unbounded));
            ranges.push((Bound::Excluded(b), Bound::Unbounded));
            ranges.push((Bound::Unbounded, Bound::Included(b)));
            ranges.push((Bound::Unbounded, Bound::Excluded(b)));
        }
        ranges.push((
            Bound::Included(&range_bounds[0]),
            Bound::Excluded(&range_bounds[3]),
        ));
        ranges.push((
            Bound::Excluded(&range_bounds[1]),
            Bound::Included(&range_bounds[2]),
        ));
        for (lo, hi) in ranges {
            if let Some(ids) = g.nodes_in_prop_range(&label, &key, lo, hi) {
                let via_index: BTreeSet<NodeId> = ids.into_iter().collect();
                let via_scan: BTreeSet<NodeId> = all
                    .iter()
                    .copied()
                    .filter(|&id| {
                        g.node_has_label(id, &label)
                            && g.node_prop(id, &key)
                                .is_some_and(|have| in_range3(&have, &lo, &hi))
                    })
                    .collect();
                assert_eq!(
                    via_index, via_scan,
                    "range on ({label},{key}) diverged for ({lo:?}, {hi:?})"
                );
            }
        }

        // Prefix queries must always answer on an indexed (label, key).
        for prefix in ["", "a", "ab", "abc", "b", "zz"] {
            let via_index: BTreeSet<NodeId> = g
                .nodes_with_prop_prefix(&label, &key, prefix)
                .unwrap_or_else(|| panic!("prefix on ({label},{key}) must answer"))
                .into_iter()
                .collect();
            let via_scan: BTreeSet<NodeId> = all
                .iter()
                .copied()
                .filter(|&id| {
                    g.node_has_label(id, &label)
                        && g.node_prop(id, &key).is_some_and(
                            |have| matches!(&have, Value::Str(s) if s.starts_with(prefix)),
                        )
                })
                .collect();
            assert_eq!(
                via_index, via_scan,
                "prefix on ({label},{key}) diverged for '{prefix}'"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn index_equals_scan_after_every_step(script in prop::collection::vec(step_strategy(), 0..60)) {
        let mut g = Graph::new();
        let mut d = Driver::default();
        for step in &script {
            d.apply(&mut g, step);
            check_index_vs_scan(&g);
        }
        // wind down: abort any open transaction and re-check
        if g.in_tx() {
            g.rollback().unwrap();
            check_index_vs_scan(&g);
        }
    }

    #[test]
    fn index_equals_scan_after_full_rollback(pre in prop::collection::vec(step_strategy(), 0..25),
                                             tx in prop::collection::vec(step_strategy(), 0..25)) {
        // Indexes created up front so the whole script is index-maintained.
        let mut g = Graph::new();
        for l in 0..3u8 {
            for p in 0..3u8 {
                g.create_index(&label_name(l), &prop_name(p));
            }
        }
        let mut d = Driver::default();
        for step in &pre {
            d.apply(&mut g, step);
        }
        if g.in_tx() {
            g.commit().unwrap();
        }
        g.begin().unwrap();
        for step in &tx {
            // nested tx control inside: skip tx steps, keep mutations
            if matches!(step, Step::Begin | Step::Rollback | Step::Commit) {
                continue;
            }
            d.apply(&mut g, step);
        }
        g.rollback().unwrap();
        check_index_vs_scan(&g);
    }
}
